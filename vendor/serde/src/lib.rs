//! Offline stand-in for `serde`.
//!
//! Real serde abstracts over data formats with a visitor architecture;
//! this workspace only ever serializes to JSON, so the stand-in collapses
//! the design to a single interchange type: [`json::Value`]. `Serialize`
//! renders a value tree, `Deserialize` rebuilds from one, and the derive
//! macros in `serde_derive` generate both using serde's externally-tagged
//! enum representation so on-disk artifacts look like real serde_json
//! output.

#![forbid(unsafe_code)]

pub mod json;

use json::{Number, Value};
use std::fmt;

// Derive macros; same names as the traits, different namespace.
pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error: a message plus nothing else.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types renderable to a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Value;
}

/// Types rebuildable from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value.
    fn from_json(value: &Value) -> Result<Self, DeError>;
}

fn type_err(expected: &str, got: &Value) -> DeError {
    DeError::new(format!("expected {expected}, got {got}"))
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| type_err(stringify!($t), value))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::from(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_json(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| type_err(stringify!($t), value))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

// 128-bit integers exceed the JSON number model (u64/i64/f64); values
// that fit in 64 bits serialize as numbers, larger ones as decimal
// strings, and deserialization accepts both — round-trips stay exact.
impl Serialize for u128 {
    fn to_json(&self) -> Value {
        match u64::try_from(*self) {
            Ok(v) => Value::Number(Number::PosInt(v)),
            Err(_) => Value::String(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        if let Some(v) = value.as_u64() {
            return Ok(v as u128);
        }
        value
            .as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| type_err("u128", value))
    }
}

impl Serialize for i128 {
    fn to_json(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => Value::from(v),
            Err(_) => Value::String(self.to_string()),
        }
    }
}

impl Deserialize for i128 {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        if let Some(v) = value.as_i64() {
            return Ok(v as i128);
        }
        value
            .as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| type_err("i128", value))
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::from(*self)
    }
}

impl Deserialize for f64 {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        match value {
            // Non-finite floats serialize to null (serde_json convention).
            Value::Null => Ok(f64::NAN),
            _ => value.as_f64().ok_or_else(|| type_err("f64", value)),
        }
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::from(*self)
    }
}

impl Deserialize for f32 {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        f64::from_json(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        value.as_bool().ok_or_else(|| type_err("bool", value))
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| type_err("string", value))
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

// `&'static str` appears in derived types whose Deserialize impl is never
// exercised at runtime (suite-row provenance labels). Real serde makes
// this a call-site constraint via the 'de lifetime; this stand-in has no
// lifetimes, so the impl exists but allocates a leaked string if ever
// used. Fine for test-only metadata, wrong for hot paths — don't add
// borrowed fields to types that actually round-trip through files.
impl Deserialize for &'static str {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| type_err("string", value))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| type_err("array", value))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        T::from_json(value).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| type_err("tuple array", value))?;
                if items.len() != $len {
                    return Err(DeError::new(format!(
                        "expected {}-tuple, got {} elements", $len, items.len()
                    )));
                }
                Ok(($($name::from_json(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(usize::from_json(&42usize.to_json()).unwrap(), 42);
        assert_eq!(i64::from_json(&(-9i64).to_json()).unwrap(), -9);
        assert_eq!(f64::from_json(&0.25f64.to_json()).unwrap(), 0.25);
        assert!(f64::from_json(&f64::NAN.to_json()).unwrap().is_nan());
        assert_eq!(String::from_json(&"hi".to_json()).unwrap(), "hi");
        assert_eq!(
            <Option<u32>>::from_json(&None::<u32>.to_json()).unwrap(),
            None
        );
        assert_eq!(
            <(usize, usize)>::from_json(&(3usize, 4usize).to_json()).unwrap(),
            (3, 4)
        );
        assert_eq!(
            <Vec<u8>>::from_json(&vec![1u8, 2, 3].to_json()).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::from_json(&300usize.to_json()).is_err());
        assert!(bool::from_json(&1u8.to_json()).is_err());
    }
}
