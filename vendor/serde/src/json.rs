//! The JSON data model backing the vendored serde stack: [`Value`],
//! [`Number`], [`Map`], plus a parser and compact/pretty printers.

use std::fmt;

/// A JSON number, preserving integer-ness like `serde_json::Number`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A (finite) floating-point number.
    Float(f64),
}

impl Number {
    /// The value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(_) => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            // Rust's shortest-round-trip float formatting; force a decimal
            // point so the value re-parses as a float.
            Number::Float(v) => {
                let s = format!("{v}");
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
        }
    }
}

/// An order-preserving string-keyed map (JSON object).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl<K: PartialEq, V> Map<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Inserts a key–value pair, replacing any previous value for the key.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks a key up.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: PartialEq + ?Sized,
    {
        self.entries
            .iter()
            .find(|(k, _)| k.borrow() == key)
            .map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: std::borrow::Borrow<Q>,
        Q: PartialEq + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, (K, V)> {
        self.entries.iter()
    }
}

impl<K: PartialEq, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = Self::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<K, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a, K, V> IntoIterator for &'a Map<K, V> {
    type Item = &'a (K, V);
    type IntoIter = std::slice::Iter<'a, (K, V)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// A JSON value tree, the universal interchange type of this stack.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Member lookup on objects (None for other kinds).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Compact JSON text.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Pretty-printed JSON text (two-space indent).
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Number(Number::PosInt(v as u64)) }
        }
    )*};
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                if v < 0 {
                    Value::Number(Number::NegInt(v as i64))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
    )*};
}

impl_from_uint!(u8, u16, u32, u64, usize);
impl_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_finite() {
            Value::Number(Number::Float(v))
        } else {
            Value::Null
        }
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::from(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Self {
        Value::Object(v)
    }
}

macro_rules! impl_from_ref {
    ($($t:ty),*) => {$(
        impl From<&$t> for Value {
            fn from(v: &$t) -> Self { Value::from(*v) }
        }
    )*};
}

impl_from_ref!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

/// JSON text → [`Value`].
pub fn parse(input: &str) -> Result<Value, crate::DeError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(crate::DeError::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> crate::DeError {
        crate::DeError::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), crate::DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, crate::DeError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, crate::DeError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // printer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, crate::DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, crate::DeError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, crate::DeError> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_round_trip_is_exact() {
        for v in [0.1, 1.0 / 3.0, 6.02214076e23, -2.5e-10, 12345.6789, 1e300] {
            let text = Value::from(v).to_json_string();
            let back = parse(&text).expect("parse");
            assert_eq!(back.as_f64(), Some(v), "{text}");
        }
    }

    #[test]
    fn integers_stay_integers() {
        let text = Value::from(u64::MAX).to_json_string();
        assert_eq!(parse(&text).unwrap().as_u64(), Some(u64::MAX));
        let text = Value::from(-42i64).to_json_string();
        assert_eq!(parse(&text).unwrap().as_i64(), Some(-42));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nwith \"quotes\" and \\slashes\\ and \t tabs \u{1}";
        let text = Value::from(s).to_json_string();
        assert_eq!(parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn nested_structures_round_trip() {
        let mut obj = Map::new();
        obj.insert("a".into(), Value::Array(vec![1u8.into(), 2u8.into()]));
        obj.insert("b".into(), Value::Null);
        obj.insert("c".into(), Value::Bool(true));
        let v = Value::Object(obj);
        for text in [v.to_json_string(), v.to_json_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nulx").is_err());
    }
}
