//! Offline stand-in for `serde_json`, backed by the vendored `serde`
//! crate's [`Value`] model: string conversion entry points plus the
//! [`json!`] literal macro. Floats round-trip exactly (Rust's shortest
//! representation formatting), matching the `float_roundtrip` feature of
//! the real crate.

#![forbid(unsafe_code)]

pub use serde::json::{Map, Number, Value};
pub use serde::DeError as Error;

/// Serializes a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_json_string())
}

/// Serializes a value to pretty-printed JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_json_string_pretty())
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    T::from_json(&serde::json::parse(text)?)
}

/// Renders any serializable value as a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_json())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_json(&value)
}

/// Builds a [`Value`] from JSON-like literal syntax.
///
/// Supports `null`, nested `[...]` arrays, `{"key": value}` objects with
/// string-literal keys, and arbitrary expressions convertible into
/// [`Value`] via `From`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($body:tt)* }) => {{
        let mut __map = $crate::Map::new();
        $crate::json_entries!(__map, $($body)*);
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Object-entry muncher for [`json!`]: `null`, nested arrays and objects
/// are dispatched structurally, everything else parses as an expression
/// (so multi-token values like `&label` or `1 + 2` work).
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($map:ident,) => {};
    ($map:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert(String::from($key), $crate::Value::Null);
        $crate::json_entries!($map, $($($rest)*)?);
    };
    ($map:ident, $key:literal : [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert(String::from($key), $crate::json!([ $($arr)* ]));
        $crate::json_entries!($map, $($($rest)*)?);
    };
    ($map:ident, $key:literal : { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert(String::from($key), $crate::json!({ $($obj)* }));
        $crate::json_entries!($map, $($($rest)*)?);
    };
    ($map:ident, $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $map.insert(String::from($key), $crate::Value::from($value));
        $crate::json_entries!($map, $($($rest)*)?);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let label = String::from("speedup");
        let value = 1.5f64;
        let v = json!({ "metric": &label, "value": &value });
        assert_eq!(v.get("metric").and_then(Value::as_str), Some("speedup"));
        assert_eq!(v.get("value").and_then(Value::as_f64), Some(1.5));

        let nested = json!({
            "fig1": [{ "metric": "ratio", "value": 100.0 }],
            "empty": [],
            "flag": null
        });
        let arr = nested.get("fig1").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("value").and_then(Value::as_f64), Some(100.0));
        assert!(nested.get("flag").unwrap().is_null());
    }

    #[test]
    fn string_round_trip() {
        let v = json!({ "a": [1, 2, 3], "b": "text" });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
