//! Offline stand-in for `criterion`.
//!
//! Keeps the builder surface the workspace's bench targets use
//! ([`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`Throughput`], `criterion_group!`/`criterion_main!`)
//! but measures with a simple adaptive wall-clock loop: warm up once, then
//! iterate until a time budget is spent and report mean/min per iteration.
//! No statistical analysis, plots, or HTML reports.
//!
//! The generated `main` only runs benchmarks when the process was invoked
//! with a `--bench` argument (which `cargo bench` passes); under any other
//! harness invocation it exits immediately, keeping `cargo test` fast.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    /// Mean time per iteration from the measured phase.
    mean: Duration,
    /// Fastest observed iteration.
    min: Duration,
    iterations: u64,
}

impl Bencher {
    fn new() -> Self {
        Self {
            mean: Duration::ZERO,
            min: Duration::ZERO,
            iterations: 0,
        }
    }

    /// Measures `f` repeatedly: one warm-up call, then an adaptive loop
    /// bounded by a wall-clock budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up (also seeds lazy statics)
        let budget = Duration::from_millis(200);
        let max_iters = 10_000u64;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut n = 0u64;
        while total < budget && n < max_iters {
            let start = Instant::now();
            std::hint::black_box(f());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            n += 1;
        }
        self.mean = total / n.max(1) as u32;
        self.min = min;
        self.iterations = n;
    }
}

/// Work-rate annotation for a benchmark (recorded, printed with results).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id that is just the parameter's `Display` form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }

    /// A `function_name/parameter` id.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if b.mean > Duration::ZERO => {
            let per_s = n as f64 / b.mean.as_secs_f64();
            format!("  ({per_s:.0} elem/s)")
        }
        Some(Throughput::Bytes(n)) if b.mean > Duration::ZERO => {
            let per_s = n as f64 / b.mean.as_secs_f64() / (1 << 20) as f64;
            format!("  ({per_s:.1} MiB/s)")
        }
        _ => String::new(),
    };
    println!(
        "{name:<50} mean {:>10}  min {:>10}  ({} iters){rate}",
        human(b.mean),
        human(b.min),
        b.iterations
    );
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hint; accepted for API compatibility (the adaptive loop
    /// is bounded by wall-clock budget instead).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{name}", self.name), &b, self.throughput);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// True when the process was launched by `cargo bench` (which passes
/// `--bench`); bench mains no-op otherwise.
pub fn invoked_as_benchmark() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups (under `cargo bench` only).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::invoked_as_benchmark() {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new();
        b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
        assert!(b.iterations >= 1);
        assert!(b.min <= b.mean);
    }

    #[test]
    fn group_builder_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter("p"), &4u64, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2));
        });
        group.finish();
        c.bench_function("single", |b| b.iter(|| std::hint::black_box(1 + 1)));
    }
}
