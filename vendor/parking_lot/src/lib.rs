//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s poison-free API: a
//! panicked holder does not poison the lock for everyone else (we recover
//! the guard from the poison error). Covers the surface this workspace
//! uses: [`Mutex`], [`RwLock`], [`Condvar`].

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader–writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&*self.read()).finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            drop(done);
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
        assert!(*done);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
