//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls for the shapes
//! this workspace actually uses: structs with named fields, tuple/newtype
//! structs, and enums with unit / newtype / tuple / struct variants, using
//! serde's externally-tagged representation. Parsing is done directly over
//! `proc_macro::TokenStream` (no `syn`/`quote` available offline); honors
//! the two field attributes the codebase uses, `#[serde(default)]` and
//! `#[serde(default = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled during deserialization.
#[derive(Clone)]
enum FieldDefault {
    /// Required: missing is an error.
    Required,
    /// `#[serde(default)]`: `Default::default()`.
    DefaultImpl,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

struct Field {
    name: String,
    default: FieldDefault,
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    let name = item_name(&item);
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_json(&self) -> serde::json::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    let name = item_name(&item);
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_json(__value: &serde::json::Value) \
                 -> Result<Self, serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::Struct { name, .. } => name,
        Item::Enum { name, .. } => name,
    }
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut tts = input.into_iter().peekable();

    // Skip outer attributes (doc comments, #[serde(...)] on the container —
    // none used here) and visibility.
    loop {
        match tts.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tts.next();
                tts.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tts.next();
                if let Some(TokenTree::Group(g)) = tts.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tts.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tts.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tts.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };

    // Skip generic parameters if present (unused in this workspace).
    if let Some(TokenTree::Punct(p)) = tts.peek() {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            for tt in tts.by_ref() {
                if let TokenTree::Punct(p) = &tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tts.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected struct body for {name}: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tts.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("unexpected enum body for {name}: {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive serde impls for `{other}` items"),
    }
}

/// Reads one attribute body (the `[...]` group after `#`), returning the
/// field default it specifies, if it is a `#[serde(...)]` attribute.
fn attr_default(group: &proc_macro::Group) -> Option<FieldDefault> {
    let mut inner = group.stream().into_iter();
    match inner.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let args = match inner.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let mut args = args.into_iter();
    match args.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        other => panic!("unsupported #[serde(...)] argument: {other:?}"),
    }
    match args.next() {
        None => Some(FieldDefault::DefaultImpl),
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
            let lit = match args.next() {
                Some(TokenTree::Literal(l)) => l.to_string(),
                other => panic!("expected string literal in #[serde(default = ...)]: {other:?}"),
            };
            Some(FieldDefault::Path(lit.trim_matches('"').to_string()))
        }
        other => panic!("unsupported #[serde(default ...)] form: {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tts = stream.into_iter().peekable();
    loop {
        // Attributes before the field.
        let mut default = FieldDefault::Required;
        loop {
            match tts.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tts.next();
                    if let Some(TokenTree::Group(g)) = tts.next() {
                        if let Some(d) = attr_default(&g) {
                            default = d;
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tts.next();
                    if let Some(TokenTree::Group(g)) = tts.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tts.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match tts.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break, // trailing comma / end of fields
            other => panic!("expected field name, got {other:?}"),
        };
        match tts.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tt in tts.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut pending = false;
    let mut depth = 0i32;
    let mut tts = stream.into_iter().peekable();
    while let Some(tt) = tts.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tts.next(); // attribute body
            }
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    pending = true;
                }
                '>' => {
                    depth -= 1;
                    pending = true;
                }
                ',' if depth == 0 => {
                    count += 1;
                    pending = false;
                }
                _ => pending = true,
            },
            _ => pending = true,
        }
    }
    if pending {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tts = stream.into_iter().peekable();
    loop {
        // Attributes (doc comments, #[default] from derive(Default), ...).
        while let Some(TokenTree::Punct(p)) = tts.peek() {
            if p.as_char() == '#' {
                tts.next();
                tts.next();
            } else {
                break;
            }
        }
        let name = match tts.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let fields = match tts.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                tts.next();
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                tts.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Consume up to and including the separating comma (also skips
        // explicit discriminants, which serde would reject anyway).
        for tt in tts.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------- codegen

/// `{ "key": inner }` as a one-entry object expression.
fn one_entry_object(key: &str, inner: &str) -> String {
    format!(
        "{{ let mut __map = serde::json::Map::new();\n\
             __map.insert(String::from(\"{key}\"), {inner});\n\
             serde::json::Value::Object(__map) }}"
    )
}

fn named_fields_object(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::from("{ let mut __map = serde::json::Map::new();\n");
    for f in fields {
        out.push_str(&format!(
            "__map.insert(String::from(\"{0}\"), serde::Serialize::to_json({1}{0}));\n",
            f.name, access_prefix
        ));
    }
    out.push_str("serde::json::Value::Object(__map) }");
    out
}

fn serialize_struct(_name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => "serde::json::Value::Null".to_string(),
        Fields::Tuple(1) => "serde::Serialize::to_json(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("serde::json::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(fields) => named_fields_object(fields, "&self."),
    }
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => arms.push_str(&format!(
                "{name}::{vn} => serde::json::Value::String(String::from(\"{vn}\")),\n"
            )),
            Fields::Tuple(1) => arms.push_str(&format!(
                "{name}::{vn}(__f0) => {},\n",
                one_entry_object(vn, "serde::Serialize::to_json(__f0)")
            )),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("serde::Serialize::to_json({b})"))
                    .collect();
                let inner = format!("serde::json::Value::Array(vec![{}])", items.join(", "));
                arms.push_str(&format!(
                    "{name}::{vn}({}) => {},\n",
                    binds.join(", "),
                    one_entry_object(vn, &inner)
                ));
            }
            Fields::Named(fields) => {
                let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let inner = named_fields_object(fields, "");
                arms.push_str(&format!(
                    "{name}::{vn} {{ {} }} => {},\n",
                    binds.join(", "),
                    one_entry_object(vn, &inner)
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

/// Builds the field initializers of a named-fields constructor, reading
/// from an object bound to `__obj`.
fn named_fields_init(owner: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let fallback = match &f.default {
            FieldDefault::Required => format!(
                "return Err(serde::DeError::new(\
                     \"missing field `{}` in {}\"))",
                f.name, owner
            ),
            FieldDefault::DefaultImpl => "std::default::Default::default()".to_string(),
            FieldDefault::Path(path) => format!("{path}()"),
        };
        out.push_str(&format!(
            "{0}: match __obj.get(\"{0}\") {{\n\
                 Some(__v) => serde::Deserialize::from_json(__v)?,\n\
                 None => {1},\n\
             }},\n",
            f.name, fallback
        ));
    }
    out
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("{{ let _ = __value; Ok({name}) }}"),
        Fields::Tuple(1) => {
            format!("Ok({name}(serde::Deserialize::from_json(__value)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_json(&__items[{i}])?"))
                .collect();
            format!(
                "{{ let __items = __value.as_array().ok_or_else(|| \
                     serde::DeError::new(\"expected array for {name}\"))?;\n\
                 if __items.len() != {n} {{\n\
                     return Err(serde::DeError::new(format!(\n\
                         \"expected {n} elements for {name}, got {{}}\", __items.len())));\n\
                 }}\n\
                 Ok({name}({items})) }}",
                items = items.join(", ")
            )
        }
        Fields::Named(fields) => format!(
            "{{ let __obj = __value.as_object().ok_or_else(|| \
                 serde::DeError::new(\"expected object for {name}\"))?;\n\
             Ok({name} {{\n{init}}}) }}",
            init = named_fields_init(name, fields)
        ),
    }
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n")),
            Fields::Tuple(1) => data_arms.push_str(&format!(
                "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_json(__v)?)),\n"
            )),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Deserialize::from_json(&__items[{i}])?"))
                    .collect();
                data_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                         let __items = __v.as_array().ok_or_else(|| \
                             serde::DeError::new(\"expected array for {name}::{vn}\"))?;\n\
                         if __items.len() != {n} {{\n\
                             return Err(serde::DeError::new(format!(\n\
                                 \"expected {n} elements for {name}::{vn}, got {{}}\",\n\
                                 __items.len())));\n\
                         }}\n\
                         Ok({name}::{vn}({items}))\n\
                     }},\n",
                    items = items.join(", ")
                ));
            }
            Fields::Named(fields) => data_arms.push_str(&format!(
                "\"{vn}\" => {{\n\
                     let __obj = __v.as_object().ok_or_else(|| \
                         serde::DeError::new(\"expected object for {name}::{vn}\"))?;\n\
                     Ok({name}::{vn} {{\n{init}}})\n\
                 }},\n",
                init = named_fields_init(&format!("{name}::{vn}"), fields)
            )),
        }
    }
    format!(
        "match __value {{\n\
             serde::json::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(serde::DeError::new(format!(\n\
                     \"unknown unit variant `{{}}` for {name}\", __other))),\n\
             }},\n\
             serde::json::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, __v) = __m.iter().next()\
                     .map(|(__k, __v)| (__k.as_str(), __v))\
                     .expect(\"length checked\");\n\
                 match __k {{\n\
                     {data_arms}\
                     __other => Err(serde::DeError::new(format!(\n\
                         \"unknown variant `{{}}` for {name}\", __other))),\n\
                 }}\n\
             }},\n\
             __other => Err(serde::DeError::new(format!(\n\
                 \"invalid value for enum {name}: {{}}\", __other))),\n\
         }}"
    )
}
