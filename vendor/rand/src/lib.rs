//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! Provides [`Rng`], [`RngCore`], [`SeedableRng`] and the
//! [`rngs::SmallRng`] / [`rngs::StdRng`] generators, both implemented as
//! xoshiro256++ seeded through SplitMix64. Deterministic for a given seed
//! across platforms, which is all the workspace requires (workload suites
//! are sampled under fixed seeds).

#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly over their full domain (the `Standard`
/// distribution of real rand).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types samplable uniformly from a range (the `SampleUniform` surface).
pub trait SampleUniform: Sized + Copy {
    /// Draws a value from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The successor, for converting inclusive bounds.
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is negligible for the spans used here.
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn successor(self) -> Self { self + 1 }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn successor(self) -> Self {
        self
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f32::sample(rng) * (hi - lo)
    }
    fn successor(self) -> Self {
        self
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value over the type's full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, B: RangeBounds<T>>(&mut self, range: B) -> T {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v.successor(),
            Bound::Unbounded => panic!("gen_range requires a lower bound"),
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v.successor(),
            Bound::Excluded(&v) => v,
            Bound::Unbounded => panic!("gen_range requires an upper bound"),
        };
        T::sample_range(self, lo, hi)
    }

    /// Draws a bool with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy — here, from the system clock
    /// (good enough for the non-reproducible uses this workspace has:
    /// none).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(nanos)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by [`rngs::SmallRng`] and [`rngs::StdRng`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be degenerate; SplitMix64 cannot produce it
        // from any seed, but keep the guard for clarity.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// A small, fast generator (xoshiro256++ here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// The "standard" generator (same core; cryptographic strength is not
    /// required anywhere in this workspace).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// `rand::thread_rng` stand-in: a fresh clock-seeded generator.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(5..=500);
            assert!((5..=500).contains(&v));
            seen_lo |= v < 20;
            seen_hi |= v > 480;
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
        assert!(seen_lo && seen_hi, "range should actually be spanned");
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
