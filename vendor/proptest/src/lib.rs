//! Offline stand-in for `proptest`.
//!
//! Covers the surface this workspace uses: the [`Strategy`] trait over
//! ranges / tuples / `prop_map`, `prop::collection::vec`,
//! `prop::sample::select`, and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assume!`] macros with
//! [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, deliberate for an offline vendored
//! build: no shrinking (failures report the failing case's seed instead,
//! so a failure is reproducible but not minimal), and
//! `.proptest-regressions` files are not consulted — regressions worth
//! pinning are written as explicit unit tests instead. Case generation is
//! deterministic per test (seeded from the test's name), so CI runs are
//! reproducible.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; the case is retried
    /// with fresh inputs and does not count against the case budget.
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejected (filtered-out) input.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
    /// Abort after this many consecutive `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform + PartialOrd> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform + PartialOrd> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// A strategy always yielding clones of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A strategy for `Vec`s of `element` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec` strategy with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.start..self.size.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A strategy drawing uniformly from a fixed set of options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice among `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// FNV-1a, for deriving a per-test base seed from the test name.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property test: runs `config.cases` accepted cases with
/// deterministic per-case seeds, retrying rejected cases. Panics (failing
/// the enclosing `#[test]`) on the first assertion failure, reporting the
/// case seed for reproduction.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = name_seed(name);
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let mut rejects = 0u32;
    while accepted < config.cases {
        let seed = base.wrapping_add(attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempts += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects >= config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejects}) after {accepted} accepted cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {accepted} (seed {seed:#x}): {msg}");
            }
        }
    }
}

/// Defines property tests: each `fn` becomes a `#[test]` that runs the
/// body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_internal! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_internal! {
            config = ($crate::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_internal {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::run_proptest(
                &__config,
                stringify!($name),
                |__rng: &mut $crate::TestRng|
                    -> ::std::result::Result<(), $crate::TestCaseError> {
                    let ($($pat,)+) =
                        ($($crate::Strategy::generate(&($strat), __rng),)+);
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_internal! { config = ($cfg); $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format_args!($($fmt)+),
            )));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &($left);
        let __right = &($right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                __left,
                __right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = &($left);
        let __right = &($right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({:?} vs {:?}) — {}",
                stringify!($left),
                stringify!($right),
                __left,
                __right,
                format_args!($($fmt)+),
            )));
        }
    }};
}

/// Rejects the current case unless `cond` holds; rejected cases are
/// retried with fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tile() -> impl Strategy<Value = (usize, usize)> {
        (1usize..8, 1usize..8).prop_map(|(a, b)| (a * 16, b * 16))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds; tuple + map strategies compose.
        #[test]
        fn strategies_respect_bounds(
            x in 1usize..100,
            f in 0.5f64..2.0,
            (a, b) in tile(),
            pick in prop::sample::select(vec![1usize, 2, 4, 8]),
            xs in prop::collection::vec(1.0f64..100.0, 1..5),
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
            prop_assert!(a % 16 == 0 && (16..128).contains(&a), "a={}", a);
            prop_assert!(b % 16 == 0, "b={}", b);
            prop_assert!([1usize, 2, 4, 8].contains(&pick));
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assume!(x != 1);
            prop_assert_eq!(x.max(2), x);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut rng1 = TestRng::seed_from_u64(name_seed("abc"));
        let mut rng2 = TestRng::seed_from_u64(name_seed("abc"));
        let s = (1usize..1000, 0.0f64..1.0);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng1), s.generate(&mut rng2));
        }
    }

    #[test]
    #[should_panic(expected = "too many prop_assume! rejections")]
    fn rejection_budget_is_enforced() {
        let config = ProptestConfig {
            cases: 4,
            max_global_rejects: 64,
        };
        run_proptest(&config, "always_rejects", |_rng| {
            Err(TestCaseError::reject("never satisfiable"))
        });
    }

    use super::{name_seed, run_proptest, Strategy, TestCaseError, TestRng};
    use rand::SeedableRng;
}
