//! In-flight batching (the paper's Section 7 "Impact on LLM Systems"):
//! requests join and leave the batch between decode steps, so the token
//! count of every projection GEMM changes at runtime — precisely the
//! dynamic-batch regime MikPoly claims compatibility with.
//!
//! ```text
//! cargo run --release --example inflight_batching
//! ```
//!
//! A toy continuous-batching scheduler drives Llama2-13b decode steps with
//! a fluctuating number of in-flight requests. Every new batch size is a
//! new GEMM shape; MikPoly polymerizes it once (microseconds) and serves it
//! from the program cache thereafter.

use mikpoly_suite::accel_sim::MachineModel;
use mikpoly_suite::mikpoly::{MikPoly, OfflineOptions};
use mikpoly_suite::models::LlamaConfig;

fn main() {
    let compiler = MikPoly::offline(MachineModel::a100(), &OfflineOptions::paper());
    let llama = LlamaConfig::llama2_13b_tp4();

    // A bursty arrival pattern: the number of in-flight requests per decode
    // step (as an in-flight batching scheduler would produce).
    let in_flight: Vec<usize> = (0..200)
        .map(|step| {
            let base = 4.0 + 3.0 * ((step as f64) / 17.0).sin() + 2.0 * ((step as f64) / 5.0).cos();
            (base.round() as usize).clamp(1, 9)
        })
        .collect();

    let mut device_ns = 0.0;
    let mut compile_ns: u128 = 0;
    let mut compiles = 0usize;
    let mut cache_hits = 0usize;
    for (step, &batch) in in_flight.iter().enumerate() {
        let cache_len = 128 + step; // KV cache grows every step
        let graph = llama.decode_step_graph(batch, cache_len);
        for op in &graph.ops {
            let run = compiler.run(&op.operator);
            device_ns += run.report.time_ns * op.count as f64;
            compile_ns += run.compile_ns;
            if run.compile_ns > 0 {
                compiles += 1;
            } else {
                cache_hits += 1;
            }
        }
    }

    let batches: std::collections::BTreeSet<usize> = in_flight.iter().copied().collect();
    println!("200 decode steps, in-flight batch fluctuating over {batches:?}");
    println!("device time: {:.2} ms", device_ns / 1e6);
    println!(
        "online compilations: {compiles} (total {:.1} us) — every other operator call \
         ({cache_hits}) hit the program cache",
        compile_ns as f64 / 1e3
    );
    println!(
        "polymerization overhead amortized to {:.4}% of device time",
        compile_ns as f64 / device_ns * 100.0
    );
    assert!(compiles < 200, "shape reuse must keep compilations bounded");
    println!("\nno padding to a fixed maximum batch, no pre-declared batch range:");
    println!("each (batch, cache-block) shape is polymerized on first sight and reused.");
}
