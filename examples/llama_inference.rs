//! Llama2-13b generation with MikPoly GEMMs (the paper's Section 5.2.4).
//!
//! ```text
//! cargo run --release --example llama_inference
//! ```
//!
//! Tensor-parallel Llama2-13b generates 512 tokens from prompts of varying
//! lengths. MikPoly replaces the projection GEMMs inside a
//! FasterTransformer-style runtime; in-flight token counts change every
//! step, which is exactly the dynamic-shape regime MikPoly targets.

use mikpoly_suite::accel_sim::MachineModel;
use mikpoly_suite::baselines::{Backend, FasterTransformer, MikPolyBackend};
use mikpoly_suite::mikpoly::{MikPoly, OfflineOptions};
use mikpoly_suite::models::LlamaConfig;
use std::sync::Arc;

fn main() {
    let machine = MachineModel::a100();
    let mik = MikPolyBackend::new(Arc::new(MikPoly::offline(
        machine.clone(),
        &OfflineOptions::paper(),
    )));
    let ft = FasterTransformer::new(machine);
    let llama = LlamaConfig::llama2_13b_tp4();

    println!("Llama2-13b (TP=4), 512 output tokens\n");
    println!(
        "{:>6} {:>6} {:>12} {:>18} {:>18} {:>9}",
        "batch", "seq", "gemm shapes", "FasterTransformer", "with MikPoly", "speedup"
    );
    for (batch, seq) in [(1usize, 16usize), (1, 128), (4, 128), (8, 512)] {
        let graphs = llama.generation_graphs(batch, seq, 512);
        let latency = |proj: &dyn Backend| -> f64 {
            graphs
                .iter()
                .flat_map(|g| &g.ops)
                .map(|op| {
                    // Attention stays with the baseline runtime, as in the
                    // paper's integration.
                    let backend: &dyn Backend = if op.name.starts_with("attn.") {
                        &ft
                    } else {
                        proj
                    };
                    backend.run(&op.operator).expect("runs").report.time_ns * op.count as f64
                })
                .sum()
        };
        let shapes: usize = graphs.iter().map(|g| g.num_unique_shapes()).sum();
        let base = latency(&ft);
        let mine = latency(&mik);
        println!(
            "{batch:>6} {seq:>6} {shapes:>12} {:>15.2} ms {:>15.2} ms {:>8.2}x",
            base / 1e6,
            mine / 1e6,
            base / mine
        );
    }
    println!("\nprefill shapes grow with the prompt, decode shapes grow with the KV cache:");
    println!("the projection GEMMs MikPoly optimizes are compiled once per 64-token block.");
}
