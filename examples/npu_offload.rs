//! The NPU path: static max-min allocation and all nine polymerization
//! patterns on the Ascend 910A model (the paper's Section 4).
//!
//! ```text
//! cargo run --release --example npu_offload
//! ```
//!
//! Shows what is different on a statically-scheduled accelerator: the
//! compiler — not a hardware scheduler — must place every pipelined task on
//! a DaVinci core, so the cost model optimizes the LPT allocation makespan
//! and the full pattern set I–IX is worth its search cost.

use mikpoly_suite::accel_sim::{simulate, MachineModel, TimingMode};
use mikpoly_suite::baselines::{Backend, VendorLibrary};
use mikpoly_suite::mikpoly::{MikPoly, OfflineOptions};
use mikpoly_suite::tensor_ir::{GemmShape, Operator};

fn main() {
    let npu = MachineModel::ascend910a();
    println!("target: {npu}\n");
    let compiler = MikPoly::offline(npu.clone(), &OfflineOptions::paper());
    let cann = VendorLibrary::cann(npu.clone());

    println!(
        "{:>24} {:>11} {:>7} {:>12} {:>12} {:>9}",
        "(M, N, K)", "pattern", "tasks", "CANN (us)", "MikPoly (us)", "speedup"
    );
    for (m, n, k) in [
        (4096usize, 1024usize, 4096usize),
        (1234, 777, 512),
        (100, 8192, 256),
        (33, 33, 65536),
        (2048, 2048, 2048),
    ] {
        let op = Operator::gemm(GemmShape::new(m, n, k));
        let run = compiler.run(&op);
        let base = cann.run(&op).expect("cann runs");
        println!(
            "{:>24} {:>11} {:>7} {:>12.1} {:>12.1} {:>8.2}x",
            format!("({m}, {n}, {k})"),
            run.program.pattern.to_string().replace("Pattern-", ""),
            run.program.grid_size(),
            base.report.time_us(),
            run.report.time_us(),
            base.report.time_ns / run.report.time_ns
        );
    }

    // Show the allocation itself for one shape: per-core task counts from
    // the max-min (LPT) allocator vs the vendor's round-robin.
    let op = Operator::gemm(GemmShape::new(1234, 777, 512));
    let program = compiler.compile(&op);
    let launch = compiler.launch_for(&program);
    let report = simulate(&npu, &launch, TimingMode::Evaluate);
    let tasks: Vec<usize> = report.per_pe.iter().map(|p| p.tasks).collect();
    println!(
        "\nmax-min allocation of {} tasks over {} cores: per-core min {} / max {} tasks, \
         sm_efficiency {:.1}%",
        program.grid_size(),
        npu.num_pes,
        tasks.iter().min().expect("cores exist"),
        tasks.iter().max().expect("cores exist"),
        report.sm_efficiency * 100.0
    );
}
