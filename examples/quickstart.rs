//! Quickstart: compile and run one dynamic-shape GEMM with MikPoly.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the whole two-stage pipeline: the offline stage tunes a
//! micro-kernel library for the (simulated) A100, then three GEMMs whose
//! shapes "arrive at runtime" are polymerized on the fly, timed on the
//! simulator, and functionally verified against a reference GEMM.

use mikpoly_suite::accel_sim::MachineModel;
use mikpoly_suite::mikpoly::{execute_gemm, MikPoly, OfflineOptions};
use mikpoly_suite::tensor_ir::{reference_gemm, GemmShape, Operator, Tensor};

fn main() {
    // ---- Offline stage (once per platform) -----------------------------
    let machine = MachineModel::a100();
    println!("offline: tuning micro-kernels for {machine} ...");
    let t0 = std::time::Instant::now();
    let compiler = MikPoly::offline(machine, &OfflineOptions::paper());
    println!(
        "offline: retained {} micro-kernels in {:.1?}\n",
        compiler.library().kernels.len(),
        t0.elapsed()
    );

    // ---- Online stage (per runtime shape) ------------------------------
    for (m, n, k) in [
        (4096usize, 1024usize, 4096usize),
        (105, 1024, 12544),
        (37, 3072, 768),
    ] {
        let op = Operator::gemm(GemmShape::new(m, n, k));
        let run = compiler.run(&op);
        println!(
            "{op}: {} -> {} region(s), grid {}, {:.1} us on device \
             (polymerized in {:.1} us, {} strategies tried)",
            run.program.pattern,
            run.program.regions.len(),
            run.program.grid_size(),
            run.report.time_us(),
            run.compile_ns as f64 / 1e3,
            run.program.stats.strategies_evaluated,
        );
        for line in run.program.to_string().lines() {
            println!("    {line}");
        }
    }

    // ---- Functional verification ---------------------------------------
    let shape = GemmShape::new(100, 70, 33);
    let program = compiler.compile(&Operator::gemm(shape));
    let a = Tensor::random(&[shape.m, shape.k], 1);
    let b = Tensor::random(&[shape.k, shape.n], 2);
    let got = execute_gemm(&program, &a, &b);
    let want = reference_gemm(shape, &a, &b);
    assert!(got.approx_eq(&want, 1e-3));
    println!("\nfunctional check on {shape}: polymerized program matches reference GEMM");
}
