//! Dynamic sequence lengths: serving BERT with MikPoly vs the vendor
//! library (the paper's Section 2.1 scenario 3 and Fig. 8).
//!
//! ```text
//! cargo run --release --example bert_serving
//! ```
//!
//! A stream of requests with random sentence lengths in [5, 500] hits a
//! BERT-base "server". Every new length produces six new GEMM shapes; the
//! vendor library picks from its fixed kernel menu while MikPoly
//! polymerizes a program per shape (cached for repeats).

use mikpoly_suite::accel_sim::MachineModel;
use mikpoly_suite::baselines::{Backend, MikPolyBackend, VendorLibrary};
use mikpoly_suite::mikpoly::{MikPoly, OfflineOptions, TemplateKind};
use mikpoly_suite::models::TransformerConfig;
use mikpoly_suite::workloads::sentence_lengths;
use std::sync::Arc;

fn main() {
    let machine = MachineModel::a100();
    let options = OfflineOptions::paper().with_template(TemplateKind::Gemm);
    let compiler = Arc::new(MikPoly::offline(machine.clone(), &options));
    let mik = MikPolyBackend::new(compiler);
    let cublas = VendorLibrary::cublas(machine);

    let bert = TransformerConfig::bert_base();
    println!("serving {} with dynamic sequence lengths\n", bert.name);
    println!(
        "{:>6} {:>14} {:>14} {:>9}",
        "seq", "cuBLAS (us)", "MikPoly (us)", "speedup"
    );

    let mut total_base = 0.0;
    let mut total_mik = 0.0;
    for &len in sentence_lengths().iter().take(12) {
        let graph = bert.graph(1, len);
        let latency = |backend: &dyn Backend| -> f64 {
            graph
                .ops
                .iter()
                .map(|op| {
                    let run = backend.run(&op.operator).expect("in-range GEMMs");
                    run.report.time_ns * op.count as f64
                })
                .sum()
        };
        let base = latency(&cublas);
        let mine = latency(&mik);
        total_base += base;
        total_mik += mine;
        println!(
            "{len:>6} {:>14.1} {:>14.1} {:>8.2}x",
            base / 1e3,
            mine / 1e3,
            base / mine
        );
    }
    println!(
        "\noverall: {:.2}x over cuBLAS across the request stream (paper Fig. 8: ~1.39x)",
        total_base / total_mik
    );
}
