//! Dynamic image resolutions: a detection-style CNN whose input size
//! changes per image (the paper's Section 2.1 scenario 2 and Fig. 9).
//!
//! ```text
//! cargo run --release --example detection_resolution
//! ```
//!
//! ResNet-18 runs over images of varying resolution; convolutions lower to
//! implicit GEMM and go through MikPoly's conv-template micro-kernel
//! library, fully-connected layers through the GEMM library — against the
//! cuDNN/cuBLAS pair.

use mikpoly_suite::accel_sim::MachineModel;
use mikpoly_suite::baselines::{Backend, MikPolyBackend, VendorLibrary};
use mikpoly_suite::mikpoly::{MikPoly, OfflineOptions, TemplateKind};
use mikpoly_suite::models::CnnConfig;
use std::sync::Arc;

fn main() {
    let machine = MachineModel::a100();
    let gemm = MikPolyBackend::new(Arc::new(MikPoly::offline(
        machine.clone(),
        &OfflineOptions::paper().with_template(TemplateKind::Gemm),
    )));
    let conv = MikPolyBackend::new(Arc::new(MikPoly::offline(
        machine.clone(),
        &OfflineOptions::paper().with_template(TemplateKind::Conv),
    )));
    let cublas = VendorLibrary::cublas(machine.clone());
    let cudnn = VendorLibrary::cudnn(machine);

    let model = CnnConfig::resnet18();
    println!("{} at dynamic resolutions (batch 4)\n", model.name);
    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>9}",
        "res", "convs", "vendor (us)", "MikPoly (us)", "speedup"
    );

    for res in [64usize, 160, 224, 320, 448, 640] {
        let graph = model.graph(4, res);
        let latency = |g: &dyn Backend, c: &dyn Backend| -> f64 {
            graph
                .ops
                .iter()
                .map(|op| {
                    let backend = if op.operator.kind() == "conv2d" { c } else { g };
                    backend.run(&op.operator).expect("runs").report.time_ns * op.count as f64
                })
                .sum()
        };
        let base = latency(&cublas, &cudnn);
        let mine = latency(&gemm, &conv);
        let convs = graph
            .ops
            .iter()
            .filter(|o| o.operator.kind() == "conv2d")
            .count();
        println!(
            "{res:>6} {convs:>8} {:>14.1} {:>14.1} {:>8.2}x",
            base / 1e3,
            mine / 1e3,
            base / mine
        );
    }
    println!("\nevery resolution is a fresh shape set: no retuning, just polymerization.");
}
