//! Dynamic-shape compiler shootout: MikPoly vs DietCode vs Nimble on CUDA
//! cores, including the out-of-range failure mode (the paper's
//! Section 5.2.3 and Table 5).
//!
//! ```text
//! cargo run --release --example compiler_shootout
//! ```
//!
//! DietCode and Nimble must declare the dynamic ranges up front; shapes the
//! developer did not anticipate become *invalid runs*. MikPoly needs no
//! range at all.

use mikpoly_suite::accel_sim::MachineModel;
use mikpoly_suite::baselines::{Backend, DietCode, GemmRanges, MikPolyBackend, Nimble};
use mikpoly_suite::mikpoly::{MikPoly, OfflineOptions};
use mikpoly_suite::tensor_ir::{GemmShape, Operator};
use std::sync::Arc;

fn main() {
    // DietCode and Nimble only target CUDA cores.
    let machine = MachineModel::a100_cuda_cores();
    let mik = MikPolyBackend::new(Arc::new(MikPoly::offline(
        machine.clone(),
        &OfflineOptions::paper(),
    )));
    // The developer profiled sequences up to 2048 and declared that range.
    let declared = GemmRanges::cube(1, 2048);
    let dietcode = DietCode::compile(machine.clone(), declared);
    let nimble = Nimble::compile(machine, declared);
    println!(
        "DietCode pre-compiled {} programs for the declared range [1, 2048]^3\n",
        dietcode.num_programs()
    );

    // Warmed-up per-run device times (plus recurring dispatch overhead for
    // the VM-based compilers), matching the paper's 20-run averaging.
    let fmt = |r: Result<mikpoly_suite::baselines::BackendRun, _>| match r {
        Ok(run) => format!("{:>10.1} us", run.report.time_ns / 1e3),
        Err(_) => "  INVALID RUN".to_string(),
    };
    println!(
        "{:>22} {:>14} {:>14} {:>14}",
        "(M, N, K)", "MikPoly", "DietCode", "Nimble"
    );
    for (m, n, k) in [
        (512usize, 512usize, 512usize),
        (777, 333, 1999),
        (2048, 2048, 2048),
        // The input the developer never anticipated:
        (3000, 1024, 1024),
        (64, 64, 100_000),
    ] {
        let op = Operator::gemm(GemmShape::new(m, n, k));
        println!(
            "{:>22} {:>14} {:>14} {:>14}",
            format!("({m}, {n}, {k})"),
            fmt(mik.run(&op)),
            fmt(dietcode.run(&op)),
            fmt(nimble.run(&op)),
        );
    }
    println!("\nMikPoly optimizes arbitrary runtime shapes: no declared range, no invalid runs.");
}
