//! The [`Engine`] runtime API on a Vision Transformer with dynamic
//! resolution (extension).
//!
//! ```text
//! cargo run --release --example engine_vit
//! ```
//!
//! One `Engine` owns both per-template compilers, routes GEMMs and
//! convolutions automatically, and — with [`ConvAlgorithm::CostBased`] —
//! uses the polymerization cost model as an *algorithm selector* between
//! implicit-GEMM and Winograd convolution (the paper's two Section 7
//! future-work items in one place).

use mikpoly_suite::accel_sim::MachineModel;
use mikpoly_suite::mikpoly::{ConvAlgorithm, Engine, OfflineOptions};
use mikpoly_suite::models::{CnnConfig, VitConfig};

fn main() {
    let engine = Engine::offline(MachineModel::a100(), &OfflineOptions::paper())
        .with_conv_algorithm(ConvAlgorithm::CostBased);

    // ViT: resolution changes every GEMM in the network.
    let vit = VitConfig::vit_b16();
    println!("{} at dynamic resolutions (batch 2)\n", vit.name);
    println!(
        "{:>6} {:>8} {:>12} {:>14} {:>14}",
        "res", "tokens", "GFLOPs", "device (ms)", "compiles"
    );
    for res in [224usize, 288, 384, 512, 640] {
        let graph = vit.graph(2, res);
        let result = engine.run_graph(graph.ops.iter().map(|o| (&o.operator, o.count)));
        println!(
            "{res:>6} {:>8} {:>12.1} {:>14.3} {:>14}",
            vit.tokens(res),
            graph.total_flops() / 1e9,
            result.device_ms(),
            result.compilations
        );
    }

    // ResNet: the cost model decides implicit GEMM vs Winograd per layer.
    let resnet = CnnConfig::resnet18();
    let graph = resnet.graph(8, 224);
    let mut winograd_layers = 0usize;
    for op in &graph.ops {
        if engine.select(&op.operator).kind() == "conv2d-winograd" {
            winograd_layers += 1;
        }
    }
    let convs = graph
        .ops
        .iter()
        .filter(|o| o.operator.kind() == "conv2d")
        .count();
    println!(
        "\n{}: the engine dispatched {winograd_layers} of {convs} convolutions to \
         Winograd F(2x2, 3x3) (cost-based selection; strided/large filters stay on \
         implicit GEMM)",
        resnet.name
    );
}
