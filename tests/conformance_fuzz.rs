//! Differential shape fuzzer, end to end: a seeded run over both machine
//! models must find zero mismatches, the committed regression corpus must
//! replay clean, and corpus persistence must round-trip losslessly.

use std::path::PathBuf;

use mikpoly_conformance::{
    append_to_corpus, default_case_count, fuzz_run, load_corpus, save_corpus, shrink,
    ConformanceEnv, FuzzCase, FuzzConfig, MachineKind, OpSpec,
};

fn corpus_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(name)
}

#[test]
fn seeded_fuzz_run_finds_zero_mismatches() {
    let env = ConformanceEnv::fast();
    let config = FuzzConfig {
        seed: 7,
        cases: 48,
        ..FuzzConfig::default()
    };
    let report = fuzz_run(&env, &config, &[]);
    assert_eq!(report.cases_run, 48);
    assert_eq!(report.corpus_replayed, 0);
    assert!(
        report.failures.is_empty(),
        "differential fuzzer found mismatches: {:#?}",
        report.failures
    );
    assert_eq!(report.shrink_steps, 0, "nothing failed, nothing to shrink");
}

#[test]
fn committed_corpora_replay_clean() {
    let env = ConformanceEnv::fast();
    for name in ["pinned-shapes.json", "regressions.json"] {
        let corpus = load_corpus(corpus_path(name)).expect("committed corpus must parse");
        let config = FuzzConfig {
            cases: 0,
            ..FuzzConfig::default()
        };
        let report = fuzz_run(&env, &config, &corpus);
        assert_eq!(report.corpus_replayed, corpus.len(), "{name}");
        assert!(
            report.failures.is_empty(),
            "{name} replay failed: {:#?}",
            report.failures
        );
    }
    // The pinned corpus is the fidelity gate's input; it must not be empty.
    let pinned = load_corpus(corpus_path("pinned-shapes.json")).expect("parse");
    assert!(pinned.len() >= 20, "pinned corpus too small to gate on");
}

#[test]
fn corpus_persistence_round_trips_and_deduplicates() {
    let path = std::env::temp_dir().join(format!(
        "mikpoly-conformance-corpus-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    // Missing file reads as an empty corpus.
    assert!(load_corpus(&path).expect("missing is empty").is_empty());

    let cases = [
        FuzzCase {
            machine: MachineKind::Gpu,
            op: OpSpec::Gemm { m: 17, n: 31, k: 5 },
            data_seed: 0xDEAD_BEEF,
        },
        FuzzCase {
            machine: MachineKind::Npu,
            op: OpSpec::Conv2d {
                batch: 1,
                in_channels: 3,
                height: 8,
                width: 8,
                out_channels: 4,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            data_seed: 42,
        },
    ];
    save_corpus(&path, &cases).expect("save");
    assert_eq!(load_corpus(&path).expect("load"), cases);

    // Appending an existing case is a no-op; a new one lands at the end.
    append_to_corpus(&path, &cases[0]).expect("append dup");
    assert_eq!(load_corpus(&path).expect("load").len(), 2);
    let extra = FuzzCase {
        machine: MachineKind::Gpu,
        op: OpSpec::BatchedGemm {
            batch: 3,
            m: 16,
            n: 16,
            k: 8,
        },
        data_seed: 1,
    };
    append_to_corpus(&path, &extra).expect("append new");
    let reread = load_corpus(&path).expect("load");
    assert_eq!(reread.len(), 3);
    assert_eq!(reread[2], extra);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn shrinking_never_replaces_a_failure_with_a_passing_case() {
    // On a healthy build every shrink candidate passes, so the shrinker
    // must keep the original case and reason rather than "minimize" to a
    // case that does not reproduce anything.
    let env = ConformanceEnv::fast();
    let case = FuzzCase {
        machine: MachineKind::Gpu,
        op: OpSpec::Gemm {
            m: 24,
            n: 20,
            k: 12,
        },
        data_seed: 9,
    };
    let (minimal, reason, steps) = shrink(&env, case, "synthetic failure".into(), 64);
    assert_eq!(minimal, case, "shrunk away from the reported failure");
    assert_eq!(reason, "synthetic failure");
    assert!(steps > 0, "shrinker must actually try candidates");
    assert!(steps <= 64, "shrinker overran its budget");
}

#[test]
fn conformance_cases_env_var_scales_the_default() {
    // Serialized within this one test to avoid races on the process env.
    std::env::set_var("CONFORMANCE_CASES", "5");
    assert_eq!(default_case_count(), 5);
    assert_eq!(FuzzConfig::default().cases, 5);
    std::env::set_var("CONFORMANCE_CASES", "not-a-number");
    assert_eq!(default_case_count(), 64, "garbage falls back to default");
    std::env::remove_var("CONFORMANCE_CASES");
    assert_eq!(default_case_count(), 64);
}
