//! Differential shape fuzzer, end to end: a seeded run over both machine
//! models must find zero mismatches, the committed regression corpus must
//! replay clean, and corpus persistence must round-trip losslessly.

use std::path::PathBuf;

use mikpoly_conformance::{
    append_to_corpus, default_case_count, fuzz_run, load_corpus, run_case, save_corpus, shrink,
    ConformanceEnv, FaultSpec, FuzzCase, FuzzConfig, MachineKind, OpSpec,
};

fn corpus_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(name)
}

#[test]
fn seeded_fuzz_run_finds_zero_mismatches() {
    let env = ConformanceEnv::fast();
    let config = FuzzConfig {
        seed: 7,
        cases: 48,
        ..FuzzConfig::default()
    };
    let report = fuzz_run(&env, &config, &[]);
    assert_eq!(report.cases_run, 48);
    assert_eq!(report.corpus_replayed, 0);
    assert!(
        report.failures.is_empty(),
        "differential fuzzer found mismatches: {:#?}",
        report.failures
    );
    assert_eq!(report.shrink_steps, 0, "nothing failed, nothing to shrink");
}

#[test]
fn committed_corpora_replay_clean() {
    let env = ConformanceEnv::fast();
    for name in ["pinned-shapes.json", "regressions.json"] {
        let corpus = load_corpus(corpus_path(name)).expect("committed corpus must parse");
        let config = FuzzConfig {
            cases: 0,
            ..FuzzConfig::default()
        };
        let report = fuzz_run(&env, &config, &corpus);
        assert_eq!(report.corpus_replayed, corpus.len(), "{name}");
        assert!(
            report.failures.is_empty(),
            "{name} replay failed: {:#?}",
            report.failures
        );
    }
    // The pinned corpus is the fidelity gate's input; it must not be empty.
    let pinned = load_corpus(corpus_path("pinned-shapes.json")).expect("parse");
    assert!(pinned.len() >= 20, "pinned corpus too small to gate on");
}

#[test]
fn corpus_persistence_round_trips_and_deduplicates() {
    let path = std::env::temp_dir().join(format!(
        "mikpoly-conformance-corpus-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    // Missing file reads as an empty corpus.
    assert!(load_corpus(&path).expect("missing is empty").is_empty());

    let cases = [
        FuzzCase {
            machine: MachineKind::Gpu,
            op: OpSpec::Gemm { m: 17, n: 31, k: 5 },
            data_seed: 0xDEAD_BEEF,
            fault: None,
        },
        FuzzCase {
            machine: MachineKind::Npu,
            op: OpSpec::Conv2d {
                batch: 1,
                in_channels: 3,
                height: 8,
                width: 8,
                out_channels: 4,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            data_seed: 42,
            fault: None,
        },
    ];
    save_corpus(&path, &cases).expect("save");
    assert_eq!(load_corpus(&path).expect("load"), cases);

    // Appending an existing case is a no-op; a new one lands at the end.
    append_to_corpus(&path, &cases[0]).expect("append dup");
    assert_eq!(load_corpus(&path).expect("load").len(), 2);
    let extra = FuzzCase {
        machine: MachineKind::Gpu,
        op: OpSpec::BatchedGemm {
            batch: 3,
            m: 16,
            n: 16,
            k: 8,
        },
        data_seed: 1,
        fault: None,
    };
    append_to_corpus(&path, &extra).expect("append new");
    let reread = load_corpus(&path).expect("load");
    assert_eq!(reread.len(), 3);
    assert_eq!(reread[2], extra);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn faulted_cases_recover_and_still_pass_every_property() {
    // A case carrying every fault dimension at once — injected compile
    // panic, corrupted cache entry, search stall — must recover (one
    // retry, poisoned-entry eviction) and then pass the same differential
    // properties as a clean case.
    let env = ConformanceEnv::fast();
    let case = FuzzCase {
        machine: MachineKind::Gpu,
        op: OpSpec::Gemm {
            m: 37,
            n: 29,
            k: 11,
        },
        data_seed: 0xFA_017,
        fault: Some(FaultSpec {
            seed: 0xBAD,
            stall: true,
            corrupt: true,
            panic: true,
        }),
    };
    run_case(&env, &case).expect("faulted case must recover and pass");
    // The display form names the live fault dimensions for corpus triage.
    assert!(case
        .to_string()
        .contains("fault(seed=0xbad+stall+corrupt+panic"));
}

#[test]
fn pre_fault_corpora_still_parse_and_faulted_cases_round_trip() {
    // Corpora written before the fault dimension existed have no `fault`
    // key; they must load as fault-free cases.
    let legacy = r#"[{"machine":"Gpu","op":{"Gemm":{"m":8,"n":8,"k":8}},"data_seed":3}]"#;
    let path = std::env::temp_dir().join(format!(
        "mikpoly-conformance-legacy-{}.json",
        std::process::id()
    ));
    std::fs::write(&path, legacy).expect("write");
    let corpus = load_corpus(&path).expect("legacy corpus parses");
    assert_eq!(corpus.len(), 1);
    assert_eq!(corpus[0].fault, None);

    // A faulted case survives the save/load round trip intact.
    let faulted = FuzzCase {
        machine: MachineKind::Npu,
        op: OpSpec::Gemm { m: 9, n: 7, k: 5 },
        data_seed: 11,
        fault: Some(FaultSpec {
            seed: 13,
            stall: false,
            corrupt: true,
            panic: false,
        }),
    };
    append_to_corpus(&path, &faulted).expect("append");
    let reread = load_corpus(&path).expect("load");
    assert_eq!(reread.len(), 2);
    assert_eq!(reread[1], faulted);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn shrinking_drops_the_fault_dimension_when_failure_is_fault_free() {
    // On a healthy build a faulted case passes, so the shrinker keeps the
    // original (synthetic) failure — but it must have *tried* the
    // fault-free variant first, which costs exactly one extra step
    // compared to the fault-free shrink of the same shape.
    let env = ConformanceEnv::fast();
    let shape = OpSpec::Gemm { m: 12, n: 10, k: 6 };
    let clean = FuzzCase {
        machine: MachineKind::Gpu,
        op: shape,
        data_seed: 9,
        fault: None,
    };
    let faulted = FuzzCase {
        fault: Some(FaultSpec {
            seed: 1,
            stall: false,
            corrupt: false,
            panic: true,
        }),
        ..clean
    };
    let (_, _, clean_steps) = shrink(&env, clean, "synthetic".into(), 64);
    let (minimal, _, fault_steps) = shrink(&env, faulted, "synthetic".into(), 64);
    assert_eq!(minimal, faulted, "healthy build: nothing reproduces");
    assert_eq!(fault_steps, clean_steps + 1, "fault-drop must be attempted");
}

#[test]
fn shrinking_never_replaces_a_failure_with_a_passing_case() {
    // On a healthy build every shrink candidate passes, so the shrinker
    // must keep the original case and reason rather than "minimize" to a
    // case that does not reproduce anything.
    let env = ConformanceEnv::fast();
    let case = FuzzCase {
        machine: MachineKind::Gpu,
        op: OpSpec::Gemm {
            m: 24,
            n: 20,
            k: 12,
        },
        data_seed: 9,
        fault: None,
    };
    let (minimal, reason, steps) = shrink(&env, case, "synthetic failure".into(), 64);
    assert_eq!(minimal, case, "shrunk away from the reported failure");
    assert_eq!(reason, "synthetic failure");
    assert!(steps > 0, "shrinker must actually try candidates");
    assert!(steps <= 64, "shrinker overran its budget");
}

#[test]
fn conformance_cases_env_var_scales_the_default() {
    // Serialized within this one test to avoid races on the process env.
    std::env::set_var("CONFORMANCE_CASES", "5");
    assert_eq!(default_case_count(), 5);
    assert_eq!(FuzzConfig::default().cases, 5);
    std::env::set_var("CONFORMANCE_CASES", "not-a-number");
    assert_eq!(default_case_count(), 64, "garbage falls back to default");
    std::env::remove_var("CONFORMANCE_CASES");
    assert_eq!(default_case_count(), 64);
}
