//! Integration tests for the `Engine` runtime across the model zoo:
//! routing, algorithm selection, staging, and AOT warm-up working together.

use std::sync::{Arc, OnceLock};

use mikpoly_suite::accel_sim::MachineModel;
use mikpoly_suite::mikpoly::{ConvAlgorithm, Engine, MikPoly, OfflineOptions, TemplateKind};
use mikpoly_suite::models::{CnnConfig, TransformerConfig, VitConfig};
use mikpoly_suite::tensor_ir::Operator;

fn engine() -> &'static Engine {
    static E: OnceLock<Engine> = OnceLock::new();
    E.get_or_init(|| {
        let mut options = OfflineOptions::fast();
        options.n_gen = 4;
        Engine::offline(MachineModel::a100(), &options)
            .with_conv_algorithm(ConvAlgorithm::CostBased)
    })
}

#[test]
fn engine_runs_every_model_in_the_zoo() {
    let graphs = vec![
        TransformerConfig::bert_base().graph(1, 60),
        CnnConfig::alexnet().graph(1, 64),
        CnnConfig::googlenet().graph(1, 64),
        CnnConfig::resnet18().graph(1, 64),
        CnnConfig::vgg11().graph(1, 64),
        VitConfig::vit_b16().graph(1, 64),
    ];
    for graph in graphs {
        let result = engine().run_graph(graph.ops.iter().map(|o| (&o.operator, o.count)));
        assert!(result.device_ns > 0.0, "{graph}");
        assert_eq!(result.executions, graph.num_executions(), "{graph}");
        assert!(
            result.compilations <= graph.num_unique_shapes() * 2,
            "{graph}"
        );
    }
}

#[test]
fn cost_based_selection_only_rewrites_eligible_convs() {
    let graph = CnnConfig::resnet18().graph(2, 64);
    for op in &graph.ops {
        let dispatched = engine().select(&op.operator);
        match op.operator {
            Operator::Conv2d { shape, .. } => {
                if shape.kernel_h != 3 || shape.stride != 1 {
                    assert_eq!(dispatched.kind(), "conv2d", "{}", op.name);
                }
            }
            _ => assert_eq!(dispatched, op.operator, "{}", op.name),
        }
    }
}

#[test]
fn staged_execution_covers_all_ops_exactly_once() {
    let graph = CnnConfig::googlenet().graph(1, 96);
    let staged: usize = graph.stages().iter().map(|s| s.len()).sum();
    assert_eq!(staged, graph.ops.len());
    // Stages are ordered and non-empty.
    for stage in graph.stages() {
        assert!(!stage.is_empty());
    }
}

#[test]
fn engine_cache_is_shared_across_graph_runs() {
    let graph = TransformerConfig::distilbert().graph(1, 44);
    let first = engine().run_graph(graph.ops.iter().map(|o| (&o.operator, o.count)));
    let second = engine().run_graph(graph.ops.iter().map(|o| (&o.operator, o.count)));
    assert!(first.device_ns > 0.0);
    assert_eq!(second.compilations, 0, "second pass must be fully cached");
    assert!((first.device_ns - second.device_ns).abs() < 1e-6);
}

#[test]
fn aot_bundles_move_between_engine_instances() {
    let mut options = OfflineOptions::fast();
    options.n_gen = 4;
    let machine = MachineModel::a100();
    let producer = MikPoly::offline(machine.clone(), &options);
    let graph = VitConfig::vit_b16().graph(1, 96);
    let ops: Vec<Operator> = graph
        .ops
        .iter()
        .filter(|o| o.operator.kind() != "conv2d")
        .map(|o| o.operator)
        .collect();
    producer.compile_many(&ops);
    let path = std::env::temp_dir().join("mikpoly-engine-aot.json");
    producer.save_program_cache(&path).expect("save");

    let consumer_gemm = Arc::new(MikPoly::with_library(
        machine.clone(),
        producer.library().clone(),
    ));
    consumer_gemm.load_program_cache(&path).expect("load");
    let consumer = Engine::from_compilers(
        machine.clone(),
        consumer_gemm,
        Arc::new(MikPoly::offline(
            machine,
            &options.clone().with_template(TemplateKind::Conv),
        )),
    );
    for op in &ops {
        assert_eq!(consumer.run_operator(op).run.compile_ns, 0, "{op}");
    }
    let _ = std::fs::remove_file(path);
}
