//! End-to-end pipeline tests across crates: offline tuning -> online
//! polymerization -> simulated execution -> reported counters, on both
//! machine models and against every baseline.

use std::sync::{Arc, OnceLock};

use mikpoly_suite::accel_sim::MachineModel;
use mikpoly_suite::baselines::{
    Backend, BackendError, CutlassLibrary, DietCode, GemmRanges, MikPolyBackend, Nimble,
    VendorLibrary,
};
use mikpoly_suite::mikpoly::{MikPoly, OfflineOptions, TemplateKind};
use mikpoly_suite::models::{CnnConfig, LlamaConfig, TransformerConfig};
use mikpoly_suite::tensor_ir::{GemmShape, Operator};

fn gpu_compiler() -> Arc<MikPoly> {
    static C: OnceLock<Arc<MikPoly>> = OnceLock::new();
    Arc::clone(C.get_or_init(|| {
        let mut options = OfflineOptions::fast();
        options.n_gen = 5;
        Arc::new(MikPoly::offline(MachineModel::a100(), &options))
    }))
}

#[test]
fn all_backends_agree_on_total_flops() {
    let machine = MachineModel::a100();
    let op = Operator::gemm(GemmShape::new(512, 256, 128));
    let backends: Vec<Box<dyn Backend>> = vec![
        Box::new(VendorLibrary::cublas(machine.clone())),
        Box::new(CutlassLibrary::new(machine.clone())),
        Box::new(MikPolyBackend::new(gpu_compiler())),
    ];
    for b in &backends {
        let run = b.run(&op).expect("in-range");
        // Local padding may execute more FLOPs than the operator needs,
        // never fewer.
        assert!(
            run.report.total_flops >= op.flops(),
            "{} executed too little work",
            b.name()
        );
        assert!(run.report.time_ns > 0.0);
        assert!(run.report.sm_efficiency > 0.0 && run.report.sm_efficiency <= 1.0);
    }
}

#[test]
fn mikpoly_beats_vendor_on_skinny_dynamic_shapes() {
    // The headline phenomenon: the vendor library's bucketed heuristic
    // falls off a cliff on shapes like Fig. 1's (105, 1024, 12544).
    let machine = MachineModel::a100();
    let vendor = VendorLibrary::cublas(machine.clone());
    let mik = MikPolyBackend::new(gpu_compiler());
    let op = Operator::gemm(GemmShape::new(105, 1024, 12544));
    let v = vendor.run(&op).expect("runs").report.time_ns;
    let m = mik.run(&op).expect("runs").report.time_ns;
    assert!(v / m > 1.5, "expected a clear win, got {:.2}x", v / m);
}

#[test]
fn vendor_beats_mikpoly_on_its_golden_shape() {
    // Hand-tuned assembly keeps the vendor ahead on large round shapes
    // (also visible in the paper's Fig. 6 scatter).
    let machine = MachineModel::a100();
    let vendor = VendorLibrary::cublas(machine.clone());
    let mik = MikPolyBackend::new(gpu_compiler());
    let op = Operator::gemm(GemmShape::new(4096, 4096, 4096));
    let v = vendor.run(&op).expect("runs").report.time_ns;
    let m = mik.run(&op).expect("runs").report.time_ns;
    assert!(v < m * 1.3, "vendor should be competitive: {:.2}x", v / m);
}

#[test]
fn range_compilers_fail_exactly_outside_their_ranges() {
    let machine = MachineModel::a100_cuda_cores();
    let ranges = GemmRanges::cube(16, 1024);
    let dietcode = DietCode::compile(machine.clone(), ranges);
    let nimble = Nimble::compile(machine, ranges);
    let inside = Operator::gemm(GemmShape::new(512, 512, 512));
    let outside = Operator::gemm(GemmShape::new(512, 2048, 512));
    for backend in [&dietcode as &dyn Backend, &nimble as &dyn Backend] {
        assert!(
            backend.run(&inside).is_ok(),
            "{} failed in range",
            backend.name()
        );
        match backend.run(&outside) {
            Err(BackendError::OutOfRange {
                dimension: "N",
                value: 2048,
                ..
            }) => {}
            other => panic!("{}: expected N out of range, got {other:?}", backend.name()),
        }
    }
}

#[test]
fn transformer_graph_runs_through_mikpoly_end_to_end() {
    let mik = MikPolyBackend::new(gpu_compiler());
    let graph = TransformerConfig::distilbert().graph(1, 77);
    let mut total = 0.0;
    for op in &graph.ops {
        let run = mik.run(&op.operator).expect("runs");
        total += run.report.time_ns * op.count as f64;
    }
    assert!(total > 0.0);
    // Six unique shapes -> at most six non-cached compilations.
    let recompiled = graph
        .ops
        .iter()
        .map(|op| mik.run(&op.operator).expect("runs").overhead_ns)
        .filter(|&o| o > 0.0)
        .count();
    assert_eq!(recompiled, 0, "second pass must hit the program cache");
}

#[test]
fn cnn_graph_runs_on_both_machines() {
    let graph = CnnConfig::alexnet().graph(2, 64);
    for machine in [MachineModel::a100(), MachineModel::ascend910a()] {
        let mut options = OfflineOptions::fast();
        options.n_gen = 4;
        let gemm = MikPoly::offline(machine.clone(), &options);
        let conv = MikPoly::offline(
            machine.clone(),
            &options.clone().with_template(TemplateKind::Conv),
        );
        let mut total = 0.0;
        for op in &graph.ops {
            let c = if op.operator.kind() == "conv2d" {
                &conv
            } else {
                &gemm
            };
            let run = c.run(&op.operator);
            run.program.verify_coverage().expect("coverage");
            total += run.report.time_ns;
        }
        assert!(total > 0.0, "{}", machine.name);
    }
}

#[test]
fn llama_decode_steps_share_programs_across_layers() {
    let mik = gpu_compiler();
    let llama = LlamaConfig::llama2_13b_tp4();
    let graphs = llama.generation_graphs(1, 64, 128);
    // 128 decode steps but only a handful of distinct graphs.
    assert!(graphs.len() <= 4);
    let mut compile_events = 0usize;
    for g in &graphs {
        for op in &g.ops {
            let run = mik.run(&op.operator);
            if run.compile_ns > 0 {
                compile_events += 1;
            }
        }
    }
    // Each unique shape compiles exactly once across the whole generation.
    let unique: usize = graphs.iter().map(|g| g.num_unique_shapes()).sum();
    assert!(compile_events <= unique);
}

#[test]
fn oracle_is_a_lower_bound_for_all_variants() {
    use mikpoly_suite::mikpoly::{CostModelKind, OnlineOptions};
    let mut options = OfflineOptions::fast();
    options.n_gen = 4;
    let machine = MachineModel::a100();
    let lib_owner = MikPoly::offline(machine.clone(), &options);
    let op = Operator::gemm(GemmShape::new(700, 300, 150));
    let oracle = lib_owner.compile_oracle(&op);
    let oracle_ns = lib_owner.simulate(&oracle.program).time_ns;
    for kind in [
        CostModelKind::Full,
        CostModelKind::WaveOnly,
        CostModelKind::PipeOnly,
    ] {
        let variant = MikPoly::with_library(machine.clone(), lib_owner.library().clone())
            .with_options(OnlineOptions {
                cost_model: kind,
                ..OnlineOptions::default()
            });
        let ns = variant.run(&op).report.time_ns;
        assert!(
            oracle_ns <= ns + 1e-6,
            "{kind}: oracle {oracle_ns} worse than variant {ns}"
        );
    }
}

#[test]
fn winograd_path_compiles_and_is_profitable_on_compute_bound_convs() {
    use mikpoly_suite::tensor_ir::Conv2dShape;
    let mik = MikPolyBackend::new(gpu_compiler());
    // A compute-bound 3x3 stride-1 layer.
    let shape = Conv2dShape::square(8, 256, 56, 256, 3, 1);
    let direct = mik.run(&Operator::conv2d(shape)).expect("conv runs");
    let wino = mik
        .run(&Operator::conv2d_winograd(shape))
        .expect("winograd runs");
    assert!(wino.report.time_ns > 0.0);
    assert!(
        wino.report.time_ns < direct.report.time_ns,
        "Winograd should win on a compute-bound layer: {} vs {}",
        wino.report.time_ns,
        direct.report.time_ns
    );
}

#[test]
fn winograd_reference_matches_direct_reference() {
    use mikpoly_suite::tensor_ir::{reference_conv2d, winograd_conv2d, Conv2dShape, Tensor};
    let shape = Conv2dShape::square(2, 6, 12, 5, 3, 1);
    let input = Tensor::random(&[2, 6, 12, 12], 71);
    let filter = Tensor::random(&[5, 6, 3, 3], 72);
    let direct = reference_conv2d(shape, &input, &filter);
    let wino = winograd_conv2d(shape, &input, &filter);
    assert!(wino.approx_eq(&direct, 1e-3));
}
