//! The cost-model-fidelity gate: the committed pinned corpus must pass
//! under the full Eq. 2 cost model, and a deliberately injected cost-model
//! bug (dropping a term, as in the paper's Fig. 12b ablations) must be
//! caught by the same gate — the demonstration that the gate gates.

use std::path::PathBuf;

use mikpoly_conformance::{
    gap_for, load_corpus, run_gate, ConformanceEnv, GateConfig, MachineKind, OpSpec,
};
use mikpoly_suite::mikpoly::{CostModelKind, OnlineOptions};

fn corpus(name: &str) -> Vec<mikpoly_conformance::FuzzCase> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(name);
    let corpus = load_corpus(path).expect("corpus must parse");
    assert!(!corpus.is_empty());
    corpus
}

fn pinned_corpus() -> Vec<mikpoly_conformance::FuzzCase> {
    corpus("pinned-shapes.json")
}

#[test]
fn gate_passes_on_pinned_corpus_with_full_cost_model() {
    let env = ConformanceEnv::fast();
    let corpus = pinned_corpus();
    let outcome = run_gate(&env, &corpus, &GateConfig::default());
    assert_eq!(outcome.summary.count, corpus.len());
    assert!(
        outcome.passed,
        "fidelity gate failed on the pinned corpus: p95 = {:.4} (threshold {:.2})",
        outcome.summary.p95, outcome.threshold_p95
    );
    assert!(outcome.summary.p95 <= 1.10);
    // Gaps are ratios of simulated latencies; they must be sane numbers.
    for s in &outcome.samples {
        assert!(s.gap.is_finite() && s.gap > 0.0, "degenerate gap: {s:?}");
        assert!(s.oracle_ns > 0.0 && s.model_ns > 0.0);
    }
    // The outcome is the CI artifact: it must serialize and round-trip.
    let json = serde_json::to_string(&outcome).expect("serialize");
    let back: mikpoly_conformance::GateOutcome = serde_json::from_str(&json).expect("parse");
    assert_eq!(back.passed, outcome.passed);
    assert_eq!(back.samples.len(), outcome.samples.len());
}

#[test]
fn gate_passes_on_hard_corpus_at_the_ratcheted_threshold() {
    // The "hard" tier: shapes whose oracle gap sat at 1.2–1.5 before the
    // occupancy-aware selection refinement. The staged search must keep
    // them at p95 <= 1.10 — the ratchet that pins the fix in place.
    let env = ConformanceEnv::standard();
    let corpus = corpus("hard-shapes.json");
    let outcome = run_gate(&env, &corpus, &GateConfig::default());
    assert_eq!(outcome.summary.count, corpus.len());
    assert!(
        outcome.passed,
        "hard-tier fidelity gate failed: p95 = {:.4} (threshold {:.2})",
        outcome.summary.p95, outcome.threshold_p95
    );
    assert!(outcome.summary.p95 <= 1.10);
}

#[test]
fn hard_corpus_gap_regresses_without_selection_refinement() {
    // The demonstration that the hard tier gates what it claims to gate:
    // under the legacy policy (refinement off) the same corpus blows
    // through the threshold.
    use mikpoly_suite::mikpoly::SearchPolicy;
    let env = ConformanceEnv::standard().with_online_options(OnlineOptions {
        search: SearchPolicy::legacy(),
        ..OnlineOptions::default()
    });
    let corpus = corpus("hard-shapes.json");
    let outcome = run_gate(&env, &corpus, &GateConfig::default());
    assert!(
        !outcome.passed,
        "hard corpus no longer distinguishes the legacy policy: p95 = {:.4}",
        outcome.summary.p95
    );
}

#[test]
fn injected_cost_model_bug_is_caught_by_the_gate() {
    // Drop the wave term from the cost model (the paper's MikPoly-Pipe
    // ablation, Fig. 12b): polymerization now optimizes pipeline overlap
    // while ignoring wave quantization, so its picks fall measurably
    // behind the oracle and the same gate that passed above must fail.
    let env = ConformanceEnv::fast().with_online_options(OnlineOptions {
        cost_model: CostModelKind::PipeOnly,
        ..OnlineOptions::default()
    });
    let corpus = pinned_corpus();
    let outcome = run_gate(&env, &corpus, &GateConfig::default());
    assert!(
        !outcome.passed,
        "gate did not catch the injected cost-model bug: p95 = {:.4}",
        outcome.summary.p95
    );
    assert!(
        outcome.summary.p95 > outcome.threshold_p95,
        "expected a large oracle gap under the crippled model, got p95 = {:.4}",
        outcome.summary.p95
    );
}

#[test]
fn untruncated_oracle_never_loses_to_the_cost_model() {
    // On a shape small enough to enumerate exhaustively, the oracle's
    // candidate set contains the cost model's pick, so the gap is >= 1 up
    // to float noise.
    let env = ConformanceEnv::fast();
    let case = mikpoly_conformance::FuzzCase {
        machine: MachineKind::Gpu,
        op: OpSpec::Gemm {
            m: 48,
            n: 32,
            k: 24,
        },
        data_seed: 0,
        fault: None,
    };
    let sample = gap_for(env.compiler_for(&case), case.machine, &case.op, usize::MAX);
    assert!(!sample.truncated, "exhaustive search must not truncate");
    assert!(sample.candidates > 0);
    assert!(
        sample.gap >= 1.0 - 1e-9,
        "oracle lost to the cost model on its own candidate superset: gap = {}",
        sample.gap
    );
}

#[test]
fn candidate_cap_truncates_and_is_reported() {
    let env = ConformanceEnv::fast();
    let case = mikpoly_conformance::FuzzCase {
        machine: MachineKind::Gpu,
        op: OpSpec::Gemm {
            m: 512,
            n: 384,
            k: 128,
        },
        data_seed: 0,
        fault: None,
    };
    let sample = gap_for(env.compiler_for(&case), case.machine, &case.op, 4);
    assert!(
        sample.truncated,
        "a 4-candidate cap must truncate this shape"
    );
    assert!(sample.candidates <= 4);
}
