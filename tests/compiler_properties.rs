//! Property-based tests on the compiler's data structures and invariants:
//! coverage, cost-model consistency, performance-model sanity, allocation
//! balance, and serialization round-trips.

use std::sync::{Arc, OnceLock};

use mikpoly_suite::accel_sim::MachineModel;
use mikpoly_suite::mikpoly::{
    lpt_makespan, max_min_assign, sample_schedule, MicroKernelLibrary, MikPoly, OfflineOptions,
    PerfModel,
};
use mikpoly_suite::tensor_ir::{GemmShape, Operator};
use proptest::prelude::*;

fn compiler() -> Arc<MikPoly> {
    static C: OnceLock<Arc<MikPoly>> = OnceLock::new();
    Arc::clone(C.get_or_init(|| {
        let mut options = OfflineOptions::fast();
        options.n_gen = 4;
        Arc::new(MikPoly::offline(MachineModel::a100(), &options))
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every compiled program partitions its output space exactly.
    #[test]
    fn programs_always_cover_their_output(
        m in 1usize..5000,
        n in 1usize..5000,
        k in 1usize..4000,
    ) {
        let program = compiler().compile(&Operator::gemm(GemmShape::new(m, n, k)));
        prop_assert!(program.verify_coverage().is_ok(), "{:?}", program.regions);
        // Region kernels always come from the library.
        for r in &program.regions {
            prop_assert!(compiler().library().get(r.kernel.id).is_some());
        }
        prop_assert!(program.predicted_ns.is_finite() && program.predicted_ns > 0.0);
    }

    /// grid_size equals the sum of per-region task grids and is positive.
    #[test]
    fn grid_size_accounting(m in 1usize..3000, n in 1usize..3000) {
        let program = compiler().compile(&Operator::gemm(GemmShape::new(m, n, 64)));
        let per_region: usize = program.regions.iter().map(|r| r.tasks()).sum();
        prop_assert_eq!(program.grid_size(), per_region);
        prop_assert!(program.grid_size() >= 1);
    }

    /// The piecewise-linear fit stays within a few percent of affine truth
    /// for arbitrary positive coefficients.
    #[test]
    fn perf_model_fits_affine_functions(
        intercept in 1.0f64..10_000.0,
        slope in 0.01f64..1_000.0,
        n_pred in 16usize..4096,
    ) {
        let samples: Vec<(usize, f64)> = sample_schedule(n_pred)
            .into_iter()
            .map(|t| (t, intercept + slope * t as f64))
            .collect();
        prop_assume!(samples.len() >= 4);
        let model = PerfModel::fit(&samples, 4);
        for t in [1usize, n_pred / 3 + 1, n_pred] {
            let truth = intercept + slope * t as f64;
            let err = (model.predict(t) - truth).abs() / truth;
            prop_assert!(err < 0.05, "t={t} err={err}");
        }
    }

    /// The fast level-based makespan matches the per-task allocator and
    /// obeys the classic list-scheduling bounds.
    #[test]
    fn lpt_respects_graham_bound(
        durations in prop::collection::vec(1.0f64..100.0, 1..5),
        counts in prop::collection::vec(1usize..60, 1..5),
        pes in 1usize..33,
    ) {
        let n = durations.len().min(counts.len());
        let groups: Vec<(f64, usize)> = durations[..n]
            .iter()
            .zip(&counts[..n])
            .map(|(&d, &c)| (d, c))
            .collect();
        let fast = lpt_makespan(&groups, pes);
        let ds: Vec<f64> = groups.iter().map(|g| g.0).collect();
        let cs: Vec<usize> = groups.iter().map(|g| g.1).collect();
        let assignment = max_min_assign(&ds, &cs, pes);
        let slow = mikpoly_suite::mikpoly::makespan(&ds, &assignment, pes);
        prop_assert!((fast - slow).abs() < 1e-6, "fast {fast} vs reference {slow}");

        let total: f64 = groups.iter().map(|(d, c)| d * *c as f64).sum();
        let dmax = ds.iter().copied().fold(0.0, f64::max);
        let lower = (total / pes as f64).max(dmax);
        // Graham's list-scheduling bound: makespan <= avg load + max item.
        prop_assert!(fast <= total / pes as f64 + dmax + 1e-9);
        prop_assert!(fast >= lower - 1e-9);
    }

    /// Compiled-program serialization round-trips.
    #[test]
    fn program_serde_round_trip(m in 1usize..500, n in 1usize..500, k in 1usize..300) {
        let program = compiler().compile(&Operator::gemm(GemmShape::new(m, n, k)));
        let json = serde_json::to_string(&*program).expect("serialize");
        let back: mikpoly_suite::mikpoly::CompiledProgram =
            serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(&*program, &back);
    }
}

#[test]
fn library_serde_round_trip_preserves_behavior() {
    let mut options = OfflineOptions::fast();
    options.n_gen = 4;
    let machine = MachineModel::a100();
    let lib = MicroKernelLibrary::generate(&machine, &options);
    let json = serde_json::to_string(&lib).expect("serialize");
    let back: MicroKernelLibrary = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(lib, back);
    // Compilation through the round-tripped library yields identical
    // programs.
    let a = MikPoly::with_library(machine.clone(), lib);
    let b = MikPoly::with_library(machine, back);
    let op = Operator::gemm(GemmShape::new(777, 333, 222));
    let pa = a.compile(&op);
    let pb = b.compile(&op);
    // search_ns is wall-clock and legitimately differs between runs.
    assert_eq!(pa.regions, pb.regions);
    assert_eq!(pa.pattern, pb.pattern);
    assert_eq!(pa.predicted_ns, pb.predicted_ns);
}

#[test]
fn compilation_is_deterministic_across_compiler_instances() {
    let mut options = OfflineOptions::fast();
    options.n_gen = 4;
    let machine = MachineModel::a100();
    let a = MikPoly::offline(machine.clone(), &options);
    let b = MikPoly::offline(machine, &options);
    for (m, n, k) in [
        (100usize, 200usize, 300usize),
        (4096, 1024, 4096),
        (1, 1, 1),
    ] {
        let op = Operator::gemm(GemmShape::new(m, n, k));
        let pa = a.compile(&op);
        let pb = b.compile(&op);
        assert_eq!(pa.regions, pb.regions);
        assert_eq!(pa.pattern, pb.pattern);
    }
}

/// Pinned regression from `compiler_properties.proptest-regressions`
/// (`durations = [1.0], counts = [12], pes = 9`): twelve unit tasks on
/// nine PEs once tripped the fast/reference makespan comparison. Kept as
/// an explicit deterministic test because the vendored proptest stand-in
/// does not replay regression files.
#[test]
fn regression_lpt_twelve_unit_tasks_on_nine_pes() {
    let groups = [(1.0f64, 12usize)];
    let pes = 9;
    let fast = lpt_makespan(&groups, pes);
    let ds = [1.0f64];
    let cs = [12usize];
    let assignment = max_min_assign(&ds, &cs, pes);
    let slow = mikpoly_suite::mikpoly::makespan(&ds, &assignment, pes);
    assert!(
        (fast - slow).abs() < 1e-6,
        "fast {fast} vs reference {slow}"
    );
    // 12 unit tasks over 9 PEs: three PEs take two tasks, makespan 2.
    assert!((fast - 2.0).abs() < 1e-9, "expected 2.0, got {fast}");
    let total = 12.0f64;
    let lower = (total / pes as f64).max(1.0);
    assert!(fast <= total / pes as f64 + 1.0 + 1e-9);
    assert!(fast >= lower - 1e-9);
}
