//! Concurrent-compilation integrity: many threads hammering one compiler
//! on an overlapping shape set must behave exactly like sequential
//! compilation — every shape polymerized once (single flight), every
//! resulting program functionally correct, every repeat sharing the cached
//! program.

use std::sync::Arc;

use mikpoly_suite::accel_sim::{Cluster, Interconnect, MachineModel};
use mikpoly_suite::mikpoly::serving::poisson_arrivals;
use mikpoly_suite::mikpoly::telemetry::{Clock, Telemetry};
use mikpoly_suite::mikpoly::{
    execute_gemm, CacheOutcome, Engine, MikPoly, OfflineOptions, Request, ServingRuntime,
};
use mikpoly_suite::tensor_ir::{reference_gemm, GemmShape, Operator, Tensor};

fn compiler() -> MikPoly {
    let mut options = OfflineOptions::fast();
    options.n_gen = 4;
    MikPoly::offline(MachineModel::a100(), &options)
}

/// A shape menu small enough that eight threads constantly collide on it.
fn shapes() -> Vec<GemmShape> {
    [
        (17, 31, 5),
        (64, 64, 64),
        (100, 200, 50),
        (128, 96, 64),
        (200, 130, 70),
        (777, 512, 256),
    ]
    .into_iter()
    .map(|(m, n, k)| GemmShape::new(m, n, k))
    .collect()
}

#[test]
fn eight_threads_overlapping_shapes_single_flight_and_correct() {
    let c = Arc::new(compiler());
    let shapes = shapes();
    let threads = 8;
    let rounds = 6;

    // Each thread walks the menu from a different offset, so on every
    // round several threads request the same shape near-simultaneously.
    let programs: Vec<Vec<(GemmShape, Arc<mikpoly_suite::mikpoly::CompiledProgram>)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let c = Arc::clone(&c);
                    let shapes = shapes.clone();
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for round in 0..rounds {
                            for i in 0..shapes.len() {
                                let shape = shapes[(t + i + round) % shapes.len()];
                                let program = c.compile(&Operator::gemm(shape));
                                out.push((shape, program));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

    // Single flight: exactly one polymerization per unique shape, however
    // the eight threads interleaved.
    let stats = c.cache_stats();
    assert_eq!(
        stats.computations,
        shapes.len() as u64,
        "polymerization count must equal the unique shape count: {stats:?}"
    );
    assert_eq!(stats.misses, shapes.len() as u64);
    assert_eq!(
        stats.hits + stats.misses + stats.coalesced_waits,
        (threads * rounds * shapes.len()) as u64,
        "every compile call is accounted as hit, miss, or coalesced wait"
    );

    // All threads share one program per shape (same Arc as the cache's).
    for per_thread in &programs {
        for (shape, program) in per_thread {
            let canonical = c.compile(&Operator::gemm(*shape));
            assert!(
                Arc::ptr_eq(program, &canonical),
                "{shape:?} was recompiled behind the cache's back"
            );
        }
    }

    // Every cached program is functionally correct against the reference.
    for shape in &shapes {
        let program = c.compile(&Operator::gemm(*shape));
        program.verify_coverage().expect("coverage");
        let a = Tensor::random(&[shape.m, shape.k], 21);
        let b = Tensor::random(&[shape.k, shape.n], 22);
        let got = execute_gemm(&program, &a, &b);
        let want = reference_gemm(*shape, &a, &b);
        assert!(
            got.approx_eq(&want, 1e-3),
            "{shape:?}: max diff {}",
            got.max_abs_diff(&want)
        );
    }
}

#[test]
fn compile_with_outcome_roles_are_consistent() {
    let c = Arc::new(compiler());
    let op = Operator::gemm(GemmShape::new(640, 384, 128));
    let outcomes: Vec<CacheOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                scope.spawn(move || c.compile_with_outcome(&op).1)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let computed = outcomes
        .iter()
        .filter(|o| **o == CacheOutcome::Computed)
        .count();
    assert_eq!(computed, 1, "exactly one thread polymerizes: {outcomes:?}");
    assert!(outcomes.iter().all(|o| matches!(
        o,
        CacheOutcome::Computed | CacheOutcome::Hit | CacheOutcome::Waited
    )));
}

#[test]
fn serving_runtime_end_to_end_counts_match() {
    let mut options = OfflineOptions::fast();
    options.n_gen = 4;
    let engine = Arc::new(Engine::offline(MachineModel::a100(), &options));
    let shapes = shapes();
    let requests: Vec<Request> = poisson_arrivals(48, 10_000.0, 3)
        .into_iter()
        .enumerate()
        .map(|(id, arrival_ns)| {
            let shape = shapes[id % shapes.len()];
            Request::single(id, arrival_ns, Operator::gemm(shape))
        })
        .collect();
    let cluster = Cluster::new(MachineModel::a100(), 2, Interconnect::nvlink3());
    // Telemetry stays on for the whole run: concurrency guarantees must
    // hold with every span/counter record path active.
    let telemetry = Telemetry::enabled();
    let report = ServingRuntime::new(Arc::clone(&engine), cluster, 4)
        .with_telemetry(Arc::clone(&telemetry))
        .serve(&requests);

    assert_eq!(report.records.len(), 48);
    assert_eq!(
        report.cache.computations,
        shapes.len() as u64,
        "serving polymerizes each unique shape once: {:?}",
        report.cache
    );
    // Latency decomposition is internally consistent per request. The
    // compile component is a real-clock measurement and only enters the
    // virtual timeline through its explicit projection.
    for record in &report.records {
        assert_eq!(record.compile.clock(), Clock::Real);
        let parts = record.queue_ns + record.compile.onto_virtual_timeline() + record.device_ns;
        assert!((record.timeline_total_ns() - parts).abs() < 1e-9);
        assert!(record.finish_ns >= requests[record.id].arrival_ns);
    }
    // The stream repeats 6 shapes 8 times: later repeats are pure hits,
    // so mean compile must be far below the cold polymerization cost.
    let cold = report
        .records
        .iter()
        .map(|r| r.compile.real_ns())
        .fold(0.0f64, f64::max);
    assert!(cold > 0.0, "someone must have compiled");
    let hit_requests = report
        .records
        .iter()
        .filter(|r| r.compile.is_zero())
        .count();
    assert!(
        hit_requests >= 48 - 2 * shapes.len(),
        "most repeats must be cache hits, got {hit_requests}"
    );
    // The registry mirrors the cache report exactly, and every request
    // produced its phase spans.
    let snap = telemetry.registry().snapshot();
    assert_eq!(snap.counter("serving.requests"), Some(48));
    assert_eq!(snap.counter("cache.hits"), Some(report.cache.hits));
    assert_eq!(
        snap.counter("cache.computations"),
        Some(report.cache.computations)
    );
    assert_eq!(
        snap.counter("cache.coalesced_waits"),
        Some(report.cache.coalesced_waits)
    );
    let spans = telemetry.drain_spans();
    for name in [
        "serving.queue",
        "serving.request",
        "serving.compile",
        "serving.device",
    ] {
        assert_eq!(
            spans.iter().filter(|s| s.name == name).count(),
            48,
            "one '{name}' span per request"
        );
    }
}

#[test]
fn empty_request_stream_is_a_clean_noop() {
    let engine = Arc::new(Engine::offline(MachineModel::a100(), &{
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        o
    }));
    let cluster = Cluster::new(MachineModel::a100(), 2, Interconnect::nvlink3());
    let report = ServingRuntime::new(engine, cluster, 4).serve(&[]);
    assert!(report.records.is_empty());
    assert_eq!(report.workers.len(), 4);
    assert!(report.workers.iter().all(|w| w.requests == 0));
    assert_eq!(report.cache.hits, 0);
    assert_eq!(report.cache.misses, 0);
    assert_eq!(report.cache.computations, 0);
    assert_eq!(report.cache.evictions, 0);
    // Makespan is clamped positive so derived rates stay finite.
    assert!(report.makespan_ns > 0.0);
    assert!(report.throughput_rps().is_finite());
}

#[test]
fn single_worker_burst_is_served_fifo() {
    let mut options = OfflineOptions::fast();
    options.n_gen = 4;
    let engine = Arc::new(Engine::offline(MachineModel::a100(), &options));
    let shapes = shapes();
    // Everything arrives at t=0: a pure burst against one worker and one
    // device must serialize in request-id order.
    let requests: Vec<Request> = (0..12)
        .map(|id| Request::single(id, 0.0, Operator::gemm(shapes[id % shapes.len()])))
        .collect();
    let cluster = Cluster::new(MachineModel::a100(), 1, Interconnect::nvlink3());
    let report = ServingRuntime::new(engine, cluster, 1).serve(&requests);

    assert_eq!(report.records.len(), 12);
    assert!(report
        .records
        .iter()
        .all(|r| r.worker == 0 && r.device == 0));
    // Records are reported in id order; with a single worker the virtual
    // timeline must finish them in that same order, back to back.
    let mut prev_finish = 0.0f64;
    for r in &report.records {
        assert!(
            r.finish_ns >= prev_finish,
            "request {} finished at {} before its predecessor at {}",
            r.id,
            r.finish_ns,
            prev_finish
        );
        prev_finish = r.finish_ns;
        // Burst arrival: everyone after the first waits in queue.
        assert!(r.queue_ns >= 0.0);
    }
    // The lone worker served every request.
    assert_eq!(report.workers[0].requests, 12);
    // Makespan equals the sum of per-request busy time (no idle gaps in a
    // burst against one worker/one device).
    let busy: f64 = report
        .records
        .iter()
        .map(|r| r.compile.onto_virtual_timeline() + r.device_ns)
        .sum();
    assert!((report.makespan_ns - busy).abs() < 1e-6 * busy.max(1.0));
}

#[test]
fn capacity_one_cache_thrashes_and_evicts_under_alternation() {
    use mikpoly_suite::mikpoly::{OnlineOptions, TemplateKind};
    let mut offline = OfflineOptions::fast();
    offline.n_gen = 4;
    let bounded = OnlineOptions {
        cache_capacity: Some(1),
        ..OnlineOptions::default()
    };
    let gemm =
        Arc::new(MikPoly::offline(MachineModel::a100(), &offline).with_options(bounded.clone()));
    let conv = Arc::new(
        MikPoly::offline(
            MachineModel::a100(),
            &offline.clone().with_template(TemplateKind::Conv),
        )
        .with_options(bounded),
    );
    let engine = Arc::new(Engine::from_compilers(MachineModel::a100(), gemm, conv));

    // Two shapes alternating through a capacity-1 cache: every compile
    // after the first evicts the other entry, so nothing is ever a hit.
    let a = GemmShape::new(64, 64, 64);
    let b = GemmShape::new(100, 200, 50);
    let rounds = 4;
    let requests: Vec<Request> = (0..2 * rounds)
        .map(|id| {
            let shape = if id % 2 == 0 { a } else { b };
            Request::single(id, id as f64 * 50_000.0, Operator::gemm(shape))
        })
        .collect();
    let cluster = Cluster::new(MachineModel::a100(), 1, Interconnect::nvlink3());
    let report = ServingRuntime::new(Arc::clone(&engine), cluster, 1).serve(&requests);

    assert_eq!(report.records.len(), 2 * rounds);
    assert_eq!(
        report.cache.computations,
        2 * rounds as u64,
        "capacity 1 + alternation recompiles every request: {:?}",
        report.cache
    );
    assert_eq!(report.cache.hits, 0, "{:?}", report.cache);
    assert!(
        report.cache.evictions >= 2 * rounds as u64 - 1,
        "each insert past the first evicts: {:?}",
        report.cache
    );
    assert!(report.cache.entries <= 1, "{:?}", report.cache);
    // Sanity: the same engine still computes correct results after all
    // that thrashing.
    let program = engine.gemm_compiler().compile(&Operator::gemm(a));
    let ta = Tensor::random(&[a.m, a.k], 51);
    let tb = Tensor::random(&[a.k, a.n], 52);
    let got = execute_gemm(&program, &ta, &tb);
    let want = reference_gemm(a, &ta, &tb);
    mikpoly_conformance::assert_matches_reference(&got, &want, "post-eviction gemm");
}
