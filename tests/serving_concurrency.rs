//! Concurrent-compilation integrity: many threads hammering one compiler
//! on an overlapping shape set must behave exactly like sequential
//! compilation — every shape polymerized once (single flight), every
//! resulting program functionally correct, every repeat sharing the cached
//! program.

use std::sync::Arc;

use mikpoly_suite::accel_sim::{Cluster, Interconnect, MachineModel};
use mikpoly_suite::mikpoly::serving::poisson_arrivals;
use mikpoly_suite::mikpoly::telemetry::{Clock, Telemetry};
use mikpoly_suite::mikpoly::{
    execute_gemm, CacheOutcome, Engine, MikPoly, OfflineOptions, Request, ServingRuntime,
};
use mikpoly_suite::tensor_ir::{reference_gemm, GemmShape, Operator, Tensor};

fn compiler() -> MikPoly {
    let mut options = OfflineOptions::fast();
    options.n_gen = 4;
    MikPoly::offline(MachineModel::a100(), &options)
}

/// A shape menu small enough that eight threads constantly collide on it.
fn shapes() -> Vec<GemmShape> {
    [
        (17, 31, 5),
        (64, 64, 64),
        (100, 200, 50),
        (128, 96, 64),
        (200, 130, 70),
        (777, 512, 256),
    ]
    .into_iter()
    .map(|(m, n, k)| GemmShape::new(m, n, k))
    .collect()
}

#[test]
fn eight_threads_overlapping_shapes_single_flight_and_correct() {
    let c = Arc::new(compiler());
    let shapes = shapes();
    let threads = 8;
    let rounds = 6;

    // Each thread walks the menu from a different offset, so on every
    // round several threads request the same shape near-simultaneously.
    let programs: Vec<Vec<(GemmShape, Arc<mikpoly_suite::mikpoly::CompiledProgram>)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let c = Arc::clone(&c);
                    let shapes = shapes.clone();
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for round in 0..rounds {
                            for i in 0..shapes.len() {
                                let shape = shapes[(t + i + round) % shapes.len()];
                                let program = c.compile(&Operator::gemm(shape));
                                out.push((shape, program));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

    // Single flight: exactly one polymerization per unique shape, however
    // the eight threads interleaved.
    let stats = c.cache_stats();
    assert_eq!(
        stats.computations,
        shapes.len() as u64,
        "polymerization count must equal the unique shape count: {stats:?}"
    );
    assert_eq!(stats.misses, shapes.len() as u64);
    assert_eq!(
        stats.hits + stats.misses + stats.coalesced_waits,
        (threads * rounds * shapes.len()) as u64,
        "every compile call is accounted as hit, miss, or coalesced wait"
    );

    // All threads share one program per shape (same Arc as the cache's).
    for per_thread in &programs {
        for (shape, program) in per_thread {
            let canonical = c.compile(&Operator::gemm(*shape));
            assert!(
                Arc::ptr_eq(program, &canonical),
                "{shape:?} was recompiled behind the cache's back"
            );
        }
    }

    // Every cached program is functionally correct against the reference.
    for shape in &shapes {
        let program = c.compile(&Operator::gemm(*shape));
        program.verify_coverage().expect("coverage");
        let a = Tensor::random(&[shape.m, shape.k], 21);
        let b = Tensor::random(&[shape.k, shape.n], 22);
        let got = execute_gemm(&program, &a, &b);
        let want = reference_gemm(*shape, &a, &b);
        assert!(
            got.approx_eq(&want, 1e-3),
            "{shape:?}: max diff {}",
            got.max_abs_diff(&want)
        );
    }
}

#[test]
fn compile_with_outcome_roles_are_consistent() {
    let c = Arc::new(compiler());
    let op = Operator::gemm(GemmShape::new(640, 384, 128));
    let outcomes: Vec<CacheOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                scope.spawn(move || c.compile_with_outcome(&op).1)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let computed = outcomes
        .iter()
        .filter(|o| **o == CacheOutcome::Computed)
        .count();
    assert_eq!(computed, 1, "exactly one thread polymerizes: {outcomes:?}");
    assert!(outcomes.iter().all(|o| matches!(
        o,
        CacheOutcome::Computed | CacheOutcome::Hit | CacheOutcome::Waited
    )));
}

#[test]
fn serving_runtime_end_to_end_counts_match() {
    let mut options = OfflineOptions::fast();
    options.n_gen = 4;
    let engine = Arc::new(Engine::offline(MachineModel::a100(), &options));
    let shapes = shapes();
    let requests: Vec<Request> = poisson_arrivals(48, 10_000.0, 3)
        .into_iter()
        .enumerate()
        .map(|(id, arrival_ns)| {
            let shape = shapes[id % shapes.len()];
            Request::single(id, arrival_ns, Operator::gemm(shape))
        })
        .collect();
    let cluster = Cluster::new(MachineModel::a100(), 2, Interconnect::nvlink3());
    // Telemetry stays on for the whole run: concurrency guarantees must
    // hold with every span/counter record path active.
    let telemetry = Telemetry::enabled();
    let report = ServingRuntime::new(Arc::clone(&engine), cluster, 4)
        .with_telemetry(Arc::clone(&telemetry))
        .serve(&requests);

    assert_eq!(report.records.len(), 48);
    assert_eq!(
        report.cache.computations,
        shapes.len() as u64,
        "serving polymerizes each unique shape once: {:?}",
        report.cache
    );
    // Latency decomposition is internally consistent per request. The
    // compile component is a real-clock measurement and only enters the
    // virtual timeline through its explicit projection.
    for record in &report.records {
        assert_eq!(record.compile.clock(), Clock::Real);
        let parts = record.queue_ns + record.compile.onto_virtual_timeline() + record.device_ns;
        assert!((record.timeline_total_ns() - parts).abs() < 1e-9);
        assert!(record.finish_ns >= requests[record.id].arrival_ns);
    }
    // The stream repeats 6 shapes 8 times: later repeats are pure hits,
    // so mean compile must be far below the cold polymerization cost.
    let cold = report
        .records
        .iter()
        .map(|r| r.compile.real_ns())
        .fold(0.0f64, f64::max);
    assert!(cold > 0.0, "someone must have compiled");
    let hit_requests = report
        .records
        .iter()
        .filter(|r| r.compile.is_zero())
        .count();
    assert!(
        hit_requests >= 48 - 2 * shapes.len(),
        "most repeats must be cache hits, got {hit_requests}"
    );
    // The registry mirrors the cache report exactly, and every request
    // produced its phase spans.
    let snap = telemetry.registry().snapshot();
    assert_eq!(snap.counter("serving.requests"), Some(48));
    assert_eq!(snap.counter("cache.hits"), Some(report.cache.hits));
    assert_eq!(
        snap.counter("cache.computations"),
        Some(report.cache.computations)
    );
    assert_eq!(
        snap.counter("cache.coalesced_waits"),
        Some(report.cache.coalesced_waits)
    );
    let spans = telemetry.drain_spans();
    for name in [
        "serving.queue",
        "serving.request",
        "serving.compile",
        "serving.device",
    ] {
        assert_eq!(
            spans.iter().filter(|s| s.name == name).count(),
            48,
            "one '{name}' span per request"
        );
    }
}
