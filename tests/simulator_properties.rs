//! Property-based tests on the accelerator simulator's invariants: the
//! substrate everything else trusts.

use mikpoly_suite::accel_sim::{
    pipelined_task_ns, simulate, Launch, MachineModel, TaskGroup, TaskShape, TaskSpec, TimingMode,
};
use proptest::prelude::*;

fn small_tile() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..8, 1usize..8, 1usize..8).prop_map(|(a, b, c)| (a * 16, b * 16, c * 16))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Makespan is monotone in grid size: more tasks never finish sooner.
    #[test]
    fn makespan_is_monotone_in_task_count(
        (um, un, uk) in small_tile(),
        warps in prop::sample::select(vec![1usize, 2, 4, 8]),
        instances in 1usize..32,
        count in 1usize..300,
    ) {
        let machine = MachineModel::a100();
        let shape = TaskShape::gemm_tile_f16(um, un, uk);
        prop_assume!(shape.fits(&machine));
        let spec = TaskSpec::new(shape, warps, instances);
        let small = simulate(&machine, &Launch::grid(spec, count), TimingMode::Evaluate);
        let large = simulate(&machine, &Launch::grid(spec, count + 17), TimingMode::Evaluate);
        prop_assert!(large.device_ns >= small.device_ns - 1e-6);
    }

    /// The device is never faster than perfect warp-slot scaling (a 4-warp
    /// task uses half of an 8-warp PE, so two can co-reside) and never
    /// slower than fully serial execution.
    #[test]
    fn makespan_is_bounded_by_serial_and_perfect_parallel(
        (um, un, uk) in small_tile(),
        instances in 1usize..16,
        count in 1usize..200,
    ) {
        let machine = MachineModel::a100();
        let shape = TaskShape::gemm_tile_f16(um, un, uk);
        prop_assume!(shape.fits(&machine));
        let warps = 4usize;
        let spec = TaskSpec::new(shape, warps, instances);
        let one = pipelined_task_ns(&machine, &spec);
        let report = simulate(&machine, &Launch::grid(spec, count), TimingMode::Evaluate);
        let serial = one * count as f64;
        let slots = machine.num_pes as f64 * machine.warp_cap_per_pe as f64 / warps as f64;
        let perfect = serial / slots;
        prop_assert!(report.device_ns <= serial + 1e-6, "slower than serial");
        prop_assert!(
            report.device_ns >= perfect - 1e-6,
            "faster than perfect scaling: {} < {}",
            report.device_ns,
            perfect
        );
    }

    /// sm_efficiency and achieved_occupancy are proper fractions, and the
    /// total work is conserved.
    #[test]
    fn counters_are_well_formed(
        (um, un, uk) in small_tile(),
        instances in 1usize..16,
        count in 1usize..150,
    ) {
        let machine = MachineModel::a100();
        let shape = TaskShape::gemm_tile_f16(um, un, uk);
        prop_assume!(shape.fits(&machine));
        let spec = TaskSpec::new(shape, 4, instances);
        let launch = Launch::grid(spec, count);
        let report = simulate(&machine, &launch, TimingMode::Evaluate);
        prop_assert!(report.sm_efficiency > 0.0 && report.sm_efficiency <= 1.0 + 1e-9);
        prop_assert!(report.achieved_occupancy > 0.0 && report.achieved_occupancy <= 1.0 + 1e-9);
        prop_assert_eq!(report.grid_size, count);
        let executed: usize = report.per_pe.iter().map(|p| p.tasks).sum();
        prop_assert_eq!(executed, count);
        prop_assert!((report.total_flops - launch.total_flops()).abs() < 1e-3);
    }

    /// Static placement executes exactly the assigned tasks on the
    /// assigned cores.
    #[test]
    fn static_assignment_is_respected(count in 1usize..100, stride in 1usize..7) {
        let machine = MachineModel::ascend910a();
        let spec = TaskSpec::new(TaskShape::gemm_tile_f16(64, 64, 64), 1, 4);
        let assignment: Vec<usize> = (0..count).map(|i| (i * stride) % machine.num_pes).collect();
        let launch = Launch::from_groups(vec![TaskGroup::with_assignment(spec, assignment.clone())]);
        let report = simulate(&machine, &launch, TimingMode::Evaluate);
        for (pe, util) in report.per_pe.iter().enumerate() {
            let expected = assignment.iter().filter(|&&a| a == pe).count();
            prop_assert_eq!(util.tasks, expected, "PE {}", pe);
        }
    }

    /// Measurement noise is bounded and centered: an evaluate-mode run sits
    /// within the measurement jitter envelope.
    #[test]
    fn measurement_noise_is_bounded(
        (um, un, uk) in small_tile(),
        instances in 1usize..64,
        seed in 0u64..1000,
    ) {
        let machine = MachineModel::a100();
        let shape = TaskShape::gemm_tile_f16(um, un, uk);
        prop_assume!(shape.fits(&machine));
        let spec = TaskSpec::new(shape, 2, instances);
        let truth = pipelined_task_ns(&machine, &spec);
        let measured = mikpoly_suite::accel_sim::measure_pipelined_task(
            &machine,
            &spec,
            TimingMode::Measure { seed },
        );
        prop_assert!((measured / truth - 1.0).abs() <= 0.02 + 1e-12);
    }

    /// Chained launches equal the sum of their parts.
    #[test]
    fn launch_sequencing_is_additive(count_a in 1usize..60, count_b in 1usize..60) {
        let machine = MachineModel::a100();
        let spec = TaskSpec::new(TaskShape::gemm_tile_f16(64, 64, 32), 4, 8);
        let a = Launch::grid(spec, count_a);
        let b = Launch::grid(spec, count_b);
        let ra = simulate(&machine, &a, TimingMode::Evaluate);
        let rb = simulate(&machine, &b, TimingMode::Evaluate);
        let chained = mikpoly_suite::accel_sim::simulate_launches(
            &machine,
            &[a, b],
            TimingMode::Evaluate,
        );
        prop_assert!((chained.time_ns - (ra.time_ns + rb.time_ns)).abs() < 1e-3);
    }
}

/// Pinned regression from `simulator_properties.proptest-regressions`
/// (`(um, un, uk) = (16, 16, 16), instances = 1, count = 109`): the
/// smallest tile with a single pipeline instance once violated the
/// serial/perfect-parallel envelope. Kept as an explicit deterministic
/// test because the vendored proptest stand-in does not replay regression
/// files.
#[test]
fn regression_minimal_tile_single_instance_envelope() {
    let machine = MachineModel::a100();
    let shape = TaskShape::gemm_tile_f16(16, 16, 16);
    assert!(shape.fits(&machine));
    let warps = 4usize;
    let spec = TaskSpec::new(shape, warps, 1);
    let count = 109usize;
    let one = pipelined_task_ns(&machine, &spec);
    let report = simulate(&machine, &Launch::grid(spec, count), TimingMode::Evaluate);
    let serial = one * count as f64;
    let slots = machine.num_pes as f64 * machine.warp_cap_per_pe as f64 / warps as f64;
    let perfect = serial / slots;
    assert!(report.device_ns <= serial + 1e-6, "slower than serial");
    assert!(
        report.device_ns >= perfect - 1e-6,
        "faster than perfect scaling: {} < {perfect}",
        report.device_ns
    );
}
