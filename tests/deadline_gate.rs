//! The deadline gate: with a compile budget of twice the fault-free p50
//! compile latency, injected search stalls degrade instead of overrunning
//! — the p99 compile window stays under the budget.
//!
//! This test asserts on real wall-clock sleeps of sub-millisecond scale,
//! so it lives in its own test binary: cargo runs test binaries serially,
//! which keeps the CPU quiet enough that `thread::sleep` overshoot stays
//! in the noise the gate's slack absorbs.

use std::sync::Arc;
use std::time::Duration;

use mikpoly_suite::accel_sim::{Cluster, FaultPlan, Interconnect, MachineModel};
use mikpoly_suite::mikpoly::{
    percentile, poisson_arrivals, Engine, OfflineOptions, Request, ServingOptions, ServingRuntime,
};
use mikpoly_suite::tensor_ir::{GemmShape, Operator};

fn engine() -> Arc<Engine> {
    let mut o = OfflineOptions::fast();
    o.n_gen = 4;
    Arc::new(Engine::offline(MachineModel::a100(), &o))
}

fn shapes() -> Vec<GemmShape> {
    vec![
        GemmShape::new(256, 256, 256),
        GemmShape::new(777, 512, 256),
        GemmShape::new(1111, 999, 512),
        GemmShape::new(64, 64, 64),
        GemmShape::new(320, 192, 128),
        GemmShape::new(511, 257, 96),
        GemmShape::new(900, 300, 300),
        GemmShape::new(128, 1024, 64),
    ]
}

#[test]
fn p99_compile_stays_under_budget_despite_stalls() {
    // Fault-free p50 compile latency over the shape set.
    let baseline = engine();
    let mut compile_ns: Vec<f64> = shapes()
        .iter()
        .map(|&s| {
            let op = Operator::gemm(s);
            let graph = baseline.run_graph([(&op, 1usize)]);
            graph.compile_ns as f64
        })
        .collect();
    compile_ns.sort_by(f64::total_cmp);
    // Floor the median at 0.5 ms: below that, OS sleep granularity and
    // pre-search setup (which no deadline can cut) dominate the budget
    // and the gate would measure the scheduler, not the degradation.
    let p50 = percentile(&compile_ns, 0.5).max(500_000.0);
    let budget = Duration::from_nanos((2.0 * p50) as u64);

    // Serve a fresh engine under stalls far longer than the budget.
    let engine = engine();
    let cluster = Cluster::new(engine.machine().clone(), 1, Interconnect::nvlink3());
    let plan = FaultPlan {
        seed: 3,
        search_stall_rate: 0.5,
        search_stall_ns: 8 * budget.as_nanos() as u64,
        ..FaultPlan::none()
    };
    // One worker: compiles run serially, so a stalled compile's sleep is
    // not contending with a busy search thread for the core (on small
    // machines that contention delays sleep wakeups past the gate).
    let runtime = ServingRuntime::new(engine, cluster, 1).with_options(ServingOptions {
        compile_budget: Some(budget),
        fault_plan: Some(Arc::new(plan)),
        ..ServingOptions::default()
    });
    let shapes = shapes();
    let requests: Vec<Request> = poisson_arrivals(32, 1_000_000.0, 5)
        .into_iter()
        .enumerate()
        .map(|(i, t)| Request::single(i, t, Operator::gemm(shapes[i % shapes.len()])))
        .collect();
    let report = runtime.serve(&requests);
    let counts = report.dispositions();
    assert_eq!(counts.total(), 32);
    assert_eq!(counts.failed, 0, "{counts:?}");
    assert_eq!(counts.shed, 0, "{counts:?}");
    assert!(
        counts.degraded > 0,
        "half the shapes stall, some must degrade: {counts:?}"
    );
    let mut observed: Vec<f64> = report.records.iter().map(|r| r.compile.real_ns()).collect();
    observed.sort_by(f64::total_cmp);
    let p99 = percentile(&observed, 0.99);
    // A stalled compile sleeps to the search's soft deadline (80% of the
    // remaining budget) and then takes the fast fallback, so the p99
    // should sit *under* the budget; the slack absorbs scheduler noise
    // around the sleeps and clock checks.
    let limit = budget.as_nanos() as f64 * 1.25;
    assert!(
        p99 <= limit,
        "p99 compile {p99} ns exceeds deadline budget {} ns",
        budget.as_nanos()
    );
}
