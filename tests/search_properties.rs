//! Property-based tests on the staged polymerization search: budget
//! escalation can only improve the selected strategy, and pruning never
//! beats the exhaustive walk it approximates.
//!
//! Both properties run under the legacy (refinement-off) policy so the
//! compared quantities are Eq. 2 estimates of the *same* criterion; the
//! occupancy-refined selection is pinned by the conformance hard-tier gate
//! instead.

use std::sync::OnceLock;

use mikpoly_suite::accel_sim::MachineModel;
use mikpoly_suite::mikpoly::pattern::gpu_patterns;
use mikpoly_suite::mikpoly::{
    polymerize, CostModelKind, MicroKernelLibrary, OfflineOptions, SearchPolicy,
};
use mikpoly_suite::tensor_ir::{GemmShape, Operator};
use proptest::prelude::*;

fn setup() -> (&'static MachineModel, &'static MicroKernelLibrary) {
    static S: OnceLock<(MachineModel, MicroKernelLibrary)> = OnceLock::new();
    let (m, l) = S.get_or_init(|| {
        let machine = MachineModel::a100();
        let mut options = OfflineOptions::fast();
        options.n_gen = 4;
        let lib = MicroKernelLibrary::generate(&machine, &options);
        (machine, lib)
    });
    (m, l)
}

fn compile(shape: GemmShape, prune: bool, policy: &SearchPolicy) -> f64 {
    let (machine, lib) = setup();
    let op = Operator::gemm(shape);
    let program = polymerize(
        machine,
        lib,
        &op.gemm_view(),
        op,
        &gpu_patterns(),
        CostModelKind::Full,
        prune,
        policy,
    );
    program.verify_coverage().expect("coverage");
    program.predicted_ns
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An escalated search sees a superset of the starved search's
    /// strategy space, so its pick is never worse in Eq. 2 terms — up to
    /// the branch-and-bound prune margin, which either run may exploit.
    #[test]
    fn escalation_never_selects_a_worse_strategy(
        m in 1usize..3000,
        n in 1usize..2000,
        k in 1usize..1000,
        budget in 8usize..200,
    ) {
        let shape = GemmShape::new(m, n, k);
        let starved = SearchPolicy {
            node_budget: budget,
            ..SearchPolicy::legacy()
        };
        let escalated = SearchPolicy {
            node_budget: budget,
            max_escalations: 3,
            escalate_ratio: 1.0,
            ..SearchPolicy::legacy()
        };
        let fixed = compile(shape, true, &starved);
        let adaptive = compile(shape, true, &escalated);
        prop_assert!(
            adaptive <= fixed * 1.006 + 1e-9,
            "escalation regressed the pick: {adaptive} vs {fixed}"
        );
    }

    /// Disabling pruning walks every strategy, so its pick can never lose
    /// to the pruned search's pick.
    #[test]
    fn unpruned_search_never_loses_to_pruning(
        m in 1usize..3000,
        n in 1usize..2000,
        k in 1usize..1000,
    ) {
        let shape = GemmShape::new(m, n, k);
        let policy = SearchPolicy::legacy();
        let pruned = compile(shape, true, &policy);
        let full = compile(shape, false, &policy);
        prop_assert!(
            full <= pruned + 1e-9,
            "exhaustive pick worse than pruned pick: {full} vs {pruned}"
        );
    }
}

/// With an unlimited budget nothing triggers escalation, so the adaptive
/// and fixed searches are bit-identical.
#[test]
fn unlimited_budget_never_escalates() {
    let (machine, lib) = setup();
    for (m, n, k) in [(777usize, 333usize, 111usize), (2048, 384, 128)] {
        let op = Operator::gemm(GemmShape::new(m, n, k));
        let program = polymerize(
            machine,
            lib,
            &op.gemm_view(),
            op,
            &gpu_patterns(),
            CostModelKind::Full,
            true,
            &SearchPolicy::default(),
        );
        assert_eq!(program.stats.escalations, 0, "{m}x{n}x{k}");
        assert_eq!(program.stats.budget_exhausted, 0, "{m}x{n}x{k}");
    }
}
