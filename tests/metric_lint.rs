//! Metric-name lint over the real instrument set.
//!
//! The unit tests in `mikpoly-telemetry` prove the linter flags bad
//! names; this test proves the names the serving stack actually
//! registers — serving, cache, and recorder-health instruments — pass
//! it: unique across kinds, lowercase dotted, and still unique after
//! Prometheus sanitization (`.` -> `_`).

use std::sync::Arc;

use mikpoly_suite::accel_sim::{Cluster, Interconnect, MachineModel};
use mikpoly_suite::mikpoly::telemetry::Telemetry;
use mikpoly_suite::mikpoly::{poisson_arrivals, Engine, OfflineOptions, Request, ServingRuntime};
use mikpoly_suite::tensor_ir::{GemmShape, Operator};

#[test]
fn every_registered_metric_name_passes_lint() {
    let mut o = OfflineOptions::fast();
    o.n_gen = 4;
    let engine = Arc::new(Engine::offline(MachineModel::a100(), &o));
    let cluster = Cluster::new(engine.machine().clone(), 1, Interconnect::nvlink3());
    let telemetry = Telemetry::enabled();
    let shapes = [GemmShape::new(256, 256, 256), GemmShape::new(64, 64, 64)];
    let requests: Vec<Request> = poisson_arrivals(16, 30_000.0, 11)
        .into_iter()
        .enumerate()
        .map(|(i, t)| Request::single(i, t, Operator::gemm(shapes[i % shapes.len()])))
        .collect();
    let report = ServingRuntime::new(engine, cluster, 2)
        .with_telemetry(Arc::clone(&telemetry))
        .serve(&requests);
    assert_eq!(report.records.len(), requests.len());

    let registry = telemetry.registry();
    let findings = registry.lint();
    assert!(
        findings.is_empty(),
        "registered metric names fail lint:\n{}",
        findings.join("\n")
    );
    // The lint ran over the real instrument set, not an empty registry.
    let snap = registry.snapshot();
    let instruments = snap.counters.len() + snap.gauges.len() + snap.histograms.len();
    assert!(
        instruments >= 20,
        "expected a fully instrumented serve, found {instruments} instruments"
    );
    // And the health gauges the recorder exports are part of that set.
    for gauge in [
        "telemetry.spans_dropped",
        "telemetry.chains_retained",
        "telemetry.chains_evicted",
    ] {
        assert!(
            snap.gauges.iter().any(|(n, _)| n == gauge),
            "missing recorder health gauge '{gauge}'"
        );
    }
}
