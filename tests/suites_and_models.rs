//! Integration checks on the benchmark suites and model zoo: the
//! populations every experiment draws from must match the paper's
//! published structure.

use mikpoly_suite::models::{CnnConfig, LlamaConfig, TransformerConfig};
use mikpoly_suite::tensor_ir::Operator;
use mikpoly_suite::workloads::{
    cnn_sweep, conv_suite, gemm_suite, llama_sweep, sentence_lengths, table3_declared_ranges,
};

#[test]
fn table3_population_matches_the_paper() {
    let suite = gemm_suite();
    assert_eq!(suite.len(), 1599, "Fig. 10 runs 'all 1599 test cases'");
    let deepbench = suite.iter().filter(|c| c.category == "DeepBench").count();
    assert_eq!(deepbench, 166);
}

#[test]
fn table4_population_matches_the_paper() {
    let suite = conv_suite();
    assert_eq!(suite.len(), 5485);
    // Per-model totals from the published table (AlexNet row reconstructed).
    let count = |m: &str| suite.iter().filter(|c| c.model == m).count();
    assert_eq!(count("AlexNet"), 400);
    assert_eq!(count("GoogLeNet"), 3840);
    assert_eq!(count("ResNet"), 800);
    assert_eq!(count("VGG"), 445);
}

#[test]
fn declared_ranges_cover_the_whole_suite() {
    let (m, n, k) = table3_declared_ranges();
    for case in gemm_suite() {
        assert!((m.0..=m.1).contains(&case.shape.m));
        assert!((n.0..=n.1).contains(&case.shape.n));
        assert!((k.0..=k.1).contains(&case.shape.k));
    }
}

#[test]
fn e2e_sweeps_match_section_5_1() {
    assert_eq!(sentence_lengths().len(), 150);
    assert_eq!(cnn_sweep().len(), 8 * 10);
    assert_eq!(llama_sweep().len(), 4 * 10);
}

#[test]
fn transformer_flops_roughly_match_public_numbers() {
    // BERT-base matmul FLOPs at seq 512: 12 layers x 12 h^2 per token plus
    // attention = ~97 GFLOPs analytically.
    let g = TransformerConfig::bert_base().graph(1, 512);
    let gflops = g.total_flops() / 1e9;
    assert!(
        (80.0..130.0).contains(&gflops),
        "BERT-base@512 = {gflops} GFLOPs"
    );
}

#[test]
fn resnet18_flops_roughly_match_public_numbers() {
    // ResNet-18 at 224x224 is ~3.6 GFLOPs (2 * 1.8 GMACs).
    let g = CnnConfig::resnet18().graph(1, 224);
    let gflops = g.total_flops() / 1e9;
    assert!(
        (2.5..5.0).contains(&gflops),
        "resnet18@224 = {gflops} GFLOPs"
    );
}

#[test]
fn vgg11_flops_roughly_match_public_numbers() {
    // VGG-11 at 224x224 is ~15.2 GFLOPs.
    let g = CnnConfig::vgg11().graph(1, 224);
    let gflops = g.total_flops() / 1e9;
    assert!(
        (11.0..20.0).contains(&gflops),
        "vgg11@224 = {gflops} GFLOPs"
    );
}

#[test]
fn googlenet_is_much_cheaper_than_vgg() {
    let goog = CnnConfig::googlenet().graph(1, 224).total_flops();
    let vgg = CnnConfig::vgg11().graph(1, 224).total_flops();
    assert!(vgg > 4.0 * goog, "GoogLeNet should be far cheaper than VGG");
}

#[test]
fn llama_prefill_flops_scale_with_prompt() {
    let cfg = LlamaConfig::llama2_13b_tp4();
    let short = cfg.prefill_graph(1, 64).total_flops();
    let long = cfg.prefill_graph(1, 512).total_flops();
    assert!(long > 7.0 * short);
    // Per-rank prefill at 512 tokens: ~13B params / 4 ranks * 2 flops *
    // 512 tokens ~ 3.3 TFLOPs (projections only; attention adds more).
    assert!((1e12..8e12).contains(&long), "prefill@512 = {long}");
}

#[test]
fn every_model_operator_is_well_formed() {
    let mut graphs = vec![
        TransformerConfig::bert_base().graph(2, 33),
        CnnConfig::googlenet().graph(3, 96),
        LlamaConfig::llama2_13b_tp4().prefill_graph(2, 17),
    ];
    graphs.extend(LlamaConfig::llama2_13b_tp4().generation_graphs(1, 9, 70));
    for graph in graphs {
        assert!(graph.num_executions() > 0, "{graph}");
        for op in &graph.ops {
            let view = op.operator.gemm_view();
            assert!(view.shape.flops() > 0.0);
            assert!(view.load_scale >= 1.0);
            match op.operator {
                Operator::Conv2d { shape, .. } | Operator::Conv2dWinograd { shape, .. } => {
                    assert!(shape.out_h() > 0 && shape.out_w() > 0)
                }
                Operator::Gemm { .. } | Operator::BatchedGemm { .. } => {}
            }
        }
    }
}
