//! Chaos suite: the serving runtime under deterministic fault injection.
//!
//! The invariant under test is *exhaustive disposition*: whatever mix of
//! injected faults a stream hits — compile panics, search stalls,
//! corrupted cache entries, transient device faults, deadlines, queue
//! overflow — every request terminates with exactly one
//! [`Disposition`], no worker dies, and the telemetry counters agree
//! with the per-request records to the last increment.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mikpoly_conformance::assert_matches_reference;
use mikpoly_suite::accel_sim::{Cluster, FaultPlan, Interconnect, MachineModel};
use mikpoly_suite::mikpoly::{
    execute_gemm, poisson_arrivals, BreakerPolicy, CompileBudget, Disposition, Engine, MikPoly,
    OfflineOptions, OnlineOptions, Request, ServingOptions, ServingRuntime, TemplateKind,
};
use mikpoly_suite::tensor_ir::{reference_gemm, GemmShape, Operator, Tensor};

fn engine() -> Arc<Engine> {
    let mut o = OfflineOptions::fast();
    o.n_gen = 4;
    Arc::new(Engine::offline(MachineModel::a100(), &o))
}

fn shapes() -> Vec<GemmShape> {
    vec![
        GemmShape::new(256, 256, 256),
        GemmShape::new(777, 512, 256),
        GemmShape::new(1111, 999, 512),
        GemmShape::new(64, 64, 64),
        GemmShape::new(320, 192, 128),
        GemmShape::new(511, 257, 96),
        GemmShape::new(900, 300, 300),
        GemmShape::new(128, 1024, 64),
    ]
}

fn stream(n: usize, gap: f64, seed: u64) -> Vec<Request> {
    let shapes = shapes();
    poisson_arrivals(n, gap, seed)
        .into_iter()
        .enumerate()
        .map(|(i, t)| Request::single(i, t, Operator::gemm(shapes[i % shapes.len()])))
        .collect()
}

/// Every request under a mixed fault plan ends in exactly one
/// disposition, and the serving counters equal the record tallies.
#[test]
fn chaos_mix_yields_exactly_one_disposition_per_request() {
    let engine = engine();
    let cluster = Cluster::new(engine.machine().clone(), 1, Interconnect::nvlink3());
    let telemetry = mikpoly_suite::mikpoly::telemetry::Telemetry::enabled();
    let plan = FaultPlan {
        seed: 0xC4A05,
        device_fault_rate: 0.05,
        search_stall_rate: 0.2,
        search_stall_ns: 200_000,
        cache_corrupt_rate: 0.2,
        compile_panic_rate: 0.1,
        panic_attempts: 2,
    };
    let runtime = ServingRuntime::new(engine, cluster, 4)
        .with_telemetry(Arc::clone(&telemetry))
        .with_options(ServingOptions {
            queue_capacity: Some(8),
            compile_budget: Some(Duration::from_millis(20)),
            breaker: Some(BreakerPolicy::default()),
            fault_plan: Some(Arc::new(plan)),
            ..ServingOptions::default()
        });
    // Half the stream carries a (loose) deadline so the admission paths
    // are live too; the seeds are fixed, so the fault schedule is
    // reproducible even though thread interleaving is not.
    let requests: Vec<Request> = stream(60, 30_000.0, 9)
        .into_iter()
        .map(|r| {
            if r.id % 2 == 0 {
                let deadline = r.arrival_ns + 5_000_000.0;
                r.with_deadline(deadline)
            } else {
                r
            }
        })
        .collect();
    let report = runtime.serve(&requests);

    // Exhaustive disposition: one record per request, in id order, each
    // with exactly one terminal state.
    assert_eq!(report.records.len(), 60);
    let counts = report.dispositions();
    assert_eq!(counts.total(), 60, "{counts:?}");
    for (i, r) in report.records.iter().enumerate() {
        assert_eq!(r.id, i);
        assert_eq!(
            r.shed_reason.is_some(),
            r.disposition == Disposition::Shed,
            "shed reason iff shed: {r:?}"
        );
        if r.disposition == Disposition::Shed {
            assert!(!r.executed(), "shed requests consume nothing: {r:?}");
        } else {
            assert!(r.finish_ns >= requests[i].arrival_ns);
        }
    }
    // The faults were actually live: something degraded or retried.
    let retried: u32 = report.records.iter().map(|r| r.retries).sum();
    assert!(
        counts.degraded > 0 || retried > 0,
        "fault plan had no effect: {counts:?}"
    );

    // Counter fidelity: the registry's serving.* counters equal the
    // per-request tallies exactly.
    let snap = telemetry.registry().snapshot();
    assert_eq!(snap.counter("serving.requests"), Some(60));
    for (name, want) in [
        ("serving.completed", counts.completed),
        ("serving.degraded", counts.degraded),
        ("serving.shed", counts.shed),
        ("serving.failed", counts.failed),
    ] {
        assert_eq!(
            snap.counter(name).unwrap_or(0),
            want as u64,
            "{name} disagrees with records"
        );
    }
    assert_eq!(
        snap.counter("serving.retried").unwrap_or(0),
        u64::from(retried)
    );

    // Flight recorder: every anomalous request (Shed or Failed) must
    // have a retained chain whose error reproduces the record's
    // terminal label — the black box holds the whole story, not a
    // sample of it.
    let recorder = telemetry.recorder();
    for r in &report.records {
        if matches!(r.disposition, Disposition::Shed | Disposition::Failed) {
            let chain = recorder
                .find(r.id as u64)
                .unwrap_or_else(|| panic!("no retained chain for anomalous request {}", r.id));
            assert!(
                chain.chain.disposition.is_anomalous(),
                "request {} retained with a healthy disposition: {chain:?}",
                r.id
            );
            let want = mikpoly_suite::mikpoly::serving::record_error_label(r);
            assert_eq!(
                chain.chain.error.as_deref(),
                want,
                "chain error for request {} disagrees with the record",
                r.id
            );
        }
    }
}

/// A leader whose compile panics must not strand coalesced followers:
/// one of them takes the flight over and everyone gets an answer.
#[test]
fn followers_survive_a_panicking_leader() {
    let engine = engine();
    let cluster = Cluster::new(engine.machine().clone(), 1, Interconnect::nvlink3());
    let plan = FaultPlan {
        seed: 21,
        compile_panic_rate: 1.0,
        panic_attempts: 1,
        ..FaultPlan::none()
    };
    let runtime = ServingRuntime::new(engine, cluster, 4).with_options(ServingOptions {
        fault_plan: Some(Arc::new(plan)),
        ..ServingOptions::default()
    });
    // Eight simultaneous requests of one shape: whoever leads the
    // single-flight panics on the first attempt; the takeover compiles
    // cleanly on the second.
    let requests: Vec<Request> = (0..8)
        .map(|i| Request::single(i, 0.0, Operator::gemm(GemmShape::new(320, 192, 128))))
        .collect();
    let report = runtime.serve(&requests);
    let counts = report.dispositions();
    assert_eq!(counts.total(), 8);
    assert_eq!(counts.failed, 0, "{counts:?}");
    assert_eq!(counts.shed, 0, "{counts:?}");
    assert_eq!(
        counts.degraded, 1,
        "exactly the panicked leader degrades: {counts:?}"
    );
    assert_eq!(counts.completed, 7, "{counts:?}");
}

/// Goodput under a 1% transient device-fault rate stays within 10% of
/// the fault-free run (the retries are paid in bounded virtual backoff).
#[test]
fn goodput_floor_under_one_percent_device_faults() {
    let serve = |fault_rate: f64| {
        let engine = engine();
        // Warm the cache so the virtual timeline is compile-free and the
        // two runs differ only in injected device faults.
        for s in shapes() {
            engine.run_operator(&Operator::gemm(s));
        }
        let cluster = Cluster::new(engine.machine().clone(), 2, Interconnect::nvlink3());
        let mut options = ServingOptions::default();
        if fault_rate > 0.0 {
            options.fault_plan = Some(Arc::new(FaultPlan {
                seed: 77,
                device_fault_rate: fault_rate,
                ..FaultPlan::none()
            }));
        }
        let runtime = ServingRuntime::new(engine, cluster, 2).with_options(options);
        runtime.serve(&stream(80, 10_000.0, 13))
    };
    let clean = serve(0.0);
    let faulty = serve(0.01);
    assert_eq!(clean.dispositions().served(), 80);
    let counts = faulty.dispositions();
    assert_eq!(counts.total(), 80);
    let ratio = faulty.goodput_rps() / clean.goodput_rps();
    assert!(
        ratio >= 0.9,
        "goodput under 1% device faults fell to {ratio:.3} of fault-free"
    );
}

/// A capacity-bounded program cache under chaos: eviction churn racing
/// single-flight fills, injected panics, and poison invalidations must
/// never strand a request (every one terminates with exactly one
/// disposition) and must keep the cache counters coherent — entries
/// within the bound, evictions really happening, and no double counting
/// against the fills that produced them.
#[test]
fn bounded_cache_survives_chaos_with_coherent_counters() {
    let mut o = OfflineOptions::fast();
    o.n_gen = 4;
    let machine = MachineModel::a100();
    // Eight distinct shapes against a four-program bound: steady-state
    // serving *must* evict, so every fill contends with the trimmer.
    let capacity = 4usize;
    let bounded = OnlineOptions {
        cache_capacity: Some(capacity),
        ..OnlineOptions::default()
    };
    let gemm = Arc::new(MikPoly::offline(machine.clone(), &o).with_options(bounded.clone()));
    let conv = Arc::new(
        MikPoly::offline(
            machine.clone(),
            &o.clone().with_template(TemplateKind::Conv),
        )
        .with_options(bounded),
    );
    let engine = Arc::new(Engine::from_compilers(machine.clone(), gemm, conv));
    let cluster = Cluster::new(machine, 1, Interconnect::nvlink3());
    let plan = FaultPlan {
        seed: 0xBCA,
        device_fault_rate: 0.02,
        cache_corrupt_rate: 0.15, // poison invalidations during churn
        compile_panic_rate: 0.1,  // abandoned flights during churn
        panic_attempts: 2,
        ..FaultPlan::none()
    };
    let runtime =
        ServingRuntime::new(Arc::clone(&engine), cluster, 4).with_options(ServingOptions {
            fault_plan: Some(Arc::new(plan)),
            ..ServingOptions::default()
        });
    let report = runtime.serve(&stream(80, 20_000.0, 17));

    // The suite completed — no waiter was stranded by an eviction racing
    // its flight — and every request has exactly one disposition.
    let counts = report.dispositions();
    assert_eq!(report.records.len(), 80);
    assert_eq!(counts.total(), 80, "{counts:?}");
    assert_eq!(counts.shed, 0, "nothing admits-fails without a queue bound");

    let stats = engine.gemm_compiler().cache_stats();
    assert!(
        stats.entries as usize <= capacity,
        "{} entries exceed the bound {capacity}",
        stats.entries
    );
    assert!(
        stats.evictions > 0,
        "8 shapes against capacity 4 must evict: {stats:?}"
    );
    // Eviction accounting: every eviction corresponds to a completed
    // fill, and what was filled is either still resident, evicted, or
    // was invalidated by the poison path.
    let fills = stats.computations + stats.direct_inserts;
    assert!(
        stats.evictions <= fills,
        "evictions double-counted: {stats:?}"
    );
    assert_eq!(
        stats.entries + stats.evictions + stats.invalidations,
        fills,
        "fill disposition accounting leaks entries: {stats:?}"
    );
    // Single flight under churn: a computation only ever runs for a
    // missed lookup, and the lookup ledger balances the request stream.
    assert!(
        stats.computations <= stats.misses,
        "more computations than misses: {stats:?}"
    );
    assert!(stats.hit_rate().is_finite());
}

/// Restart under chaos: a live snapshotter persists the warm caches
/// mid-stream while the fault cocktail runs, a virtual drain point
/// closes admission, and the committed generation restores *clean* into
/// a fresh engine — which then serves the same shapes with zero compile
/// time. The full crash-consistency loop: snapshot → drain → restart →
/// warm.
#[test]
fn snapshot_mid_chaos_drain_and_restart_serves_warm() {
    let engine = engine();
    let cluster = Cluster::new(engine.machine().clone(), 1, Interconnect::nvlink3());
    let telemetry = mikpoly_suite::mikpoly::telemetry::Telemetry::enabled();
    let plan = FaultPlan {
        seed: 0xD8A1,
        device_fault_rate: 0.05,
        search_stall_rate: 0.1,
        search_stall_ns: 100_000,
        cache_corrupt_rate: 0.2,
        compile_panic_rate: 0.1,
        panic_attempts: 2,
    };
    let runtime = ServingRuntime::new(Arc::clone(&engine), cluster, 4)
        .with_telemetry(Arc::clone(&telemetry))
        .with_options(ServingOptions {
            compile_budget: Some(Duration::from_millis(20)),
            breaker: Some(BreakerPolicy::default()),
            fault_plan: Some(Arc::new(plan)),
            ..ServingOptions::default()
        });
    let requests = stream(60, 30_000.0, 9);
    // Deterministic drain point: requests 50.. are shed as draining.
    runtime
        .lifecycle()
        .request_drain_at(requests[50].arrival_ns);

    let dir = std::env::temp_dir().join(format!("mikpoly-chaos-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let snapshotter = mikpoly_suite::mikpoly::Snapshotter::start(
        Arc::clone(&engine),
        dir.clone(),
        Duration::from_millis(5),
    );
    let report = runtime.serve(&requests);
    // Stopping the snapshotter takes the final snapshot — the drain's
    // persist step — before the drain accounting reads the caches.
    let stats = snapshotter.stop();
    assert!(stats.snapshots >= 1, "{stats:?}");
    assert_eq!(stats.errors, 0, "{stats:?}");
    let drain = runtime.drain(&report, Some(&dir));

    // Nothing lost: every request has a disposition, the drained count
    // is exactly the arrivals past the point, and every anomalous record
    // kept its flight-recorder chain.
    assert_eq!(drain.dispositions.total(), 60);
    let expected_drained = requests
        .iter()
        .filter(|r| r.arrival_ns >= requests[50].arrival_ns)
        .count();
    assert_eq!(drain.drained, expected_drained);
    assert!(drain.persisted_generation.is_some(), "{drain:?}");
    assert!(drain.persist_error.is_none(), "{drain:?}");
    let recorder = telemetry.recorder();
    let mut anomalous = 0u64;
    for r in &report.records {
        if matches!(r.disposition, Disposition::Shed | Disposition::Failed) {
            anomalous += 1;
            assert!(
                recorder.find(r.id as u64).is_some(),
                "request {} lost its chain across the drain",
                r.id
            );
        }
    }
    assert!(drain.chains_retained >= anomalous, "{drain:?}");

    // Restart: a fresh engine (same offline options, identical library)
    // restores the committed generation clean and serves the same shapes
    // without a single online polymerization.
    let fresh = self::engine();
    let restore = fresh.restore_program_caches(&dir);
    assert!(restore.clean(), "restore not clean after chaos:\n{restore}");
    assert!(restore.restored() > 0, "{restore}");
    let cluster = Cluster::new(fresh.machine().clone(), 1, Interconnect::nvlink3());
    let rerun = ServingRuntime::new(Arc::clone(&fresh), cluster, 2);
    let warm = rerun.serve(&stream(16, 50_000.0, 9));
    for r in &warm.records {
        assert_eq!(r.disposition, Disposition::Completed, "{r:?}");
        assert_eq!(
            r.compile.ns(),
            0.0,
            "restored cache missed a warm hit: {r:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Degraded programs are slower, not wrong: the search-free fallback and
/// a poison-evicted recompile both still match the reference semantics.
#[test]
fn degraded_and_poison_recovered_programs_match_reference() {
    let mut o = OfflineOptions::fast();
    o.n_gen = 4;
    let compiler = MikPoly::offline(MachineModel::a100(), &o);
    let shape = GemmShape::new(200, 130, 70);
    let op = Operator::gemm(shape);
    let a = Tensor::random(&[shape.m, shape.k], 31);
    let b = Tensor::random(&[shape.k, shape.n], 32);
    let want = reference_gemm(shape, &a, &b);

    // Bottom of the degradation ladder: the search-free fallback.
    let degraded = compiler
        .try_compile(
            &op,
            CompileBudget {
                deadline: None,
                degrade_only: true,
            },
        )
        .expect("degraded compile succeeds");
    degraded.program.verify_coverage().expect("coverage");
    let got = execute_gemm(&degraded.program, &a, &b);
    assert_matches_reference(&got, &want, "degraded gemm");

    // Poisoned-entry path: every first compile of a shape is corrupted;
    // validation must evict and recompile to a correct program.
    compiler.set_fault_plan(Some(Arc::new(FaultPlan {
        seed: 5,
        cache_corrupt_rate: 1.0,
        ..FaultPlan::none()
    })));
    let recovered = compiler
        .try_compile(&op, CompileBudget::default())
        .expect("poison recovery succeeds");
    assert!(
        recovered.poison_retries > 0,
        "corruption must have been detected and evicted"
    );
    recovered.program.verify_coverage().expect("coverage");
    let got = execute_gemm(&recovered.program, &a, &b);
    assert_matches_reference(&got, &want, "poison-recovered gemm");
}

/// An expired deadline on a cold shape still cuts the compile short but
/// returns a correct, degraded answer end to end through the runtime.
#[test]
fn expired_budget_degrades_but_stays_correct() {
    let engine = engine();
    let cluster = Cluster::new(engine.machine().clone(), 1, Interconnect::nvlink3());
    let runtime =
        ServingRuntime::new(Arc::clone(&engine), cluster, 1).with_options(ServingOptions {
            compile_budget: Some(Duration::from_nanos(1)),
            ..ServingOptions::default()
        });
    let t0 = Instant::now();
    let report = runtime.serve(&[Request::single(
        0,
        0.0,
        Operator::gemm(GemmShape::new(777, 512, 256)),
    )]);
    let counts = report.dispositions();
    assert_eq!(counts.total(), 1);
    assert_eq!(counts.failed, 0, "{counts:?}");
    assert_eq!(
        counts.degraded, 1,
        "a 1 ns budget cannot finish a cold search: {counts:?}"
    );
    // Degradation is fast: nowhere near a full uncut search.
    assert!(t0.elapsed() < Duration::from_secs(5));
}
