//! Property-based tests on the baseline comparators: their selection
//! heuristics and range semantics must be total and consistent for
//! arbitrary shapes.

use mikpoly_suite::accel_sim::MachineModel;
use mikpoly_suite::baselines::{
    Backend, BackendError, CutlassLibrary, DietCode, GemmRanges, Nimble, VendorLibrary,
};
use mikpoly_suite::tensor_ir::{GemmShape, Operator};
use proptest::prelude::*;
use std::sync::OnceLock;

fn dietcode() -> &'static DietCode {
    static D: OnceLock<DietCode> = OnceLock::new();
    D.get_or_init(|| DietCode::compile(MachineModel::a100_cuda_cores(), GemmRanges::cube(8, 2048)))
}

fn nimble() -> &'static Nimble {
    static N: OnceLock<Nimble> = OnceLock::new();
    N.get_or_init(|| Nimble::compile(MachineModel::a100_cuda_cores(), GemmRanges::cube(8, 2048)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The vendor library runs any shape: selection is total, the selected
    /// kernel fits the machine, and the time is positive and finite.
    #[test]
    fn vendor_library_is_total(
        m in 1usize..20_000,
        n in 1usize..20_000,
        k in 1usize..50_000,
    ) {
        let machine = MachineModel::a100();
        let lib = VendorLibrary::cublas(machine.clone());
        let op = Operator::gemm(GemmShape::new(m, n, k));
        let kernel = lib.select(&op.gemm_view());
        prop_assert!(kernel.warps <= machine.warp_cap_per_pe);
        let run = lib.run(&op).expect("vendor always runs");
        prop_assert!(run.report.time_ns.is_finite() && run.report.time_ns > 0.0);
        prop_assert!(run.report.total_flops >= op.flops());
    }

    /// Vendor bucketing is monotone-ish: the selected row tile never lies
    /// below the dimension's bucket (no kernel smaller than the bucket that
    /// still covers the extent).
    #[test]
    fn vendor_bucketing_covers_small_extents(m in 1usize..200) {
        let machine = MachineModel::a100();
        let lib = VendorLibrary::cublas(machine);
        let view = Operator::gemm(GemmShape::new(m, 4096, 4096)).gemm_view();
        let kernel = lib.select(&view);
        // For small M the bucket rule holds: one row-tile covers all rows.
        prop_assert!(kernel.um >= m || kernel.um >= 256, "m={m} got um={}", kernel.um);
    }

    /// CUTLASS's default tile never exceeds 128 and never collapses below
    /// 32, and its runs are total.
    #[test]
    fn cutlass_heuristic_is_bounded(
        m in 1usize..10_000,
        n in 1usize..10_000,
        k in 1usize..10_000,
    ) {
        let c = CutlassLibrary::new(MachineModel::a100());
        let op = Operator::gemm(GemmShape::new(m, n, k));
        let (um, un, uk, warps) = c.select(&op.gemm_view());
        prop_assert!((32..=128).contains(&um));
        prop_assert!((32..=128).contains(&un));
        prop_assert_eq!(uk, 32);
        prop_assert!(warps >= 1);
        prop_assert!(c.run(&op).is_ok());
    }

    /// DietCode and Nimble accept exactly the declared cube and reject
    /// everything else with the offending dimension named.
    #[test]
    fn range_compilers_partition_shapes_exactly(
        m in 1usize..4096,
        n in 1usize..4096,
        k in 1usize..4096,
    ) {
        let op = Operator::gemm(GemmShape::new(m, n, k));
        let in_range = (8..=2048).contains(&m) && (8..=2048).contains(&n) && (8..=2048).contains(&k);
        for backend in [dietcode() as &dyn Backend, nimble() as &dyn Backend] {
            match backend.run(&op) {
                Ok(run) => {
                    prop_assert!(in_range, "{} accepted out-of-range {op}", backend.name());
                    prop_assert!(run.report.time_ns > 0.0);
                }
                Err(BackendError::OutOfRange { dimension, value, range }) => {
                    prop_assert!(!in_range, "{} rejected in-range {op}", backend.name());
                    let actual = match dimension {
                        "M" => m,
                        "N" => n,
                        "K" => k,
                        other => panic!("unknown dimension {other}"),
                    };
                    prop_assert_eq!(value, actual);
                    prop_assert!(value < range.0 || value > range.1);
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }

    /// DietCode's dispatch picks a representative within one sampling step
    /// (4x per dimension) of the runtime shape, so its tile choice is never
    /// tuned for a wildly different size.
    #[test]
    fn dietcode_overhead_is_constant(
        m in 8usize..2048,
        n in 8usize..2048,
    ) {
        let op = Operator::gemm(GemmShape::new(m, n, 512));
        let a = dietcode().run(&op).expect("in range");
        let b = dietcode().run(&op).expect("in range");
        prop_assert_eq!(a.overhead_ns, b.overhead_ns);
        prop_assert!(a.overhead_ns > 0.0, "dispatch recurs every run");
    }
}

#[test]
fn vendor_menus_differ_per_machine() {
    let gpu = VendorLibrary::cublas(MachineModel::a100());
    let npu = VendorLibrary::cann(MachineModel::ascend910a());
    let view = Operator::gemm(GemmShape::new(2048, 2048, 2048)).gemm_view();
    let g = gpu.select(&view);
    let n = npu.select(&view);
    // The NPU menu has 1-task-per-core kernels; the GPU menu is warp-based.
    assert_eq!(n.warps, 1);
    assert!(g.warps > 1);
}

#[test]
fn faster_transformer_matches_cublas_behavior() {
    use mikpoly_suite::baselines::FasterTransformer;
    let machine = MachineModel::a100();
    let ft = FasterTransformer::new(machine.clone());
    let cublas = VendorLibrary::cublas(machine);
    let op = Operator::gemm(GemmShape::new(128, 3840, 5120));
    let a = ft.run(&op).expect("runs");
    let b = cublas.run(&op).expect("runs");
    assert_eq!(a.report.time_ns, b.report.time_ns);
}
