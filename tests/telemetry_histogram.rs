//! Telemetry histogram integrity: the log2-bucketed percentile readout
//! must track the exact sorted-slice percentiles within one bucket width,
//! and parallel recording must never lose a count.

use std::sync::Arc;

use mikpoly_suite::mikpoly::serving::percentile;
use mikpoly_suite::telemetry::{Clock, Histogram, Telemetry};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any sample set spanning many orders of magnitude, the bucketed
    /// p50/p95/p99 never undershoot the exact nearest-rank percentile and
    /// overshoot by less than one bucket width (a bucket holds
    /// `[2^(b-1), 2^b - 1]`, so its upper bound is below twice any member).
    #[test]
    fn bucketed_percentiles_within_one_bucket(
        values in proptest::collection::vec(
            (0u32..52, 0u64..u64::MAX).prop_map(|(e, raw)| raw % (1u64 << e).max(1)),
            1..400,
        ),
    ) {
        let hist = Histogram::new(Clock::Real);
        for &v in &values {
            hist.record(v);
        }
        let mut sorted: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        sorted.sort_by(f64::total_cmp);
        for p in [0.5, 0.95, 0.99] {
            let exact = percentile(&sorted, p) as u64;
            let est = hist.percentile_ns(p);
            prop_assert!(
                est >= exact,
                "p{p}: bucketed {est} undershoots exact {exact}"
            );
            prop_assert!(
                est < 2 * exact.max(1),
                "p{p}: bucketed {est} is more than one bucket above exact {exact}"
            );
        }
        // Count, max, and mean are exact, not bucketed.
        let stats = hist.stats();
        prop_assert_eq!(stats.count, values.len() as u64);
        prop_assert_eq!(stats.max_ns, *sorted.last().expect("non-empty"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        prop_assert!(
            (stats.mean_ns - mean).abs() <= mean * 1e-6 + 0.5,
            "mean {} vs exact {}",
            stats.mean_ns,
            mean
        );
    }
}

/// Eight threads hammering one histogram and one counter: every record
/// lands (the instruments are single atomic words, no read-modify-write
/// races to lose).
#[test]
fn parallel_records_lose_nothing() {
    let t = Telemetry::enabled();
    let hist = t.registry().histogram("test.lat_ns", Clock::Real);
    let counter = t.registry().counter("test.events");
    let threads = 8u64;
    let per_thread = 50_000u64;
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let hist = Arc::clone(&hist);
            let counter = Arc::clone(&counter);
            scope.spawn(move || {
                for i in 0..per_thread {
                    // Distinct values per thread so the expected total sum
                    // is the exact arithmetic series 0..threads*per_thread.
                    hist.record(tid * per_thread + i);
                    counter.inc();
                }
            });
        }
    });
    let n = threads * per_thread;
    assert_eq!(hist.count(), n, "histogram lost records under contention");
    assert_eq!(counter.get(), n, "counter lost increments under contention");
    assert_eq!(
        hist.sum_ns(),
        n * (n - 1) / 2,
        "histogram sum must be the exact series total"
    );
    let snapshot = t.registry().snapshot();
    assert_eq!(snapshot.counter("test.events"), Some(n));
    assert_eq!(
        snapshot.histogram("test.lat_ns").expect("registered").count,
        n
    );
}
