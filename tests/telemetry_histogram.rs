//! Telemetry histogram integrity: the log2-bucketed percentile readout
//! must track the exact sorted-slice percentiles within one bucket width,
//! and parallel recording must never lose a count.

use std::sync::Arc;

use mikpoly_suite::mikpoly::serving::percentile;
use mikpoly_suite::telemetry::{Clock, Histogram, Telemetry};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any sample set spanning many orders of magnitude, the bucketed
    /// p50/p95/p99 never undershoot the exact nearest-rank percentile and
    /// overshoot by less than one bucket width (a bucket holds
    /// `[2^(b-1), 2^b - 1]`, so its upper bound is below twice any member).
    #[test]
    fn bucketed_percentiles_within_one_bucket(
        values in proptest::collection::vec(
            (0u32..52, 0u64..u64::MAX).prop_map(|(e, raw)| raw % (1u64 << e).max(1)),
            1..400,
        ),
    ) {
        let hist = Histogram::new(Clock::Real);
        for &v in &values {
            hist.record(v);
        }
        let mut sorted: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        sorted.sort_by(f64::total_cmp);
        for p in [0.5, 0.95, 0.99] {
            let exact = percentile(&sorted, p) as u64;
            let est = hist.percentile_ns(p);
            prop_assert!(
                est >= exact,
                "p{p}: bucketed {est} undershoots exact {exact}"
            );
            prop_assert!(
                est < 2 * exact.max(1),
                "p{p}: bucketed {est} is more than one bucket above exact {exact}"
            );
        }
        // Count, max, and mean are exact, not bucketed.
        let stats = hist.stats();
        prop_assert_eq!(stats.count, values.len() as u64);
        prop_assert_eq!(stats.max_ns, *sorted.last().expect("non-empty"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        prop_assert!(
            (stats.mean_ns - mean).abs() <= mean * 1e-6 + 0.5,
            "mean {} vs exact {}",
            stats.mean_ns,
            mean
        );
    }
}

/// Eight threads hammering one histogram and one counter: every record
/// lands (the instruments are single atomic words, no read-modify-write
/// races to lose).
#[test]
fn parallel_records_lose_nothing() {
    let t = Telemetry::enabled();
    let hist = t.registry().histogram("test.lat_ns", Clock::Real);
    let counter = t.registry().counter("test.events");
    let threads = 8u64;
    let per_thread = 50_000u64;
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let hist = Arc::clone(&hist);
            let counter = Arc::clone(&counter);
            scope.spawn(move || {
                for i in 0..per_thread {
                    // Distinct values per thread so the expected total sum
                    // is the exact arithmetic series 0..threads*per_thread.
                    hist.record(tid * per_thread + i);
                    counter.inc();
                }
            });
        }
    });
    let n = threads * per_thread;
    assert_eq!(hist.count(), n, "histogram lost records under contention");
    assert_eq!(counter.get(), n, "counter lost increments under contention");
    assert_eq!(
        hist.sum_ns(),
        n * (n - 1) / 2,
        "histogram sum must be the exact series total"
    );
    let snapshot = t.registry().snapshot();
    assert_eq!(snapshot.counter("test.events"), Some(n));
    assert_eq!(
        snapshot.histogram("test.lat_ns").expect("registered").count,
        n
    );
}

/// The Prometheus rendering must be a well-formed text exposition: every
/// line is a `# TYPE` declaration or a `name[{labels}] value` sample with
/// a legal metric name, every sample's family is declared before use, and
/// histogram bucket counts are cumulative with `+Inf` equal to `_count`.
#[test]
fn prometheus_rendering_is_valid_text_exposition() {
    let t = Telemetry::enabled();
    let r = t.registry();
    r.counter("cache.hits").store(41);
    r.counter("serving.requests").inc();
    r.gauge("worker-pool.utilization").set(0.625);
    let h = r.histogram("serving.latency_ns", Clock::Virtual);
    for v in [1u64, 3, 900, 4096, 70_000, 1 << 33] {
        h.record(v);
    }
    let text = r.render_prometheus();

    let valid_name = |name: &str| {
        !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let mut declared: Vec<(String, String)> = Vec::new();
    let mut helped: Vec<String> = Vec::new();
    // Per-histogram running check state: (family, last cumulative, last le).
    let mut cumulative: std::collections::HashMap<String, (u64, f64)> =
        std::collections::HashMap::new();
    let mut bucket_totals: std::collections::HashMap<String, u64> =
        std::collections::HashMap::new();
    let mut count_values: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    let mut samples = 0usize;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().expect("HELP name");
            assert!(valid_name(name), "illegal metric name {name:?}");
            assert!(
                parts.next().is_some_and(|help| !help.trim().is_empty()),
                "HELP with no text in {line:?}"
            );
            helped.push(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE name");
            let kind = parts.next().expect("TYPE kind");
            assert!(valid_name(name), "illegal metric name {name:?}");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE {kind:?}"
            );
            assert!(parts.next().is_none(), "trailing tokens in {line:?}");
            // Every family's HELP line immediately precedes its TYPE.
            assert_eq!(
                helped.last().map(String::as_str),
                Some(name),
                "TYPE for {name} not preceded by its HELP line"
            );
            declared.push((name.to_string(), kind.to_string()));
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment form {line:?}");
        // Sample line: name[{labels}] value
        let (series, value) = line.rsplit_once(' ').expect("sample needs a value");
        let value: f64 = value.parse().unwrap_or_else(|e| {
            panic!("unparseable sample value in {line:?}: {e}");
        });
        assert!(value >= 0.0, "negative sample in {line:?}");
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => {
                let labels = rest.strip_suffix('}').expect("unterminated label set");
                (n, Some(labels))
            }
            None => (series, None),
        };
        assert!(valid_name(name), "illegal metric name {name:?}");
        // The sample must belong to a previously declared family (the
        // histogram suffixes map back to their base name).
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| declared.iter().any(|(n, k)| n == base && k == "histogram"))
            .unwrap_or(name);
        assert!(
            declared.iter().any(|(n, _)| n == family),
            "sample {name} has no preceding # TYPE for {family}"
        );
        if let Some(labels) = labels {
            for pair in labels.split(',') {
                let (k, v) = pair.split_once('=').expect("label needs key=value");
                assert!(valid_name(k), "illegal label name {k:?}");
                assert!(
                    v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
                    "unquoted label value in {line:?}"
                );
            }
            if name.ends_with("_bucket") {
                let le = labels
                    .split(',')
                    .find_map(|p| p.strip_prefix("le=\""))
                    .and_then(|v| v.strip_suffix('"'))
                    .expect("bucket needs le");
                let bound: f64 = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().expect("numeric le")
                };
                let entry = cumulative
                    .entry(family.to_string())
                    .or_insert((0, f64::NEG_INFINITY));
                assert!(
                    bound > entry.1,
                    "bucket bounds must increase: {le} in {line:?}"
                );
                assert!(
                    value as u64 >= entry.0,
                    "bucket counts must be cumulative in {line:?}"
                );
                *entry = (value as u64, bound);
                bucket_totals.insert(family.to_string(), value as u64);
            }
        }
        if let Some(base) = name.strip_suffix("_count") {
            count_values.insert(base.to_string(), value as u64);
        }
        samples += 1;
    }
    assert!(
        samples >= 4,
        "expected counters, gauge, and histogram lines"
    );
    // The final (+Inf) bucket of each histogram equals its _count.
    assert!(!bucket_totals.is_empty(), "histogram rendered no buckets");
    for (family, total) in &bucket_totals {
        assert_eq!(
            count_values.get(family),
            Some(total),
            "{family}: +Inf bucket disagrees with _count"
        );
    }
    assert_eq!(count_values.get("serving_latency_ns"), Some(&6));
}
