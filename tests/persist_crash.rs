//! Crash-consistency suite for the durable warm state.
//!
//! The recovery contract under test, end to end through the public API:
//!
//! * saves are **atomic generation commits** — a directory always holds
//!   one complete committed generation plus quarantine evidence, never a
//!   mix of old and new bundles, and never a stray temp file;
//! * truncation at **any** byte offset salvages exactly the records
//!   whose bytes lie entirely before the cut;
//! * any single-bit flip is rejected by the strict (checksummed)
//!   decoder;
//! * a swapped-in bundle that is internally valid but not the committed
//!   one is damage, not data — quarantined, never silently adopted;
//! * the legacy JSON path is capped before its superlinear parse can
//!   stall a restart.

use std::sync::{Arc, OnceLock};

use mikpoly_suite::accel_sim::MachineModel;
use mikpoly_suite::mikpoly::{
    decode_bundle, encode_bundle, encode_bundle_v2, record_end_offsets, salvage_bundle, Engine,
    OfflineOptions, RestoreOutcome,
};
use mikpoly_suite::tensor_ir::{GemmShape, Operator};

/// One tuned engine with three warm gemm programs, shared read-only by
/// every test (offline tuning is the expensive part).
fn shared_engine() -> Arc<Engine> {
    static ENGINE: OnceLock<Arc<Engine>> = OnceLock::new();
    Arc::clone(ENGINE.get_or_init(|| {
        let engine = Arc::new(Engine::offline(MachineModel::a100(), &offline()));
        for shape in [
            GemmShape::new(256, 256, 256),
            GemmShape::new(320, 192, 128),
            GemmShape::new(64, 64, 64),
        ] {
            engine.run_operator(&Operator::gemm(shape));
        }
        engine
    }))
}

fn offline() -> OfflineOptions {
    let mut o = OfflineOptions::fast();
    o.n_gen = 4;
    o
}

/// A cold engine on the same (deterministically tuned) library, for
/// restore targets.
fn fresh_engine() -> Engine {
    Engine::offline(MachineModel::a100(), &offline())
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mikpoly-persist-crash-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn truncation_at_every_offset_salvages_the_exact_prefix() {
    let engine = shared_engine();
    let bundle = engine.gemm_compiler().encode_program_cache();
    let ends = record_end_offsets(&bundle).expect("fresh bundle indexes");
    assert_eq!(ends.len(), 3, "three warm programs, three records");
    for cut in 0..=bundle.len() {
        let salvage = salvage_bundle(&bundle[..cut]);
        let expected = ends.iter().filter(|&&end| end <= cut).count();
        assert_eq!(
            salvage.programs.len(),
            expected,
            "cut at {cut}: salvage must recover the exact valid prefix"
        );
        assert_eq!(
            salvage.clean,
            cut == bundle.len(),
            "only the untruncated bundle is clean (cut {cut})"
        );
    }
}

#[test]
fn previous_format_loads_and_bit_flips_never_pass_strict_decode() {
    let engine = shared_engine();
    let programs =
        decode_bundle(&engine.gemm_compiler().encode_program_cache()).expect("self decode");
    // The previous binary revision (no checksums) decodes forever.
    let v2 = encode_bundle_v2(programs.iter());
    assert_eq!(
        decode_bundle(&v2).expect("v2 decodes").len(),
        programs.len()
    );
    // Any single-bit flip anywhere in the checksummed format is caught
    // by the strict decoder, and salvage stays panic-free on it.
    let v3 = encode_bundle(programs.iter());
    for pos in (0..v3.len()).step_by(97) {
        for bit in [0u8, 3, 7] {
            let mut damaged = v3.clone();
            damaged[pos] ^= 1 << bit;
            assert!(
                decode_bundle(&damaged).is_err(),
                "flip at byte {pos} bit {bit} went undetected"
            );
            let _ = salvage_bundle(&damaged);
        }
    }
}

#[test]
fn generation_commits_restore_clean_and_reclaim_superseded_files() {
    let engine = shared_engine();
    let dir = scratch("gen");
    let g1 = engine.save_program_caches(&dir).expect("gen 1");
    let g2 = engine.save_program_caches(&dir).expect("gen 2");
    assert_eq!((g1, g2), (1, 2));
    assert!(
        !dir.join("gemm.mpac.1").exists(),
        "superseded generation was not reclaimed"
    );
    assert!(dir.join("gemm.mpac.2").exists());
    // The atomic write protocol leaves no temp files behind.
    for entry in std::fs::read_dir(&dir).expect("readdir") {
        let name = entry.expect("entry").file_name();
        assert!(
            !name.to_string_lossy().contains(".tmp."),
            "stray temp file {name:?}"
        );
    }
    let fresh = fresh_engine();
    let restore = fresh.restore_program_caches(&dir);
    assert!(restore.clean(), "{restore}");
    assert_eq!(restore.generation, Some(2));
    assert_eq!(restore.restored(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_swapped_bundle_never_mixes_generations() {
    let engine = shared_engine();
    let dir = scratch("swap");
    engine.save_program_caches(&dir).expect("gen 1");
    let gen1_gemm = std::fs::read(dir.join("gemm.mpac.1")).expect("read gen 1");
    engine.save_program_caches(&dir).expect("gen 2");
    // Plant an internally-valid bundle (every checksum passes) that is
    // *not* the committed generation-2 content: a shorter re-encode.
    let programs = decode_bundle(&gen1_gemm).expect("decode gen 1");
    let forged = encode_bundle(programs.iter().take(2));
    std::fs::write(dir.join("gemm.mpac.2"), &forged).expect("plant forged bundle");

    let fresh = fresh_engine();
    let restore = fresh.restore_program_caches(&dir);
    assert!(
        restore.degraded(),
        "a bundle that disagrees with the manifest must be damage: {restore}"
    );
    let gemm = restore
        .bundles
        .iter()
        .find(|b| b.bundle == "gemm")
        .expect("gemm entry");
    assert!(
        matches!(
            gemm.outcome,
            RestoreOutcome::Salvaged | RestoreOutcome::Quarantined
        ),
        "{restore}"
    );
    assert!(
        gemm.quarantined_to.as_ref().is_some_and(|p| p.exists()),
        "the evidence must be quarantined, not deleted: {restore}"
    );
    let conv = restore
        .bundles
        .iter()
        .find(|b| b.bundle == "conv")
        .expect("conv entry");
    assert!(
        matches!(conv.outcome, RestoreOutcome::Clean),
        "the untouched bundle stays clean: {restore}"
    );
    // Re-plant the forgery (the restore above quarantined it away):
    // the strict loader refuses the directory outright.
    std::fs::write(dir.join("gemm.mpac.2"), &forged).expect("re-plant forged bundle");
    assert!(fresh_engine().load_program_caches(&dir).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_legacy_json_is_rejected_with_guidance() {
    let engine = shared_engine();
    let path = std::env::temp_dir().join(format!("mikpoly-legacy-cap-{}.json", std::process::id()));
    let mut blob = vec![b' '; (1 << 20) + 1];
    blob[0] = b'[';
    std::fs::write(&path, &blob).expect("write oversized JSON");
    let err = engine
        .gemm_compiler()
        .load_program_cache(&path)
        .expect_err("an over-cap legacy document must be rejected, not parsed");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("binary format"), "{err}");
    let _ = std::fs::remove_file(&path);
}
