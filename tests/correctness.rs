//! Cross-crate functional correctness: every program MikPoly emits must
//! compute exactly what the reference semantics compute, for arbitrary
//! runtime shapes — the property DietCode-style range compilation loses.

use std::sync::{Arc, OnceLock};

use mikpoly_conformance::{assert_matches_reference, compare_to_reference, Tolerance};
use mikpoly_suite::accel_sim::MachineModel;
use mikpoly_suite::mikpoly::{
    execute_conv2d, execute_gemm, MikPoly, OfflineOptions, OnlineOptions, TemplateKind,
};
use mikpoly_suite::tensor_ir::{
    reference_conv2d, reference_gemm, Conv2dShape, GemmShape, Operator, Tensor,
};
use proptest::prelude::*;

/// Shared small compiler (offline stage runs once for the whole test
/// binary).
fn compiler() -> Arc<MikPoly> {
    static COMPILER: OnceLock<Arc<MikPoly>> = OnceLock::new();
    Arc::clone(COMPILER.get_or_init(|| {
        let mut options = OfflineOptions::fast();
        options.n_gen = 4;
        Arc::new(MikPoly::offline(MachineModel::a100(), &options))
    }))
}

fn npu_compiler() -> Arc<MikPoly> {
    static COMPILER: OnceLock<Arc<MikPoly>> = OnceLock::new();
    Arc::clone(COMPILER.get_or_init(|| {
        let mut options = OfflineOptions::fast();
        options.n_gen = 4;
        Arc::new(MikPoly::offline(MachineModel::ascend910a(), &options))
    }))
}

#[test]
fn gemm_matches_reference_on_selected_shapes() {
    let c = compiler();
    for (m, n, k) in [
        (1usize, 1usize, 1usize),
        (16, 16, 16),
        (17, 31, 5),
        (128, 64, 96),
        (200, 130, 70),
        (1, 257, 19),
        (255, 1, 255),
    ] {
        let shape = GemmShape::new(m, n, k);
        let program = c.compile(&Operator::gemm(shape));
        program.verify_coverage().expect("coverage");
        let a = Tensor::random(&[m, k], 11);
        let b = Tensor::random(&[k, n], 12);
        let got = execute_gemm(&program, &a, &b);
        let want = reference_gemm(shape, &a, &b);
        assert_matches_reference(&got, &want, &format!("gemm ({m},{n},{k})"));
    }
}

#[test]
fn conv_matches_reference_across_filter_geometries() {
    let mut options = OfflineOptions::fast();
    options.n_gen = 4;
    options = options.with_template(TemplateKind::Conv);
    let c = MikPoly::offline(MachineModel::a100(), &options);
    for (kernel, stride, pad) in [
        (1usize, 1usize, 0usize),
        (3, 1, 1),
        (3, 2, 1),
        (5, 1, 2),
        (7, 2, 3),
    ] {
        let shape = Conv2dShape::new(2, 4, 14, 14, 6, kernel, kernel, stride, pad);
        let program = c.compile(&Operator::conv2d(shape));
        let input = Tensor::random(&[2, 4, 14, 14], 21);
        let filter = Tensor::random(&[6, 4, kernel, kernel], 22);
        let got = execute_conv2d(&program, &input, &filter);
        let want = reference_conv2d(shape, &input, &filter);
        assert_matches_reference(&got, &want, &format!("{shape}"));
    }
}

#[test]
fn npu_programs_are_functionally_identical_to_gpu_programs() {
    let gpu = compiler();
    let npu = npu_compiler();
    let shape = GemmShape::new(123, 77, 45);
    let a = Tensor::random(&[123, 45], 31);
    let b = Tensor::random(&[45, 77], 32);
    let via_gpu = execute_gemm(&gpu.compile(&Operator::gemm(shape)), &a, &b);
    let via_npu = execute_gemm(&npu.compile(&Operator::gemm(shape)), &a, &b);
    assert_matches_reference(&via_gpu, &via_npu, "gpu-vs-npu gemm (123,77,45)");
}

#[test]
fn every_cost_model_variant_compiles_correct_programs() {
    use mikpoly_suite::mikpoly::CostModelKind;
    let shape = GemmShape::new(97, 61, 33);
    let a = Tensor::random(&[97, 33], 41);
    let b = Tensor::random(&[33, 61], 42);
    let want = reference_gemm(shape, &a, &b);
    for kind in [
        CostModelKind::Full,
        CostModelKind::WaveOnly,
        CostModelKind::PipeOnly,
    ] {
        let mut options = OfflineOptions::fast();
        options.n_gen = 4;
        let c = MikPoly::offline(MachineModel::a100(), &options).with_options(OnlineOptions {
            cost_model: kind,
            ..OnlineOptions::default()
        });
        let got = execute_gemm(&c.compile(&Operator::gemm(shape)), &a, &b);
        assert_matches_reference(&got, &want, &format!("cost model {kind}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any runtime GEMM shape produces a covering, numerically correct
    /// program — the invariant at the heart of "arbitrary shapes at
    /// runtime".
    #[test]
    fn polymerized_gemm_is_correct_for_arbitrary_shapes(
        m in 1usize..180,
        n in 1usize..180,
        k in 1usize..120,
    ) {
        let shape = GemmShape::new(m, n, k);
        let program = compiler().compile(&Operator::gemm(shape));
        program.verify_coverage().expect("coverage");
        let a = Tensor::random(&[m, k], 7);
        let b = Tensor::random(&[k, n], 8);
        let got = execute_gemm(&program, &a, &b);
        let want = reference_gemm(shape, &a, &b);
        if let Err(report) = compare_to_reference(&got, &want, Tolerance::default()) {
            prop_assert!(false, "gemm ({m},{n},{k}): {report}");
        }
    }

    /// The NPU path (all nine patterns + static allocation) preserves the
    /// same invariant.
    #[test]
    fn npu_polymerization_is_correct_for_arbitrary_shapes(
        m in 1usize..150,
        n in 1usize..150,
        k in 1usize..100,
    ) {
        let shape = GemmShape::new(m, n, k);
        let program = npu_compiler().compile(&Operator::gemm(shape));
        program.verify_coverage().expect("coverage");
        let a = Tensor::random(&[m, k], 9);
        let b = Tensor::random(&[k, n], 10);
        let got = execute_gemm(&program, &a, &b);
        let want = reference_gemm(shape, &a, &b);
        if let Err(report) = compare_to_reference(&got, &want, Tolerance::default()) {
            prop_assert!(false, "npu gemm ({m},{n},{k}): {report}");
        }
    }

    /// Batched GEMM flattening covers each instance exactly once.
    #[test]
    fn batched_gemm_flattening_is_correct(
        batch in 1usize..6,
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..32,
    ) {
        let op = Operator::batched_gemm(batch, GemmShape::new(m, n, k));
        let program = compiler().compile(&op);
        program.verify_coverage().expect("coverage");
        // Functionally the flattened view is one (batch*m, n, k) GEMM with
        // block-diagonal reuse of B; verify the flattened semantics.
        let flat = op.gemm_view().shape;
        let a = Tensor::random(&[flat.m, flat.k], 13);
        let b = Tensor::random(&[flat.k, flat.n], 14);
        let got = execute_gemm(&program, &a, &b);
        let want = reference_gemm(flat, &a, &b);
        if let Err(report) = compare_to_reference(&got, &want, Tolerance::default()) {
            prop_assert!(false, "batched gemm {batch}x({m},{n},{k}): {report}");
        }
    }
}
