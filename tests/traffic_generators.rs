//! Property tests on the serving-traffic generators: any valid parameter
//! set must yield a stream that is (a) byte-identical when regenerated
//! under the same seed and (b) monotone in arrival time — the two
//! invariants the batch-serving experiment and the batched dispatcher
//! rely on.

use mikpoly_suite::workloads::{
    adversarial_traffic, bursty_traffic, diurnal_traffic, TrafficEvent, LENGTH_PALETTE,
};
use proptest::prelude::*;

fn assert_deterministic_and_monotone(a: &[TrafficEvent], b: &[TrafficEvent], tenants: u32) {
    assert_eq!(a, b, "same seed must regenerate the identical stream");
    assert!(
        a.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns),
        "arrivals must be monotone non-decreasing"
    );
    assert!(a
        .iter()
        .all(|e| e.arrival_ns.is_finite() && e.arrival_ns >= 0.0));
    assert!(a.iter().all(|e| e.tenant < tenants.max(1)));
    assert!(a.iter().all(|e| e.seq_len >= 1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn diurnal_streams_are_deterministic_and_monotone(
        count in 1usize..300,
        mean_gap in 100.0f64..1e7,
        period in 1e6f64..1e10,
        tenants in 0u32..6,
        seed in 0u64..100_000,
    ) {
        let a = diurnal_traffic(count, mean_gap, period, tenants, seed);
        let b = diurnal_traffic(count, mean_gap, period, tenants, seed);
        prop_assert_eq!(a.len(), count);
        assert_deterministic_and_monotone(&a, &b, tenants);
        prop_assert!(a.iter().all(|e| LENGTH_PALETTE.contains(&e.seq_len)));
    }

    #[test]
    fn bursty_streams_are_deterministic_and_monotone(
        count in 1usize..300,
        mean_gap in 100.0f64..1e7,
        burst in 1usize..12,
        tenants in 0u32..6,
        seed in 0u64..100_000,
    ) {
        let a = bursty_traffic(count, mean_gap, burst, tenants, seed);
        let b = bursty_traffic(count, mean_gap, burst, tenants, seed);
        prop_assert_eq!(a.len(), count, "bursts must not over- or under-fill");
        assert_deterministic_and_monotone(&a, &b, tenants);
    }

    #[test]
    fn adversarial_streams_are_deterministic_monotone_and_cache_busting(
        count in 1usize..300,
        mean_gap in 100.0f64..1e7,
        tenants in 0u32..6,
        seed in 0u64..100_000,
    ) {
        let a = adversarial_traffic(count, mean_gap, tenants, seed);
        let b = adversarial_traffic(count, mean_gap, tenants, seed);
        prop_assert_eq!(a.len(), count);
        assert_deterministic_and_monotone(&a, &b, tenants);
        // The adversary's defining property: no shape ever repeats.
        let mut seen = std::collections::HashSet::new();
        prop_assert!(a.iter().all(|e| seen.insert(e.seq_len)));
    }
}
