//! Property-based tests on the flight recorder's two load-bearing
//! contracts: the memory budget is a hard bound no matter what sizes
//! arrive, and retention keeps every anomalous chain while healthy
//! chains never exceed the configured sample rate.

use mikpoly_suite::mikpoly::telemetry::{
    ChainDisposition, ChainRecord, FlightRecorder, RecorderConfig, RetainReason, RECORDER_SHARDS,
};
use proptest::prelude::*;

/// A chain with a fixed, constant timeline so the rolling-p99 tail
/// trigger can never fire (the p99 estimate is a bucket upper bound,
/// hence >= the constant latency). Anomalous chains carry an error
/// string of the requested length; healthy ones carry none.
fn chain(id: u64, disposition: ChainDisposition, error_len: usize) -> ChainRecord {
    ChainRecord {
        id,
        shape_key: id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        worker: 0,
        tenant: 0,
        queue_ns: 1_000.0,
        compile_real_ns: 0.0,
        search_ns: 0.0,
        cache_wait_ns: 0.0,
        device_ns: 10_000.0,
        finish_ns: 11_000.0,
        retries: 0,
        cache_outcome: "hit",
        breaker_event: None,
        disposition,
        error: disposition
            .is_anomalous()
            .then(|| "e".repeat(error_len.max(1))),
    }
}

fn disposition_of(tag: u8) -> ChainDisposition {
    match tag % 4 {
        0 => ChainDisposition::Completed,
        1 => ChainDisposition::Degraded,
        2 => ChainDisposition::Shed,
        _ => ChainDisposition::Failed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The memory budget is a hard bound under adversarial event sizes:
    /// whatever mix of dispositions and error-string lengths arrives —
    /// including single chains larger than a whole shard's budget — the
    /// resident estimate never exceeds the configured cap, and the
    /// resident accounting stays consistent.
    #[test]
    fn memory_budget_is_a_hard_bound_under_adversarial_sizes(
        events in prop::collection::vec((0u8..4, 0usize..4096), 1..200),
        budget_per_shard in 256usize..2048,
    ) {
        let budget = RECORDER_SHARDS * budget_per_shard;
        let recorder = FlightRecorder::new(
            RecorderConfig {
                memory_budget_bytes: budget,
                sample_every: 1, // retain every healthy chain: max pressure
                p99_refresh_every: 64,
            },
            true,
        );
        for (id, (tag, error_len)) in events.iter().enumerate() {
            recorder.record(chain(id as u64, disposition_of(*tag), *error_len));
        }
        prop_assert!(
            recorder.approx_bytes() <= budget,
            "resident estimate {} exceeds budget {}",
            recorder.approx_bytes(),
            budget
        );
        let snapshot = recorder.snapshot();
        prop_assert_eq!(snapshot.len(), recorder.len());
        prop_assert_eq!(
            recorder.retained() - recorder.evicted(),
            recorder.len() as u64
        );
        prop_assert_eq!(recorder.observed(), events.len() as u64);
        // Everything in the snapshot resolves through the exemplar path.
        for retained in &snapshot {
            prop_assert!(recorder.find(retained.chain.id).is_some());
        }
    }

    /// Tail-based retention: with an ample budget, 100% of non-Completed
    /// chains are retained (reason: disposition), while Completed chains
    /// are kept exactly at the deterministic downsample — never more
    /// than the configured sample rate.
    #[test]
    fn retention_keeps_all_anomalies_and_samples_healthy_chains(
        tags in prop::collection::vec(0u8..4, 1..300),
        sample_every in 1u64..32,
    ) {
        let recorder = FlightRecorder::new(
            RecorderConfig {
                memory_budget_bytes: 64 << 20, // never evicts at this scale
                sample_every,
                p99_refresh_every: 64,
            },
            true,
        );
        let mut completed = 0u64;
        let mut expected_sampled = 0u64;
        let mut anomalous_ids = Vec::new();
        for (id, tag) in tags.iter().enumerate() {
            let disposition = disposition_of(*tag);
            recorder.record(chain(id as u64, disposition, 16));
            if disposition.is_anomalous() {
                anomalous_ids.push(id as u64);
            } else {
                completed += 1;
                expected_sampled += u64::from((id as u64).is_multiple_of(sample_every));
            }
        }
        prop_assert_eq!(recorder.evicted(), 0);
        // Every anomalous chain is resident, kept for its disposition.
        for id in &anomalous_ids {
            let retained = recorder.find(*id);
            prop_assert!(retained.is_some(), "anomalous chain {} missing", id);
            prop_assert_eq!(
                retained.expect("present").reason,
                RetainReason::Disposition
            );
        }
        // Healthy chains: exactly the deterministic downsample survives
        // (constant latency means the tail trigger cannot fire). The
        // downsample is keyed on the request id, so the retained count
        // never exceeds the sample rate over the id space.
        let healthy_retained = recorder
            .snapshot()
            .iter()
            .filter(|c| !c.chain.disposition.is_anomalous())
            .map(|c| {
                assert_eq!(c.reason, RetainReason::Sampled);
                assert_eq!(c.chain.id % sample_every, 0);
            })
            .count() as u64;
        prop_assert_eq!(healthy_retained, expected_sampled);
        prop_assert!(healthy_retained <= tags.len() as u64 / sample_every + 1);
        prop_assert!(healthy_retained <= completed);
        prop_assert_eq!(
            recorder.len() as u64,
            healthy_retained + anomalous_ids.len() as u64
        );
    }
}
