//! Differential equivalence between the event-driven scheduler core and
//! the frozen reference loop (`reference-sim` feature).
//!
//! The fast core's contract is **bit-identity**, not approximation: the
//! same launch under the same timing mode must produce an `assert_eq!`-
//! equal `SimReport` (every `f64` bit for bit) and the identical sorted
//! trace-event sequence. These tests drive that contract from two
//! directions:
//!
//! * property-based launches: random machines x group mixes x timing
//!   modes, including empty groups, co-residency, tail waves, and static
//!   NPU placements;
//! * the committed conformance corpora (`tests/corpus/*.json`): every
//!   pinned, hard, and regression shape is compiled by the real two-stage
//!   compiler and its actual device launches (including split-K reduction
//!   launches) are replayed through both cores.
//!
//! Shrunk proptest failures follow the regression-corpus workflow from
//! `docs/testing.md`: the vendored proptest stand-in does not replay
//! `.proptest-regressions` files, so a shrunk counterexample is pinned
//! here as an explicit `#[test]` (see the "pinned regressions" section
//! at the bottom) and, when it implicates the compiler rather than the
//! simulator, appended to `tests/corpus/regressions.json`.

use std::path::PathBuf;

use mikpoly_conformance::{load_corpus, ConformanceEnv, FuzzCase};
use mikpoly_suite::accel_sim::{
    simulate_reference, simulate_reference_traced, simulate_traced, try_simulate, Launch,
    MachineModel, TaskGroup, TaskShape, TaskSpec, TimingMode,
};
use proptest::prelude::*;

/// Asserts the fast core and the reference loop agree exactly — report,
/// trace, and error/success disposition — on one launch.
fn assert_equivalent(machine: &MachineModel, launch: &Launch, mode: TimingMode) {
    let fast = try_simulate(machine, launch, mode)
        .unwrap_or_else(|e| panic!("fast core rejected a launch the test considered valid: {e}"));
    let reference = simulate_reference(machine, launch, mode);
    assert_eq!(
        fast, reference,
        "fast report diverged from reference on {machine:?} mode {mode:?}"
    );
    let (fast_traced, fast_trace) = simulate_traced(machine, launch, mode);
    let (ref_traced, ref_trace) = simulate_reference_traced(machine, launch, mode);
    assert_eq!(fast_traced, reference, "tracing perturbed the fast report");
    assert_eq!(ref_traced, reference, "tracing perturbed the reference");
    assert_eq!(
        fast_trace, ref_trace,
        "trace events diverged on {machine:?} mode {mode:?}"
    );
}

fn machine_for(idx: usize) -> MachineModel {
    match idx {
        0 => MachineModel::a100(),
        1 => MachineModel::h100(),
        _ => MachineModel::ascend910a(),
    }
}

fn mode_for(seed: Option<u64>) -> TimingMode {
    match seed {
        None => TimingMode::Evaluate,
        Some(seed) => TimingMode::Measure { seed },
    }
}

/// One randomly drawn task group: tile dims (x16), warps, pipeline
/// instances, task count (zero included: empty groups must be skipped
/// identically), and a placement stride for static machines.
type GroupDraw = ((usize, usize, usize), usize, usize, usize, usize);

fn group_strategy() -> impl Strategy<Value = GroupDraw> {
    (
        (1usize..8, 1usize..8, 1usize..8),
        prop::sample::select(vec![1usize, 2, 4, 8]),
        1usize..12,
        0usize..180,
        1usize..9,
    )
}

fn build_launch(
    machine: &MachineModel,
    draws: &[GroupDraw],
    static_placement: bool,
) -> Option<Launch> {
    let mut groups = Vec::with_capacity(draws.len());
    for &((a, b, c), warps, instances, count, stride) in draws {
        let shape = TaskShape::gemm_tile_f16(a * 16, b * 16, c * 16);
        if !shape.fits(machine) {
            return None;
        }
        let warps = warps.min(machine.warp_cap_per_pe);
        let spec = TaskSpec::new(shape, warps, instances);
        groups.push(if static_placement {
            let assignment = (0..count).map(|i| (i * stride) % machine.num_pes).collect();
            TaskGroup::with_assignment(spec, assignment)
        } else {
            TaskGroup::new(spec, count)
        });
    }
    Some(Launch::from_groups(groups))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dynamic (GPU) machines: random group mixes under every timing
    /// mode must be bit-identical between the two cores.
    #[test]
    fn dynamic_machines_are_bit_identical(
        machine_idx in prop::sample::select(vec![0usize, 1]),
        draws in prop::collection::vec(group_strategy(), 1..4),
        seed in prop::sample::select(vec![None, Some(0u64), Some(7), Some(0xDEAD_BEEF)]),
    ) {
        let machine = machine_for(machine_idx);
        let launch = build_launch(&machine, &draws, false);
        prop_assume!(launch.is_some());
        assert_equivalent(&machine, &launch.unwrap(), mode_for(seed));
    }

    /// Static (NPU) machines: compiler-assigned placements, including
    /// skewed strides that pile tasks onto few cores, must replay
    /// bit-identically through the per-PE FIFO path.
    #[test]
    fn static_machines_are_bit_identical(
        draws in prop::collection::vec(group_strategy(), 1..4),
        seed in prop::sample::select(vec![None, Some(3u64), Some(0xBEEF)]),
    ) {
        let machine = machine_for(2);
        let launch = build_launch(&machine, &draws, true);
        prop_assume!(launch.is_some());
        assert_equivalent(&machine, &launch.unwrap(), mode_for(seed));
    }

    /// Measurement noise is keyed per task index: distinct seeds must
    /// diverge somewhere while each seed stays internally bit-identical
    /// across both cores (guards against the fast core accidentally
    /// reusing one noise draw for a whole homogeneous group).
    #[test]
    fn measure_mode_noise_is_keyed_identically(
        draws in prop::collection::vec(group_strategy(), 1..3),
        seed in 1u64..1_000_000,
    ) {
        let machine = machine_for(0);
        let launch = build_launch(&machine, &draws, false);
        prop_assume!(launch.is_some());
        let launch = launch.unwrap();
        assert_equivalent(&machine, &launch, TimingMode::Measure { seed });
        let a = try_simulate(&machine, &launch, TimingMode::Measure { seed }).unwrap();
        let b = simulate_reference(&machine, &launch, TimingMode::Measure { seed: seed ^ 1 });
        prop_assume!(launch.grid_size() > 0);
        prop_assert!(
            (a.time_ns - b.time_ns).abs() > 0.0 || a == b,
            "degenerate comparison"
        );
    }
}

fn corpus(name: &str) -> Vec<FuzzCase> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(name);
    load_corpus(path).expect("corpus must parse")
}

/// Every committed corpus shape, compiled by the real two-stage
/// compiler, must produce device launches the fast core replays
/// bit-identically — the corpus half of the differential gate, run
/// under both Evaluate and Measure timing.
#[test]
fn fast_core_matches_reference_on_committed_corpora() {
    let env = ConformanceEnv::fast();
    let mut launches = 0usize;
    for name in ["pinned-shapes.json", "hard-shapes.json", "regressions.json"] {
        for case in &corpus(name) {
            let compiler = env.compiler_for(case);
            let program = compiler.compile(&case.op.operator());
            let machine = compiler.machine().clone();
            let mut device_launches = vec![compiler.launch_for(&program)];
            device_launches.extend(program.reduction_launch());
            for launch in &device_launches {
                for mode in [
                    TimingMode::Evaluate,
                    TimingMode::Measure {
                        seed: case.data_seed,
                    },
                ] {
                    assert_equivalent(&machine, launch, mode);
                    launches += 1;
                }
            }
        }
    }
    assert!(
        launches >= 2,
        "corpus produced no launches — the gate gated nothing"
    );
}

// ---- pinned regressions -------------------------------------------------
//
// Shrunk proptest counterexamples land here as explicit deterministic
// tests (the vendored proptest does not replay regression files). None
// have been found since the fast core landed; the seed corpus below
// pins the hand-derived hard cases from the core's own unit suite so
// this file exercises them even with proptest's RNG re-rolled.

/// Tail-wave + co-residency + empty-group mix on the A100, the shape
/// family most sensitive to admission order.
#[test]
fn pinned_mixed_groups_with_empty_group() {
    let machine = MachineModel::a100();
    let small = TaskSpec::new(TaskShape::gemm_tile_f16(32, 32, 32), 2, 3);
    let wide = TaskSpec::new(TaskShape::gemm_tile_f16(128, 96, 32), 8, 9);
    let launch = Launch::from_groups(vec![
        TaskGroup::new(wide, machine.num_pes + 1),
        TaskGroup::new(small, 0),
        TaskGroup::new(small, 513),
        TaskGroup::new(wide, 7),
    ]);
    for mode in [
        TimingMode::Evaluate,
        TimingMode::Measure { seed: 7 },
        TimingMode::Measure { seed: 0xDEAD },
    ] {
        assert_equivalent(&machine, &launch, mode);
    }
}

/// Reversed skewed static placement on the Ascend 910A: the per-PE FIFO
/// path with maximal head-of-line blocking.
#[test]
fn pinned_reversed_static_assignment() {
    let machine = MachineModel::ascend910a();
    let spec = TaskSpec::new(TaskShape::gemm_tile_f16(64, 64, 64), 1, 4);
    let assignment: Vec<usize> = (0..97).map(|i| machine.num_pes - 1 - (i % 8)).collect();
    let launch = Launch::from_groups(vec![TaskGroup::with_assignment(spec, assignment)]);
    for mode in [TimingMode::Evaluate, TimingMode::Measure { seed: 11 }] {
        assert_equivalent(&machine, &launch, mode);
    }
}
