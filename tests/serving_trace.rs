//! Acceptance: a telemetered BERT Poisson serving run exports a Chrome
//! trace-event file that parses as JSON, carries the
//! queue/compile(search, cache-wait)/device phase spans for every request
//! with correct nesting and lane placement, and a metrics snapshot whose
//! cache counters exactly mirror [`mikpoly::CacheStats`].

use std::sync::Arc;

use mikpoly_suite::accel_sim::{Cluster, Interconnect, MachineModel};
use mikpoly_suite::mikpoly::serving::poisson_arrivals;
use mikpoly_suite::mikpoly::{Engine, OfflineOptions, Request, ServingRuntime};
use mikpoly_suite::models::TransformerConfig;
use mikpoly_suite::telemetry::Telemetry;

#[test]
fn bert_poisson_stream_emits_valid_nested_trace() {
    let mut options = OfflineOptions::fast();
    options.n_gen = 4;
    let telemetry = Telemetry::enabled();
    let engine = Arc::new(Engine::offline_with_telemetry(
        MachineModel::a100(),
        &options,
        Arc::clone(&telemetry),
    ));

    // A Poisson stream of BERT forward passes at four sequence lengths.
    let bert = TransformerConfig::bert_base();
    let n = 24;
    let requests: Vec<Request> = poisson_arrivals(n, 50_000.0, 11)
        .into_iter()
        .enumerate()
        .map(|(id, arrival_ns)| Request {
            id,
            arrival_ns,
            ops: bert
                .graph(1, 16 * (1 + id % 4))
                .ops
                .iter()
                .map(|op| (op.operator, op.count))
                .collect(),
            deadline_ns: None,
            tenant: 0,
        })
        .collect();
    let cluster = Cluster::new(MachineModel::a100(), 2, Interconnect::nvlink3());
    let report = ServingRuntime::new(Arc::clone(&engine), cluster, 4).serve(&requests);
    assert_eq!(report.records.len(), n);

    // The metrics snapshot's cache counters equal the authoritative
    // CacheStats, field for field.
    let snap = telemetry.registry().snapshot();
    for (counter, expected) in [
        ("cache.hits", report.cache.hits),
        ("cache.misses", report.cache.misses),
        ("cache.computations", report.cache.computations),
        ("cache.coalesced_waits", report.cache.coalesced_waits),
        ("cache.entries", report.cache.entries),
        ("serving.requests", n as u64),
    ] {
        assert_eq!(
            snap.counter(counter),
            Some(expected),
            "registry counter '{counter}' out of sync with CacheStats"
        );
    }

    // The exported trace is valid JSON with the trace-event envelope.
    let json = telemetry.render_chrome_trace();
    let value: serde_json::Value = serde_json::from_str(&json).expect("trace must parse as JSON");
    let events = value
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");

    // Index the phase events per request.
    let arg_request = |event: &serde_json::Value| {
        event
            .get("args")
            .and_then(|a| a.get("request"))
            .and_then(|v| v.as_u64())
            .map(|v| v as usize)
    };
    let window = |event: &serde_json::Value| {
        let ts = event.get("ts").and_then(|v| v.as_f64()).expect("ts");
        let dur = event.get("dur").and_then(|v| v.as_f64()).unwrap_or(0.0);
        (ts, ts + dur)
    };
    let mut queue = vec![0usize; n];
    let mut request_windows: Vec<Option<(f64, f64)>> = vec![None; n];
    let mut compile_windows: Vec<Option<(f64, f64)>> = vec![None; n];
    let mut device = vec![0usize; n];
    let mut search_spans = 0usize;
    let mut wait_spans = 0usize;
    for event in events {
        let ph = event.get("ph").and_then(|v| v.as_str()).expect("ph");
        let name = event.get("name").and_then(|v| v.as_str()).expect("name");
        match (ph, name) {
            ("b", "serving.queue") => {
                let id = event.get("id").and_then(|v| v.as_u64()).expect("async id");
                queue[id as usize] += 1;
            }
            ("X", "serving.request") => {
                request_windows[arg_request(event).expect("request arg")] = Some(window(event));
            }
            ("X", "serving.compile") => {
                compile_windows[arg_request(event).expect("request arg")] = Some(window(event));
            }
            ("X", "serving.compile.search") => search_spans += 1,
            ("X", "serving.compile.wait") => wait_spans += 1,
            ("X", "serving.device") => {
                device[arg_request(event).expect("request arg")] += 1;
                // Device execution sits on a device lane of the
                // virtual-time process.
                assert_eq!(event.get("pid").and_then(|v| v.as_u64()), Some(1));
                assert!(event.get("tid").and_then(|v| v.as_u64()).expect("tid") >= 10_000);
            }
            _ => {}
        }
    }
    for id in 0..n {
        assert_eq!(queue[id], 1, "request {id}: missing queue phase");
        assert_eq!(device[id], 1, "request {id}: missing device phase");
        let (req_start, req_end) = request_windows[id].expect("request span");
        let (c_start, c_end) = compile_windows[id].expect("compile span");
        // The compile window nests inside the request window by time
        // containment (ts are microseconds; allow float slack).
        assert!(
            c_start >= req_start - 1e-6 && c_end <= req_end + 1e-6,
            "request {id}: compile [{c_start}, {c_end}] escapes request [{req_start}, {req_end}]"
        );
    }
    // Cold shapes were polymerized, so search sub-phases must appear, and
    // they never outnumber the per-request compile windows.
    assert!(search_spans > 0, "no serving.compile.search spans recorded");
    assert!(search_spans + wait_spans <= 2 * n);

    // The host (real-clock) side of the pipeline traced too: the offline
    // stage and one online.compile span per operator run.
    let count = |name: &str| {
        events
            .iter()
            .filter(|e| e.get("name").and_then(|v| v.as_str()) == Some(name))
            .count()
    };
    assert!(count("offline.generate") >= 1, "offline stage untraced");
    assert!(count("online.compile") > 0, "online compile path untraced");
    assert_eq!(
        count("online.search") as u64,
        report.cache.computations,
        "exactly one real search per polymerization"
    );
}

/// Every complete ('X') event on a lane must either be disjoint from or
/// strictly nested inside the spans around it — a partially-overlapping
/// pair renders as garbage in Perfetto, and async begin/end ('b'/'e')
/// pairs must balance per id. Validated on a real telemetered stream.
#[test]
fn chrome_trace_spans_nest_strictly_per_lane() {
    let mut options = OfflineOptions::fast();
    options.n_gen = 4;
    let telemetry = Telemetry::enabled();
    let engine = Arc::new(Engine::offline_with_telemetry(
        MachineModel::a100(),
        &options,
        Arc::clone(&telemetry),
    ));
    let bert = TransformerConfig::bert_base();
    let requests: Vec<Request> = poisson_arrivals(12, 40_000.0, 23)
        .into_iter()
        .enumerate()
        .map(|(id, arrival_ns)| Request {
            id,
            arrival_ns,
            ops: bert
                .graph(1, 16 * (1 + id % 3))
                .ops
                .iter()
                .map(|op| (op.operator, op.count))
                .collect(),
            deadline_ns: None,
            tenant: 0,
        })
        .collect();
    let cluster = Cluster::new(MachineModel::a100(), 2, Interconnect::nvlink3());
    ServingRuntime::new(Arc::clone(&engine), cluster, 3).serve(&requests);

    let json = telemetry.render_chrome_trace();
    let value: serde_json::Value = serde_json::from_str(&json).expect("trace must parse as JSON");
    let events = value
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Group complete events into per-lane interval lists and collect
    // async begin/end pairs.
    use std::collections::HashMap;
    let mut lanes: HashMap<(u64, u64), Vec<(f64, f64)>> = HashMap::new();
    let mut asyncs: HashMap<(String, u64), (usize, usize, f64, f64)> = HashMap::new();
    for event in events {
        let ph = event.get("ph").and_then(|v| v.as_str()).expect("ph");
        let pid = event.get("pid").and_then(|v| v.as_u64()).expect("pid");
        let tid = event.get("tid").and_then(|v| v.as_u64()).expect("tid");
        let ts = event.get("ts").and_then(|v| v.as_f64()).expect("ts");
        match ph {
            "X" => {
                let dur = event.get("dur").and_then(|v| v.as_f64()).expect("dur");
                assert!(dur >= 0.0, "negative duration at ts {ts}");
                lanes.entry((pid, tid)).or_default().push((ts, ts + dur));
            }
            "b" | "e" => {
                let name = event.get("name").and_then(|v| v.as_str()).expect("name");
                let id = event.get("id").and_then(|v| v.as_u64()).expect("async id");
                let slot = asyncs.entry((name.to_string(), id)).or_insert((
                    0,
                    0,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                ));
                if ph == "b" {
                    slot.0 += 1;
                    slot.2 = slot.2.min(ts);
                } else {
                    slot.1 += 1;
                    slot.3 = slot.3.max(ts);
                }
            }
            "M" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }

    // Async pairs balance, and every end is at or after its begin.
    assert!(!asyncs.is_empty(), "no async phase events recorded");
    for ((name, id), (begins, ends, first_b, last_e)) in &asyncs {
        assert_eq!(begins, ends, "unbalanced b/e for {name} id {id}");
        assert!(
            last_e >= first_b,
            "{name} id {id}: end {last_e} before begin {first_b}"
        );
    }

    // Strict nesting per lane: sweep intervals sorted by (start asc,
    // end desc); each span must close inside whatever span encloses it.
    const EPS: f64 = 1e-6; // trace timestamps are microseconds
    for ((pid, tid), mut spans) in lanes {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)));
        let mut stack: Vec<(f64, f64)> = Vec::new();
        for (start, end) in spans {
            while let Some(&(_, open_end)) = stack.last() {
                if open_end <= start + EPS {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(open_start, open_end)) = stack.last() {
                assert!(
                    end <= open_end + EPS,
                    "lane ({pid},{tid}): span [{start}, {end}] partially overlaps \
                     enclosing [{open_start}, {open_end}]"
                );
            }
            stack.push((start, end));
        }
    }
}
