//! Soak tier: sustained serving load over the event-driven simulator
//! core under a fault cocktail.
//!
//! Where `serving_chaos.rs` probes each failure path once, this test
//! keeps the runtime serving until a configured number of *simulated
//! device tasks* has flowed through the fast scheduler core, and holds
//! two invariants for the whole run:
//!
//! * **exhaustive disposition** (PR 5): every request ends in exactly
//!   one [`Disposition`], with a shed reason if and only if it was shed;
//! * **chain retention** (PR 7): every anomalous request (Shed or
//!   Failed) keeps a flight-recorder chain whose error matches the
//!   record's terminal label.
//!
//! The task budget is environment-tunable so CI stays fast while the
//! same binary can run a real soak:
//!
//! ```text
//! SIM_SOAK_TASKS=1000000 cargo test --release --test serving_soak
//! ```
//!
//! The default (no variable) is a small smoke budget; any unparsable
//! value falls back to the default rather than failing the run.

use std::sync::Arc;
use std::time::Duration;

use mikpoly_suite::accel_sim::{Cluster, FaultPlan, Interconnect, MachineModel};
use mikpoly_suite::mikpoly::{
    poisson_arrivals, BreakerPolicy, Disposition, Engine, OfflineOptions, Request, ServingOptions,
    ServingRuntime,
};
use mikpoly_suite::tensor_ir::{GemmShape, Operator};

/// Simulated-task budget: `SIM_SOAK_TASKS` if set and parsable, else a
/// CI-sized smoke budget.
fn task_budget() -> u64 {
    std::env::var("SIM_SOAK_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000)
}

fn shapes() -> Vec<GemmShape> {
    // A mix of wave-aligned, tail-heavy, and split-K-prone shapes so the
    // soak exercises homogeneous batch admission, tail waves, and
    // chained reduction launches.
    vec![
        GemmShape::new(1111, 999, 512),
        GemmShape::new(256, 256, 256),
        GemmShape::new(777, 512, 256),
        GemmShape::new(900, 300, 300),
        GemmShape::new(64, 64, 512),
        GemmShape::new(128, 1024, 64),
        GemmShape::new(511, 257, 96),
        GemmShape::new(320, 192, 128),
    ]
}

#[test]
fn soak_preserves_disposition_and_chain_retention_invariants() {
    let mut o = OfflineOptions::fast();
    o.n_gen = 4;
    let engine = Arc::new(Engine::offline(MachineModel::a100(), &o));
    let shapes = shapes();

    // Tasks each shape pushes through the simulator per executed
    // request: the device launch plus any split-K reduction launch.
    let tasks_per_shape: Vec<u64> = shapes
        .iter()
        .map(|&s| {
            let compiler = engine.gemm_compiler();
            let program = compiler.compile(&Operator::gemm(s));
            let mut tasks = compiler.launch_for(&program).grid_size() as u64;
            if let Some(reduction) = program.reduction_launch() {
                tasks += reduction.grid_size() as u64;
            }
            tasks
        })
        .collect();

    let cluster = Cluster::new(engine.machine().clone(), 2, Interconnect::nvlink3());
    let telemetry = mikpoly_suite::mikpoly::telemetry::Telemetry::enabled();
    let plan = FaultPlan {
        seed: 0x50A7,
        device_fault_rate: 0.02,
        search_stall_rate: 0.05,
        search_stall_ns: 100_000,
        cache_corrupt_rate: 0.05,
        compile_panic_rate: 0.03,
        panic_attempts: 2,
    };
    let runtime = ServingRuntime::new(Arc::clone(&engine), cluster, 4)
        .with_telemetry(Arc::clone(&telemetry))
        .with_options(ServingOptions {
            queue_capacity: Some(16),
            compile_budget: Some(Duration::from_millis(50)),
            breaker: Some(BreakerPolicy::default()),
            fault_plan: Some(Arc::new(plan)),
            ..ServingOptions::default()
        });

    let budget = task_budget();
    let batch_size = 64usize;
    let mut simulated_tasks = 0u64;
    let mut total_requests = 0usize;
    let mut total_anomalous = 0usize;
    let mut batch = 0u64;
    while simulated_tasks < budget {
        // Globally unique request ids so flight-recorder lookups across
        // batches can never alias.
        let base = total_requests;
        let requests: Vec<Request> = poisson_arrivals(batch_size, 15_000.0, 0x50A7 + batch)
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let shape = shapes[(base + i) % shapes.len()];
                Request::single(base + i, t, Operator::gemm(shape))
            })
            .collect();
        let report = runtime.serve(&requests);

        // PR 5 invariant: exactly one disposition per request, shed
        // reason iff shed, shed requests execute nothing.
        assert_eq!(report.records.len(), requests.len());
        let counts = report.dispositions();
        assert_eq!(counts.total(), requests.len(), "batch {batch}: {counts:?}");
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.id, base + i, "records out of id order in batch {batch}");
            assert_eq!(
                r.shed_reason.is_some(),
                r.disposition == Disposition::Shed,
                "shed reason iff shed: {r:?}"
            );
            if r.disposition == Disposition::Shed {
                assert!(!r.executed(), "shed requests consume nothing: {r:?}");
            }
            if r.executed() {
                simulated_tasks += tasks_per_shape[r.id % shapes.len()] * u64::from(1 + r.retries);
            }
        }

        // PR 7 invariant: anomalous requests keep their chains, and the
        // chain's error reproduces the record's terminal label.
        let recorder = telemetry.recorder();
        for r in &report.records {
            if matches!(r.disposition, Disposition::Shed | Disposition::Failed) {
                total_anomalous += 1;
                let chain = recorder.find(r.id as u64).unwrap_or_else(|| {
                    panic!(
                        "no retained chain for anomalous request {} in batch {batch}",
                        r.id
                    )
                });
                assert!(
                    chain.chain.disposition.is_anomalous(),
                    "request {} retained with a healthy disposition",
                    r.id
                );
                let want = mikpoly_suite::mikpoly::serving::record_error_label(r);
                assert_eq!(
                    chain.chain.error.as_deref(),
                    want,
                    "chain error for request {} disagrees with its record",
                    r.id
                );
            }
        }

        total_requests += requests.len();
        batch += 1;
    }

    assert!(
        simulated_tasks >= budget,
        "soak ended early: {simulated_tasks} of {budget} tasks"
    );
    // The cocktail was live: across the whole soak something degraded,
    // retried, or shed — otherwise the invariants were never stressed.
    let snap = telemetry.registry().snapshot();
    let degraded = snap.counter("serving.degraded").unwrap_or(0);
    let retried = snap.counter("serving.retried").unwrap_or(0);
    let shed = snap.counter("serving.shed").unwrap_or(0);
    assert!(
        degraded + retried + shed > 0,
        "fault cocktail had no observable effect over {total_requests} requests"
    );
    // Counter fidelity holds across the accumulated run.
    assert_eq!(
        snap.counter("serving.requests"),
        Some(total_requests as u64)
    );
    let _ = total_anomalous; // tracked for the panic messages above
}
