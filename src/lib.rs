//! # mikpoly-suite — umbrella crate for the MikPoly reproduction
//!
//! Re-exports the whole workspace under one roof so examples and
//! integration tests can write `use mikpoly_suite::...`. See the individual
//! crates for the real APIs:
//!
//! * [`accel_sim`] — the simulated A100 / Ascend 910A substrate;
//! * [`tensor_ir`] — shapes, operators, templates, reference semantics;
//! * [`mikpoly`] — the two-stage dynamic-shape compiler itself;
//! * [`baselines`] — vendor / CUTLASS / DietCode / Nimble comparators;
//! * [`models`] — the dynamic-shape model zoo;
//! * [`telemetry`] — spans, metrics, Chrome-trace / Prometheus exporters;
//! * [`workloads`] — the Table 3 / Table 4 shape suites.

#![forbid(unsafe_code)]

pub use accel_sim;
pub use mikpoly;
pub use mikpoly_baselines as baselines;
pub use mikpoly_models as models;
pub use mikpoly_telemetry as telemetry;
pub use mikpoly_workloads as workloads;
pub use tensor_ir;
