#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, and the full test suite.
#
# Everything runs offline against the vendored dependency stand-ins (see
# vendor/README.md); no network access is required or attempted.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --release --workspace"
cargo test -q --release --offline --workspace

echo "CI green."
