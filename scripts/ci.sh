#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, and the full test suite.
#
# Everything runs offline against the vendored dependency stand-ins (see
# vendor/README.md); no network access is required or attempted.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> guard: no build artifacts under version control"
if git ls-files --error-unmatch target >/dev/null 2>&1 || [ -n "$(git ls-files 'target/*')" ]; then
  echo "error: target/ is git-tracked; run 'git rm -r --cached target/'" >&2
  exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --release --workspace"
cargo test -q --release --offline --workspace

echo "==> smoke: mikpoly serve --trace-out / --metrics-out"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/mikpoly serve --requests 24 --workers 2 --devices 2 \
  --trace-out "$smoke_dir/trace.json" --metrics-out "$smoke_dir/metrics.txt"
# trace-stats parses the file with serde_json and exits non-zero on
# malformed JSON or a missing traceEvents array.
./target/release/mikpoly trace-stats "$smoke_dir/trace.json"
grep -q "^cache_hits " "$smoke_dir/metrics.txt" || {
  echo "error: metrics snapshot is missing cache counters" >&2
  exit 1
}

# Observability smoke: a deadline-starved serve must trip the SLO
# engine and auto-dump the flight-recorder blackbox, and the health
# subcommand must emit a JSON snapshot it has already self-validated
# against the serving report (it exits non-zero on malformed JSON or
# any disposition-count mismatch).
echo "==> observability smoke: serve --blackbox-out + mikpoly health --json"
./target/release/mikpoly serve --requests 24 --workers 2 --devices 2 \
  --deadline-us 1 --blackbox-out "$smoke_dir/blackbox.json"
test -s "$smoke_dir/blackbox.json" || {
  echo "error: SLO violation did not produce a blackbox dump" >&2
  exit 1
}
grep -q '"chains"' "$smoke_dir/blackbox.json" || {
  echo "error: blackbox dump carries no retained chains section" >&2
  exit 1
}
./target/release/mikpoly health --requests 32 --workers 2 --seed 7 \
  --fault-rate 0.1 --json > "$smoke_dir/health.json"
grep -q '"completed"' "$smoke_dir/health.json" || {
  echo "error: health snapshot is missing disposition counts" >&2
  exit 1
}

# Chaos smoke: fixed-seed fault injection (device faults, search stalls,
# compile panics, cache corruption) plus admission control; the binary
# exits non-zero if any request lacks exactly one terminal disposition.
echo "==> chaos smoke: mikpoly chaos (fixed seeds)"
./target/release/mikpoly chaos --requests 48 --workers 4 --seed 7 \
  --queue-capacity 8 --deadline-us 5000
./target/release/mikpoly chaos --requests 32 --workers 2 --seed 11 --fault-rate 0.1

# Cache smoke: Zipfian stress on the bounded program cache (exact-once
# computation, counter coherence, capacity bound — the binary exits
# non-zero on any invariant violation or a hit rate below floor), then
# the warm-restart gates: a 10k-program binary bundle must load inside
# 1 s, and a legacy JSON bundle must still round-trip through the new
# writer/loader pair.
echo "==> cache smoke: mikpoly cache-bench (stress + restart gates)"
./target/release/mikpoly cache-bench --threads 4 --ops 100000 --keys 2048 \
  --restart-entries 10000 --restart-budget-ms 1000

# Simulator throughput gate: the event-driven scheduler core must hold
# >= 10x the frozen reference loop (compiled via the `reference-sim`
# feature) and an absolute floor of 14M simulated tasks per host second
# — 10x the pre-rebuild scan-loop baseline. Records the measurement in
# results/sim-throughput.json; the run exits non-zero below either gate.
echo "==> sim-throughput gate (event core >= 10x reference, floor 14M tasks/s)"
./target/release/experiments sim-throughput

# Batched-serving gate: shape-bucketed continuous batching plus co-launch
# waves must beat solo dispatch under overload on both goodput and P99,
# and per-tenant waiting-slot quotas must isolate a flooding tenant (the
# victim tenant is served in full, the flood sheds as tenant-throttled).
# The experiment asserts its gates and exits non-zero on violation;
# records the measurement in results/batch-serving.json. Quick mode keeps
# the offline stage bounded — the serving timelines are virtual, so the
# gated ratios are the same regime CI measures on full runs.
echo "==> batch-serving gate (batched >= solo under overload + tenant isolation)"
./target/release/experiments --quick batch-serving

# Conformance: a bounded differential-fuzz smoke (fixed seed, well under
# 30 s in release) that replays the regression corpus first, then the
# cost-model-fidelity gate over the pinned shape corpus. Scale the fuzz
# case count with CONFORMANCE_CASES (e.g. a nightly might export 4096).
echo "==> conformance fuzz (seed 7, ${CONFORMANCE_CASES:-256} cases + regression corpus)"
CONFORMANCE_CASES="${CONFORMANCE_CASES:-256}" \
  ./target/release/conformance fuzz --seed 7 --corpus tests/corpus/regressions.json

echo "==> conformance gate (pinned corpus, p95 oracle gap <= 1.10)"
./target/release/conformance gate --corpus tests/corpus/pinned-shapes.json \
  --threshold 1.10 --out "$smoke_dir/oracle-gate.json"

# The "hard" tier: shapes whose gap sat at 1.2-1.5 before the
# occupancy-aware selection refinement; ratcheted to the same 1.10 now
# that the staged search closes them.
echo "==> conformance gate (hard corpus, p95 oracle gap <= 1.10)"
./target/release/conformance gate --corpus tests/corpus/hard-shapes.json \
  --threshold 1.10 --out "$smoke_dir/oracle-gate-hard.json"

# Crash matrix: the durable warm-state loader must never panic and must
# salvage exactly the valid record prefix — every-offset truncation plus
# fixed-seed bit flips and arbitrary-byte blobs (the binary exits
# non-zero on any violation).
echo "==> conformance crash (seed 7, truncation sweep + 128 flips + 128 blobs)"
./target/release/conformance crash --seed 7 --flips 128 --fuzz-blobs 128

# Durability smoke: serve with a live snapshotter and a mid-stream drain
# point, then restart against the snapshot directory. The first serve
# must commit a generation manifest; the second must restore it cleanly
# (the binary prints the restore report and exits non-zero if any
# request lacks exactly one terminal disposition).
echo "==> durability smoke: serve --snapshot-dir + --drain-after-us, then warm restart"
./target/release/mikpoly serve --requests 24 --workers 2 --devices 2 \
  --snapshot-dir "$smoke_dir/warm-state" --drain-after-us 400
test -f "$smoke_dir/warm-state/MANIFEST" || {
  echo "error: drain did not commit a generation manifest" >&2
  exit 1
}
./target/release/mikpoly serve --requests 24 --workers 2 --devices 2 \
  --snapshot-dir "$smoke_dir/warm-state" 2> "$smoke_dir/restore.txt"
grep -q "restore:" "$smoke_dir/restore.txt" || {
  echo "error: warm restart printed no restore report" >&2
  exit 1
}

echo "CI green."
