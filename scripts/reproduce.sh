#!/usr/bin/env bash
# Full reproduction pass: build, test, regenerate every table/figure, and
# run the micro-benchmarks. Artifacts land in results/ (CSV per experiment),
# test_output.txt and bench_output.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace --release 2>&1 | tee test_output.txt

echo "== experiments (full populations) =="
cargo run --release -p mikpoly-bench --bin experiments -- all
echo "== paper-shape guard =="
cargo run --release -p mikpoly-bench --bin experiments -- check

echo "== examples =="
for e in quickstart bert_serving detection_resolution llama_inference \
         npu_offload compiler_shootout inflight_batching engine_vit; do
  echo "-- example: $e --"
  cargo run --release --example "$e"
done

echo "== benches =="
cargo bench --workspace 2>&1 | tee bench_output.txt

echo "done: see results/, EXPERIMENTS.md, test_output.txt, bench_output.txt"
