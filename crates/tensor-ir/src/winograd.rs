//! Winograd `F(2x2, 3x3)` convolution — the paper's future-work item
//! ("we recognize the potential benefits of investigating other convolution
//! implementations, such as Winograd", Section 7), implemented here as an
//! extension.
//!
//! For a unit-stride 3x3 convolution, each 2x2 output tile is computed from
//! a 4x4 input patch with 16 multiplies instead of 36:
//!
//! ```text
//! Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A
//! ```
//!
//! with the classic transform matrices
//!
//! ```text
//! Bᵀ = [1  0 -1  0]      G = [ 1    0    0 ]     Aᵀ = [1 1  1  0]
//!      [0  1  1  0]          [ 1/2  1/2  1/2]          [0 1 -1 -1]
//!      [0 -1  1  0]          [ 1/2 -1/2  1/2]
//!      [0  1  0 -1]          [ 0    0    1 ]
//! ```
//!
//! Summing the element-wise products over input channels turns each of the
//! 16 transform-domain positions into an independent
//! `GEMM(tiles, out_channels, in_channels)` — which is how the Winograd
//! path feeds MikPoly's GEMM polymerizer.

use crate::shape::{Conv2dShape, GemmShape};
use crate::tensor::Tensor;

/// `Bᵀ d B` for a 4x4 patch `d` (input transform).
fn input_transform(d: &[[f32; 4]; 4]) -> [[f32; 4]; 4] {
    // Bᵀ d
    let mut tmp = [[0.0f32; 4]; 4];
    for j in 0..4 {
        tmp[0][j] = d[0][j] - d[2][j];
        tmp[1][j] = d[1][j] + d[2][j];
        tmp[2][j] = -d[1][j] + d[2][j];
        tmp[3][j] = d[1][j] - d[3][j];
    }
    // (Bᵀ d) B
    let mut out = [[0.0f32; 4]; 4];
    for i in 0..4 {
        out[i][0] = tmp[i][0] - tmp[i][2];
        out[i][1] = tmp[i][1] + tmp[i][2];
        out[i][2] = -tmp[i][1] + tmp[i][2];
        out[i][3] = tmp[i][1] - tmp[i][3];
    }
    out
}

/// `G g Gᵀ` for a 3x3 filter `g` (filter transform).
fn filter_transform(g: &[[f32; 3]; 3]) -> [[f32; 4]; 4] {
    // G g
    let mut tmp = [[0.0f32; 3]; 4];
    for j in 0..3 {
        tmp[0][j] = g[0][j];
        tmp[1][j] = 0.5 * (g[0][j] + g[1][j] + g[2][j]);
        tmp[2][j] = 0.5 * (g[0][j] - g[1][j] + g[2][j]);
        tmp[3][j] = g[2][j];
    }
    // (G g) Gᵀ
    let mut out = [[0.0f32; 4]; 4];
    for i in 0..4 {
        out[i][0] = tmp[i][0];
        out[i][1] = 0.5 * (tmp[i][0] + tmp[i][1] + tmp[i][2]);
        out[i][2] = 0.5 * (tmp[i][0] - tmp[i][1] + tmp[i][2]);
        out[i][3] = tmp[i][2];
    }
    out
}

/// `Aᵀ m A` for a 4x4 transform-domain accumulator (output transform).
fn output_transform(m: &[[f32; 4]; 4]) -> [[f32; 2]; 2] {
    let mut tmp = [[0.0f32; 4]; 2];
    for j in 0..4 {
        tmp[0][j] = m[0][j] + m[1][j] + m[2][j];
        tmp[1][j] = m[1][j] - m[2][j] - m[3][j];
    }
    let mut out = [[0.0f32; 2]; 2];
    for i in 0..2 {
        out[i][0] = tmp[i][0] + tmp[i][1] + tmp[i][2];
        out[i][1] = tmp[i][1] - tmp[i][2] - tmp[i][3];
    }
    out
}

/// Whether a convolution is eligible for the `F(2x2, 3x3)` path.
pub fn winograd_applicable(shape: &Conv2dShape) -> bool {
    shape.kernel_h == 3 && shape.kernel_w == 3 && shape.stride == 1
}

/// Number of 2x2 output tiles per image.
fn tiles_per_image(shape: &Conv2dShape) -> (usize, usize) {
    (shape.out_h().div_ceil(2), shape.out_w().div_ceil(2))
}

/// The transform-domain GEMM shape of the Winograd path: each of the 16
/// positions runs `GEMM(batch · tiles, out_channels, in_channels)`; the
/// flattened iteration space stacks them along `M`.
///
/// # Panics
///
/// Panics if the shape is not a unit-stride 3x3 convolution.
pub fn winograd_gemm_shape(shape: &Conv2dShape) -> GemmShape {
    assert!(
        winograd_applicable(shape),
        "Winograd F(2x2, 3x3) requires a 3x3 filter with stride 1, got {shape}"
    );
    let (th, tw) = tiles_per_image(shape);
    GemmShape::new(
        16 * shape.batch * th * tw,
        shape.out_channels,
        shape.in_channels,
    )
}

/// Reference Winograd `F(2x2, 3x3)` convolution in NCHW / OIHW layout.
///
/// Produces the same values as [`crate::reference_conv2d`] (up to fp32
/// rounding) via the transform-domain route: the test suite checks the
/// equivalence, which is what justifies routing Winograd through the GEMM
/// polymerizer.
///
/// # Panics
///
/// Panics if the shape is not a unit-stride 3x3 convolution or operands
/// mismatch.
pub fn winograd_conv2d(shape: Conv2dShape, input: &Tensor, filter: &Tensor) -> Tensor {
    assert!(
        winograd_applicable(&shape),
        "not a Winograd-eligible shape: {shape}"
    );

    assert_eq!(
        input.dims(),
        &[shape.batch, shape.in_channels, shape.height, shape.width],
        "input must be NCHW"
    );
    assert_eq!(
        filter.dims(),
        &[shape.out_channels, shape.in_channels, 3, 3],
        "filter must be OIHW 3x3"
    );
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let (th, tw) = tiles_per_image(&shape);
    let pad = shape.padding as isize;
    let in_data = input.as_slice();
    let f_data = filter.as_slice();

    // Pre-transform all filters: u[oc][ic] is a 4x4 matrix.
    let mut u = vec![[[0.0f32; 4]; 4]; shape.out_channels * shape.in_channels];
    for oc in 0..shape.out_channels {
        for ic in 0..shape.in_channels {
            let base = (oc * shape.in_channels + ic) * 9;
            let mut g = [[0.0f32; 3]; 3];
            for r in 0..3 {
                for c in 0..3 {
                    g[r][c] = f_data[base + r * 3 + c];
                }
            }
            u[oc * shape.in_channels + ic] = filter_transform(&g);
        }
    }

    let mut out = Tensor::zeros(&[shape.batch, shape.out_channels, oh, ow]);
    let out_data = out.as_mut_slice();
    let istride_c = shape.height * shape.width;
    let istride_n = shape.in_channels * istride_c;

    for n in 0..shape.batch {
        for ty in 0..th {
            for tx in 0..tw {
                // Input transforms for this tile across channels.
                let mut v = vec![[[0.0f32; 4]; 4]; shape.in_channels];
                for (ic, vc) in v.iter_mut().enumerate() {
                    let mut d = [[0.0f32; 4]; 4];
                    for (r, drow) in d.iter_mut().enumerate() {
                        for (c, dv) in drow.iter_mut().enumerate() {
                            let iy = (2 * ty + r) as isize - pad;
                            let ix = (2 * tx + c) as isize - pad;
                            *dv = if iy < 0
                                || iy >= shape.height as isize
                                || ix < 0
                                || ix >= shape.width as isize
                            {
                                0.0
                            } else {
                                in_data[n * istride_n
                                    + ic * istride_c
                                    + iy as usize * shape.width
                                    + ix as usize]
                            };
                        }
                    }
                    *vc = input_transform(&d);
                }
                for oc in 0..shape.out_channels {
                    // Transform-domain accumulation: 16 multiplies per
                    // input channel.
                    let mut m = [[0.0f32; 4]; 4];
                    for (ic, vc) in v.iter().enumerate() {
                        let uf = &u[oc * shape.in_channels + ic];
                        for r in 0..4 {
                            for c in 0..4 {
                                m[r][c] += uf[r][c] * vc[r][c];
                            }
                        }
                    }
                    let y = output_transform(&m);
                    for (r, yrow) in y.iter().enumerate() {
                        for (c, &yv) in yrow.iter().enumerate() {
                            let (oy, ox) = (2 * ty + r, 2 * tx + c);
                            if oy < oh && ox < ow {
                                out_data[((n * shape.out_channels + oc) * oh + oy) * ow + ox] = yv;
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::reference_conv2d;

    #[test]
    fn winograd_matches_direct_convolution() {
        for (b, ic, hw, oc, pad) in [
            (1usize, 1usize, 8usize, 1usize, 1usize),
            (2, 3, 10, 4, 1),
            (1, 5, 7, 3, 0),
        ] {
            let shape = Conv2dShape::new(b, ic, hw, hw, oc, 3, 3, 1, pad);
            let input = Tensor::random(&[b, ic, hw, hw], 51);
            let filter = Tensor::random(&[oc, ic, 3, 3], 52);
            let direct = reference_conv2d(shape, &input, &filter);
            let wino = winograd_conv2d(shape, &input, &filter);
            assert!(
                wino.approx_eq(&direct, 1e-3),
                "{shape}: max diff {}",
                wino.max_abs_diff(&direct)
            );
        }
    }

    #[test]
    fn gemm_shape_counts_16_positions() {
        let shape = Conv2dShape::square(2, 64, 56, 128, 3, 1);
        let g = winograd_gemm_shape(&shape);
        // 56x56 output -> 28x28 tiles per image.
        assert_eq!(g.m, 16 * 2 * 28 * 28);
        assert_eq!(g.n, 128);
        assert_eq!(g.k, 64);
    }

    #[test]
    fn winograd_uses_2_25x_fewer_gemm_flops() {
        let shape = Conv2dShape::square(1, 64, 56, 64, 3, 1);
        let direct = shape.flops();
        let wino = winograd_gemm_shape(&shape).flops();
        let ratio = direct / wino;
        assert!((2.0..2.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn applicability_is_3x3_stride_1_only() {
        assert!(winograd_applicable(&Conv2dShape::square(1, 8, 16, 8, 3, 1)));
        assert!(!winograd_applicable(&Conv2dShape::square(
            1, 8, 16, 8, 3, 2
        )));
        assert!(!winograd_applicable(&Conv2dShape::square(
            1, 8, 16, 8, 5, 1
        )));
    }

    #[test]
    #[should_panic(expected = "Winograd F(2x2, 3x3) requires")]
    fn gemm_shape_rejects_ineligible_filters() {
        let _ = winograd_gemm_shape(&Conv2dShape::square(1, 8, 16, 8, 5, 1));
    }

    #[test]
    fn odd_output_sizes_are_handled_by_tile_clipping() {
        let shape = Conv2dShape::new(1, 2, 9, 9, 2, 3, 3, 1, 1);
        assert_eq!(shape.out_h(), 9); // odd
        let input = Tensor::random(&[1, 2, 9, 9], 61);
        let filter = Tensor::random(&[2, 2, 3, 3], 62);
        let direct = reference_conv2d(shape, &input, &filter);
        let wino = winograd_conv2d(shape, &input, &filter);
        assert!(wino.approx_eq(&direct, 1e-3));
    }
}
