//! Two-stage program templates (Fig. 3 of the paper).
//!
//! A tiled program template `Q` for a tensor operator is split into
//! `Q_offline` — the innermost loops, sized to exploit `M_local`, which
//! together form the *micro-kernel template* `K̃` — and `Q_online` — the
//! surrounding loops, restructured at runtime by polymerization. The
//! rendering produced by [`TwoStageTemplate`]'s `Display` mirrors the
//! paper's figure:
//!
//! ```text
//! // online loops (polymerized at runtime)
//! for m1 in 0..ceil(M / uM):            // parallel
//!   for n1 in 0..ceil(N / uN):          // parallel
//!     for k1 in 0..ceil(K / uK):        // reduction, pipelined
//!       // offline loops (micro-kernel template K~)
//!       micro_kernel(uM, uN, uK)
//! ```

use serde::{Deserialize, Serialize};

/// An iteration axis of a GEMM-shaped operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// Output rows (parallel).
    M,
    /// Output columns (parallel).
    N,
    /// Reduction depth (sequential, pipelined on one PE).
    K,
}

impl Axis {
    /// Whether iterations along this axis can execute in parallel on
    /// different PEs.
    pub fn is_parallel(self) -> bool {
        !matches!(self, Axis::K)
    }

    /// The conventional tile-parameter name (`uM`, `uN`, `uK`).
    pub fn tile_param(self) -> &'static str {
        match self {
            Axis::M => "uM",
            Axis::N => "uN",
            Axis::K => "uK",
        }
    }

    /// The conventional extent name (`M`, `N`, `K`).
    pub fn extent_name(self) -> &'static str {
        match self {
            Axis::M => "M",
            Axis::N => "N",
            Axis::K => "K",
        }
    }
}

/// The extent of a loop in a template.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Extent {
    /// Known at template-construction time.
    Static(usize),
    /// A runtime-determined dimension (dynamic shape), e.g. the sequence
    /// length in BERT.
    Dynamic(String),
    /// A tile-size parameter fixed per micro-kernel in the offline stage.
    TileParam(String),
}

impl std::fmt::Display for Extent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Extent::Static(v) => write!(f, "{v}"),
            Extent::Dynamic(name) => write!(f, "{name}*"),
            Extent::TileParam(name) => write!(f, "{name}"),
        }
    }
}

/// One loop of a template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Loop {
    /// The axis this loop iterates.
    pub axis: Axis,
    /// Its extent.
    pub extent: Extent,
}

/// The micro-kernel template `K̃`: the offline loops of `Q`, parameterized
/// by tile sizes `(uM, uN, uK)` and optimized for `M_local`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroKernelTemplate {
    /// The offline loops, innermost last.
    pub loops: Vec<Loop>,
}

impl MicroKernelTemplate {
    /// The GEMM micro-kernel template: `uM x uN x uK` offline loops.
    pub fn gemm() -> Self {
        Self {
            loops: [Axis::M, Axis::N, Axis::K]
                .into_iter()
                .map(|axis| Loop {
                    axis,
                    extent: Extent::TileParam(axis.tile_param().to_string()),
                })
                .collect(),
        }
    }

    /// The tile-parameter names, in loop order.
    pub fn params(&self) -> Vec<&str> {
        self.loops
            .iter()
            .filter_map(|l| match &l.extent {
                Extent::TileParam(name) => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }
}

impl std::fmt::Display for MicroKernelTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "micro_kernel(")?;
        for (i, l) in self.loops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", l.extent)?;
        }
        write!(f, ")")
    }
}

/// A two-stage program template `Q = Q_online ∘ Q_offline`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoStageTemplate {
    /// Operator name (e.g. `"gemm"`).
    pub operator: String,
    /// The online loops, outermost first; restructured at runtime by
    /// polymerization.
    pub online: Vec<Loop>,
    /// The offline loops: the micro-kernel template.
    pub offline: MicroKernelTemplate,
}

impl TwoStageTemplate {
    /// The two-stage GEMM template of Fig. 3 with dynamic `M`, `N`, `K`.
    pub fn gemm() -> Self {
        Self {
            operator: "gemm".to_string(),
            online: [Axis::M, Axis::N, Axis::K]
                .into_iter()
                .map(|axis| Loop {
                    axis,
                    extent: Extent::Dynamic(axis.extent_name().to_string()),
                })
                .collect(),
            offline: MicroKernelTemplate::gemm(),
        }
    }

    /// The GEMM template with some dimensions statically known (e.g. the
    /// weight-defined `N`, `K` of a linear layer whose `M` is the dynamic
    /// sequence length).
    pub fn gemm_with_static(n: Option<usize>, k: Option<usize>) -> Self {
        let mut t = Self::gemm();
        for l in &mut t.online {
            match l.axis {
                Axis::N => {
                    if let Some(v) = n {
                        l.extent = Extent::Static(v);
                    }
                }
                Axis::K => {
                    if let Some(v) = k {
                        l.extent = Extent::Static(v);
                    }
                }
                Axis::M => {}
            }
        }
        t
    }

    /// The axes whose extents are dynamic.
    pub fn dynamic_axes(&self) -> Vec<Axis> {
        self.online
            .iter()
            .filter(|l| matches!(l.extent, Extent::Dynamic(_)))
            .map(|l| l.axis)
            .collect()
    }
}

impl std::fmt::Display for TwoStageTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "// two-stage template: {}", self.operator)?;
        writeln!(f, "// online loops (polymerized at runtime)")?;
        let mut indent = String::new();
        for l in &self.online {
            let role = if l.axis.is_parallel() {
                "parallel"
            } else {
                "reduction, pipelined"
            };
            writeln!(
                f,
                "{indent}for {}1 in 0..ceil({} / {}):  // {role}",
                l.axis.extent_name().to_lowercase(),
                l.extent,
                l.axis.tile_param()
            )?;
            indent.push_str("  ");
        }
        writeln!(f, "{indent}// offline loops (micro-kernel template K~)")?;
        write!(f, "{indent}{}", self.offline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_template_has_three_dynamic_axes() {
        let t = TwoStageTemplate::gemm();
        assert_eq!(t.dynamic_axes(), vec![Axis::M, Axis::N, Axis::K]);
    }

    #[test]
    fn static_dims_are_not_dynamic() {
        let t = TwoStageTemplate::gemm_with_static(Some(1024), Some(4096));
        assert_eq!(t.dynamic_axes(), vec![Axis::M]);
    }

    #[test]
    fn micro_kernel_params_in_order() {
        let k = MicroKernelTemplate::gemm();
        assert_eq!(k.params(), vec!["uM", "uN", "uK"]);
    }

    #[test]
    fn rendering_mentions_both_stages() {
        let s = TwoStageTemplate::gemm().to_string();
        assert!(s.contains("online loops"));
        assert!(s.contains("micro-kernel template"));
        assert!(s.contains("micro_kernel(uM, uN, uK)"));
        assert!(s.contains("reduction, pipelined"));
    }

    #[test]
    fn k_axis_is_not_parallel() {
        assert!(Axis::M.is_parallel());
        assert!(Axis::N.is_parallel());
        assert!(!Axis::K.is_parallel());
    }
}
