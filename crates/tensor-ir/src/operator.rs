//! Dynamic-shape tensor operators.

use serde::{Deserialize, Serialize};

use crate::dtype::DType;
use crate::shape::{Conv2dShape, GemmShape};

/// A tensor operator whose shape becomes known at runtime.
///
/// Every operator the MikPoly pipeline optimizes reduces to a GEMM-shaped
/// iteration space via [`Operator::gemm_view`]: convolutions take the
/// implicit-GEMM (im2col) route the paper's implementation uses, and batched
/// GEMMs (attention) flatten the batch into the row dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operator {
    /// Plain matrix multiplication.
    Gemm {
        /// Problem shape.
        shape: GemmShape,
        /// Element type of the operands.
        dtype: DType,
    },
    /// Batched matrix multiplication (e.g. attention score/context GEMMs).
    BatchedGemm {
        /// Number of independent GEMMs.
        batch: usize,
        /// Per-instance problem shape.
        shape: GemmShape,
        /// Element type of the operands.
        dtype: DType,
    },
    /// 2-D convolution, lowered to implicit GEMM.
    Conv2d {
        /// Problem shape.
        shape: Conv2dShape,
        /// Element type of the operands.
        dtype: DType,
    },
    /// 2-D convolution through the Winograd `F(2x2, 3x3)` transform domain
    /// (extension; the paper's Section 7 future-work item). Only valid for
    /// unit-stride 3x3 filters.
    Conv2dWinograd {
        /// Problem shape.
        shape: Conv2dShape,
        /// Element type of the operands.
        dtype: DType,
    },
}

/// The GEMM-shaped view of an operator: the iteration space handed to the
/// polymerizer, plus the extra global-load traffic its data access pattern
/// incurs relative to a plain GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GemmView {
    /// Flattened `M x N x K` iteration space.
    pub shape: GemmShape,
    /// Element type.
    pub dtype: DType,
    /// Multiplier on operand load traffic (1.0 for GEMM; > 1 for the im2col
    /// gather of dense convolution filters).
    pub load_scale: f64,
}

impl Operator {
    /// An fp16 GEMM operator.
    pub fn gemm(shape: GemmShape) -> Self {
        Operator::Gemm {
            shape,
            dtype: DType::F16,
        }
    }

    /// An fp16 batched GEMM operator.
    pub fn batched_gemm(batch: usize, shape: GemmShape) -> Self {
        assert!(batch > 0, "batch must be positive");
        Operator::BatchedGemm {
            batch,
            shape,
            dtype: DType::F16,
        }
    }

    /// An fp16 convolution operator.
    pub fn conv2d(shape: Conv2dShape) -> Self {
        Operator::Conv2d {
            shape,
            dtype: DType::F16,
        }
    }

    /// An fp16 Winograd-path convolution operator.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not a unit-stride 3x3 convolution.
    pub fn conv2d_winograd(shape: Conv2dShape) -> Self {
        assert!(
            crate::winograd::winograd_applicable(&shape),
            "Winograd F(2x2, 3x3) requires a 3x3 filter with stride 1, got {shape}"
        );
        Operator::Conv2dWinograd {
            shape,
            dtype: DType::F16,
        }
    }

    /// The element type of the operator's inputs.
    pub fn dtype(&self) -> DType {
        match *self {
            Operator::Gemm { dtype, .. }
            | Operator::BatchedGemm { dtype, .. }
            | Operator::Conv2d { dtype, .. }
            | Operator::Conv2dWinograd { dtype, .. } => dtype,
        }
    }

    /// Total floating-point work.
    pub fn flops(&self) -> f64 {
        match *self {
            Operator::Gemm { shape, .. } => shape.flops(),
            Operator::BatchedGemm { batch, shape, .. } => batch as f64 * shape.flops(),
            Operator::Conv2d { shape, .. } => shape.flops(),
            // The transform-domain GEMMs do 16/36 of the direct multiplies.
            Operator::Conv2dWinograd { shape, .. } => {
                crate::winograd::winograd_gemm_shape(&shape).flops()
            }
        }
    }

    /// The flattened GEMM iteration space the polymerizer optimizes.
    pub fn gemm_view(&self) -> GemmView {
        match *self {
            Operator::Gemm { shape, dtype } => GemmView {
                shape,
                dtype,
                load_scale: 1.0,
            },
            Operator::BatchedGemm {
                batch,
                shape,
                dtype,
            } => GemmView {
                shape: GemmShape::new(batch * shape.m, shape.n, shape.k),
                dtype,
                load_scale: 1.0,
            },
            Operator::Conv2d { shape, dtype } => GemmView {
                shape: shape.as_gemm(),
                dtype,
                load_scale: shape.gather_load_scale(),
            },
            Operator::Conv2dWinograd { shape, dtype } => GemmView {
                shape: crate::winograd::winograd_gemm_shape(&shape),
                dtype,
                // The 4x4 transform domain is 4x larger than the 2x2 output
                // tiles it produces, and patches overlap: the GEMM stage
                // reads roughly twice the traffic of an equal-FLOP plain
                // GEMM.
                load_scale: 2.0,
            },
        }
    }

    /// A short kind label ("gemm", "batched-gemm", "conv2d").
    pub fn kind(&self) -> &'static str {
        match self {
            Operator::Gemm { .. } => "gemm",
            Operator::BatchedGemm { .. } => "batched-gemm",
            Operator::Conv2d { .. } => "conv2d",
            Operator::Conv2dWinograd { .. } => "conv2d-winograd",
        }
    }
}

impl std::fmt::Display for Operator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Operator::Gemm { shape, dtype } => write!(f, "gemm{shape} {dtype}"),
            Operator::BatchedGemm {
                batch,
                shape,
                dtype,
            } => {
                write!(f, "bgemm[{batch}]{shape} {dtype}")
            }
            Operator::Conv2d { shape, dtype } => write!(f, "{shape} {dtype}"),
            Operator::Conv2dWinograd { shape, dtype } => {
                write!(f, "winograd-{shape} {dtype}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_view_of_gemm_is_identity() {
        let op = Operator::gemm(GemmShape::new(128, 256, 64));
        let v = op.gemm_view();
        assert_eq!(v.shape, GemmShape::new(128, 256, 64));
        assert_eq!(v.load_scale, 1.0);
    }

    #[test]
    fn batched_gemm_flattens_batch_into_rows() {
        let op = Operator::batched_gemm(12, GemmShape::new(128, 128, 64));
        assert_eq!(op.gemm_view().shape.m, 12 * 128);
        assert_eq!(op.flops(), 12.0 * 2.0 * 128.0 * 128.0 * 64.0);
    }

    #[test]
    fn conv_view_matches_im2col_dims() {
        let c = Conv2dShape::square(4, 64, 56, 128, 3, 1);
        let op = Operator::conv2d(c);
        assert_eq!(op.gemm_view().shape, c.as_gemm());
        assert!(op.gemm_view().load_scale > 1.0);
        assert_eq!(op.flops(), c.flops());
    }

    #[test]
    fn kind_labels() {
        assert_eq!(Operator::gemm(GemmShape::new(1, 1, 1)).kind(), "gemm");
        assert_eq!(
            Operator::conv2d(Conv2dShape::square(1, 1, 8, 1, 1, 1)).kind(),
            "conv2d"
        );
    }

    #[test]
    fn display_is_compact() {
        let op = Operator::gemm(GemmShape::new(105, 1024, 12544));
        assert_eq!(op.to_string(), "gemm(105, 1024, 12544) f16");
    }
}
