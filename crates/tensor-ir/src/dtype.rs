//! Element data types.

use serde::{Deserialize, Serialize};

/// Element type of operator inputs/outputs.
///
/// The paper's evaluation runs fp16 inputs with fp32 accumulation on both
/// platforms; the other types exist so shape suites and cost accounting can
/// express mixed-precision workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DType {
    /// IEEE 754 half precision.
    #[default]
    F16,
    /// bfloat16.
    Bf16,
    /// IEEE 754 single precision.
    F32,
    /// 8-bit signed integer.
    I8,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            DType::F16 | DType::Bf16 => 2,
            DType::F32 => 4,
            DType::I8 => 1,
        }
    }

    /// Accumulator type conventionally paired with this input type.
    pub const fn accumulator(self) -> DType {
        match self {
            DType::F16 | DType::Bf16 | DType::F32 => DType::F32,
            DType::I8 => DType::F32,
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DType::F16 => "f16",
            DType::Bf16 => "bf16",
            DType::F32 => "f32",
            DType::I8 => "i8",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_widths() {
        assert_eq!(DType::F16.bytes(), 2);
        assert_eq!(DType::Bf16.bytes(), 2);
        assert_eq!(DType::F32.bytes(), 4);
        assert_eq!(DType::I8.bytes(), 1);
    }

    #[test]
    fn accumulators_are_wide() {
        for d in [DType::F16, DType::Bf16, DType::F32, DType::I8] {
            assert!(d.accumulator().bytes() >= d.bytes().min(4));
        }
    }

    #[test]
    fn display_round_trips_names() {
        assert_eq!(DType::F16.to_string(), "f16");
        assert_eq!(DType::I8.to_string(), "i8");
    }
}
