//! Operator shapes.

use serde::{Deserialize, Serialize};

/// The shape of a GEMM `C[M,N] += A[M,K] * B[K,N]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub struct GemmShape {
    /// Rows of `A` and `C`.
    pub m: usize,
    /// Columns of `B` and `C`.
    pub n: usize,
    /// Reduction extent.
    pub k: usize,
}

impl GemmShape {
    /// Creates a GEMM shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "GEMM dimensions must be positive");
        Self { m, n, k }
    }

    /// Floating-point operations (multiply + add counted separately).
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Minimum global-memory traffic in elements (read `A`, `B`; write `C`).
    pub fn min_traffic_elems(&self) -> f64 {
        (self.m * self.k + self.k * self.n + self.m * self.n) as f64
    }

    /// Arithmetic intensity in FLOPs per element of compulsory traffic.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops() / self.min_traffic_elems()
    }
}

impl std::fmt::Display for GemmShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.m, self.n, self.k)
    }
}

/// The shape of a 2-D convolution in NCHW layout with an OIHW filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dShape {
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Filter height.
    pub kernel_h: usize,
    /// Filter width.
    pub kernel_w: usize,
    /// Stride (same in both spatial dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Conv2dShape {
    /// Creates a convolution shape.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero, if the stride is zero, or if the
    /// padded input is smaller than the filter.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        batch: usize,
        in_channels: usize,
        height: usize,
        width: usize,
        out_channels: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(
            batch > 0 && in_channels > 0 && height > 0 && width > 0 && out_channels > 0,
            "convolution extents must be positive"
        );
        assert!(
            kernel_h > 0 && kernel_w > 0 && stride > 0,
            "filter and stride must be positive"
        );
        assert!(
            height + 2 * padding >= kernel_h && width + 2 * padding >= kernel_w,
            "padded input must be at least as large as the filter"
        );
        Self {
            batch,
            in_channels,
            height,
            width,
            out_channels,
            kernel_h,
            kernel_w,
            stride,
            padding,
        }
    }

    /// A square-filter convolution with "same"-style padding `k/2`.
    pub fn square(
        batch: usize,
        in_channels: usize,
        resolution: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
    ) -> Self {
        Self::new(
            batch,
            in_channels,
            resolution,
            resolution,
            out_channels,
            kernel,
            kernel,
            stride,
            kernel / 2,
        )
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.height + 2 * self.padding - self.kernel_h) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.width + 2 * self.padding - self.kernel_w) / self.stride + 1
    }

    /// The implicit-GEMM (im2col) view of this convolution:
    /// `M = batch * out_h * out_w`, `N = out_channels`,
    /// `K = in_channels * kernel_h * kernel_w`.
    pub fn as_gemm(&self) -> GemmShape {
        GemmShape::new(
            self.batch * self.out_h() * self.out_w(),
            self.out_channels,
            self.in_channels * self.kernel_h * self.kernel_w,
        )
    }

    /// Floating-point operations of the convolution.
    pub fn flops(&self) -> f64 {
        self.as_gemm().flops()
    }

    /// How much more input data the im2col gather touches than a plain GEMM
    /// operand of the same `M x K` extent would: overlapping receptive
    /// fields are re-read, but strided/pointwise filters read each input
    /// element at most once per covering filter tap.
    pub fn gather_load_scale(&self) -> f64 {
        let taps = (self.kernel_h * self.kernel_w) as f64;
        let stride2 = (self.stride * self.stride) as f64;
        // Fraction of filter taps that fall on distinct input elements.
        1.0 + 0.25 * ((taps / stride2).min(taps) - 1.0).max(0.0).sqrt()
    }
}

impl std::fmt::Display for Conv2dShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conv(n={}, c={}, {}x{}, oc={}, f={}x{}, s={}, p={})",
            self.batch,
            self.in_channels,
            self.height,
            self.width,
            self.out_channels,
            self.kernel_h,
            self.kernel_w,
            self.stride,
            self.padding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flops() {
        let s = GemmShape::new(4096, 1024, 4096);
        assert_eq!(s.flops(), 2.0 * 4096.0 * 1024.0 * 4096.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_gemm_dim_rejected() {
        let _ = GemmShape::new(0, 4, 4);
    }

    #[test]
    fn arithmetic_intensity_grows_with_size() {
        let small = GemmShape::new(64, 64, 64);
        let large = GemmShape::new(1024, 1024, 1024);
        assert!(large.arithmetic_intensity() > small.arithmetic_intensity());
    }

    #[test]
    fn conv_output_dims() {
        // ResNet stem: 7x7/2 on 224x224 with pad 3 -> 112x112.
        let c = Conv2dShape::new(1, 3, 224, 224, 64, 7, 7, 2, 3);
        assert_eq!(c.out_h(), 112);
        assert_eq!(c.out_w(), 112);
    }

    #[test]
    fn conv_as_gemm_dims() {
        let c = Conv2dShape::new(2, 16, 16, 16, 32, 3, 3, 1, 1);
        let g = c.as_gemm();
        assert_eq!(g.m, 2 * 16 * 16);
        assert_eq!(g.n, 32);
        assert_eq!(g.k, 16 * 9);
    }

    #[test]
    fn pointwise_conv_has_no_gather_overhead() {
        let c = Conv2dShape::new(1, 64, 14, 14, 128, 1, 1, 1, 0);
        assert!((c.gather_load_scale() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dense_filters_pay_gather_overhead() {
        let c3 = Conv2dShape::square(1, 64, 56, 64, 3, 1);
        let c7 = Conv2dShape::square(1, 3, 224, 64, 7, 2);
        assert!(c3.gather_load_scale() > 1.0);
        assert!(c7.gather_load_scale() > c3.gather_load_scale() * 0.5);
    }

    #[test]
    #[should_panic(expected = "at least as large as the filter")]
    fn filter_larger_than_input_rejected() {
        let _ = Conv2dShape::new(1, 3, 4, 4, 8, 11, 11, 1, 0);
    }

    #[test]
    fn square_helper_uses_same_padding() {
        let c = Conv2dShape::square(1, 8, 32, 16, 3, 1);
        assert_eq!(c.padding, 1);
        assert_eq!(c.out_h(), 32);
    }
}
