//! # tensor-ir — shapes, operators, templates and reference semantics
//!
//! The tensor-level substrate of the MikPoly reproduction:
//!
//! * [`DType`], [`GemmShape`], [`Conv2dShape`] — the operator shapes the
//!   paper's evaluation sweeps (Tables 3/4, dynamic dimensions marked `*`);
//! * [`Operator`] — a dynamic-shape tensor operator; convolution lowers to
//!   implicit GEMM (im2col), as in the paper's implementation;
//! * [`template`] — the two-stage program template `Q = Q_online ∘
//!   Q_offline` of Fig. 3, with the innermost offline loops forming the
//!   micro-kernel template `K̃`;
//! * [`Tensor`] plus [`reference_gemm`] / [`reference_conv2d`] — executable
//!   reference semantics used to functionally verify every polymerized
//!   program the compiler emits.
//!
//! # Example
//!
//! ```
//! use tensor_ir::{GemmShape, Operator};
//!
//! let op = Operator::gemm(GemmShape::new(4096, 1024, 4096));
//! assert_eq!(op.flops(), 2.0 * 4096.0 * 1024.0 * 4096.0);
//! assert_eq!(op.gemm_view().shape, GemmShape::new(4096, 1024, 4096));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dtype;
mod im2col;
mod operator;
mod shape;
pub mod template;
mod tensor;
mod winograd;

pub use dtype::DType;
pub use im2col::{filter_as_matrix, im2col};
pub use operator::{GemmView, Operator};
pub use shape::{Conv2dShape, GemmShape};
pub use tensor::{reference_conv2d, reference_gemm, Tensor};
pub use winograd::{winograd_applicable, winograd_conv2d, winograd_gemm_shape};
