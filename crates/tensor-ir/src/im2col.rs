//! The im2col lowering used by implicit-GEMM convolution.

use crate::shape::Conv2dShape;
use crate::tensor::Tensor;

/// Expands an NCHW input into the `[M, K] = [batch * out_h * out_w,
/// in_channels * kernel_h * kernel_w]` matrix of the implicit-GEMM view,
/// with zero padding materialized.
///
/// Multiplying the result by the `[K, N]` reshaped OIHW filter (transposed
/// to IHW-major rows) reproduces [`crate::reference_conv2d`], which is how
/// the MikPoly reproduction routes convolutions through the GEMM
/// polymerizer — matching the paper's GEMM-based convolution path.
///
/// # Panics
///
/// Panics if `input` does not match `shape`.
pub fn im2col(shape: Conv2dShape, input: &Tensor) -> Tensor {
    assert_eq!(
        input.dims(),
        &[shape.batch, shape.in_channels, shape.height, shape.width],
        "input must be NCHW and match the shape"
    );
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let m = shape.batch * oh * ow;
    let k = shape.in_channels * shape.kernel_h * shape.kernel_w;
    let mut out = Tensor::zeros(&[m, k]);
    let istride_c = shape.height * shape.width;
    let istride_n = shape.in_channels * istride_c;
    let in_data = input.as_slice();
    for n in 0..shape.batch {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (n * oh + oy) * ow + ox;
                for ic in 0..shape.in_channels {
                    for ky in 0..shape.kernel_h {
                        let iy = (oy * shape.stride + ky) as isize - shape.padding as isize;
                        for kx in 0..shape.kernel_w {
                            let ix = (ox * shape.stride + kx) as isize - shape.padding as isize;
                            let col = (ic * shape.kernel_h + ky) * shape.kernel_w + kx;
                            let v = if iy < 0
                                || iy >= shape.height as isize
                                || ix < 0
                                || ix >= shape.width as isize
                            {
                                0.0
                            } else {
                                in_data[n * istride_n
                                    + ic * istride_c
                                    + iy as usize * shape.width
                                    + ix as usize]
                            };
                            *out.at2_mut(row, col) = v;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Reshapes an OIHW filter into the `[K, N]` operand of the implicit-GEMM
/// view (rows ordered to match [`im2col`] columns).
///
/// # Panics
///
/// Panics if `filter` does not match `shape`.
pub fn filter_as_matrix(shape: Conv2dShape, filter: &Tensor) -> Tensor {
    assert_eq!(
        filter.dims(),
        &[
            shape.out_channels,
            shape.in_channels,
            shape.kernel_h,
            shape.kernel_w
        ],
        "filter must be OIHW and match the shape"
    );
    let k = shape.in_channels * shape.kernel_h * shape.kernel_w;
    let n = shape.out_channels;
    let f = filter.as_slice();
    Tensor::from_fn(&[k, n], |i| {
        let (row, col) = (i / n, i % n);
        f[col * k + row]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::{reference_conv2d, reference_gemm};

    #[test]
    fn im2col_gemm_matches_direct_conv() {
        let shape = Conv2dShape::new(2, 3, 6, 5, 4, 3, 3, 1, 1);
        let input = Tensor::random(&[2, 3, 6, 5], 11);
        let filter = Tensor::random(&[4, 3, 3, 3], 12);

        let direct = reference_conv2d(shape, &input, &filter);

        let a = im2col(shape, &input);
        let b = filter_as_matrix(shape, &filter);
        let g = shape.as_gemm();
        let c = reference_gemm(g, &a, &b);

        // direct is [N, OC, OH, OW]; c is [N*OH*OW, OC].
        let (oh, ow) = (shape.out_h(), shape.out_w());
        for n in 0..shape.batch {
            for oc in 0..shape.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let d =
                            direct.as_slice()[((n * shape.out_channels + oc) * oh + oy) * ow + ox];
                        let v = c.at2((n * oh + oy) * ow + ox, oc);
                        assert!((d - v).abs() < 1e-4, "mismatch at {n},{oc},{oy},{ox}");
                    }
                }
            }
        }
    }

    #[test]
    fn im2col_dims_match_gemm_view() {
        let shape = Conv2dShape::square(3, 8, 16, 12, 3, 2);
        let input = Tensor::random(&[3, 8, 16, 16], 1);
        let a = im2col(shape, &input);
        let g = shape.as_gemm();
        assert_eq!(a.dims(), &[g.m, g.k]);
    }

    #[test]
    fn strided_im2col_skips_rows() {
        let s1 = Conv2dShape::new(1, 1, 8, 8, 1, 3, 3, 1, 0);
        let s2 = Conv2dShape::new(1, 1, 8, 8, 1, 3, 3, 2, 0);
        let input = Tensor::random(&[1, 1, 8, 8], 5);
        assert!(im2col(s1, &input).dims()[0] > im2col(s2, &input).dims()[0]);
    }
}
