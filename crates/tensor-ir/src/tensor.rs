//! Dense tensors and reference operator semantics.
//!
//! The simulator provides timing; this module provides *values*. Every
//! polymerized program is functionally executed against these reference
//! implementations in the test suite, so a compilation bug that mis-covers
//! the output space (overlapping regions, missed remainder rows, bad
//! padding) is caught as a numeric mismatch, not just a timing artifact.

use serde::{Deserialize, Serialize};

use crate::shape::{Conv2dShape, GemmShape};

/// A dense row-major f32 tensor.
///
/// All functional verification happens in f32 regardless of the modeled
/// device dtype: the reproduction checks *coverage and indexing* of
/// polymerized programs, not numerics of reduced-precision hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    dims: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A zero-filled tensor.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or contains a zero extent.
    pub fn zeros(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "tensor must have at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "tensor extents must be positive"
        );
        Self {
            dims: dims.to_vec(),
            data: vec![0.0; dims.iter().product()],
        }
    }

    /// A tensor filled by `f(flat_index)`.
    pub fn from_fn(dims: &[usize], f: impl Fn(usize) -> f32) -> Self {
        let mut t = Self::zeros(dims);
        for (i, v) in t.data.iter_mut().enumerate() {
            *v = f(i);
        }
        t
    }

    /// A deterministic pseudo-random tensor in `[-1, 1]`, keyed by `seed`.
    pub fn random(dims: &[usize], seed: u64) -> Self {
        Self::from_fn(dims, |i| {
            // SplitMix64-based uniform; self-contained so tensor-ir does not
            // depend on a RNG crate.
            let mut x = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            ((x >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        })
    }

    /// The tensor's dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the flat data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the flat data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor for a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the indices are out of bounds.
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        assert_eq!(self.dims.len(), 2, "at2 requires a 2-D tensor");
        assert!(i < self.dims[0] && j < self.dims[1], "index out of bounds");
        self.data[i * self.dims[1] + j]
    }

    /// Mutable element accessor for a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the indices are out of bounds.
    pub fn at2_mut(&mut self, i: usize, j: usize) -> &mut f32 {
        assert_eq!(self.dims.len(), 2, "at2_mut requires a 2-D tensor");
        assert!(i < self.dims[0] && j < self.dims[1], "index out of bounds");
        &mut self.data[i * self.dims[1] + j]
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.dims, other.dims, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Whether all elements differ by at most `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.dims == other.dims && self.max_abs_diff(other) <= tol
    }
}

/// Reference GEMM: `C[M,N] = A[M,K] * B[K,N]`.
///
/// # Panics
///
/// Panics if operand dimensions do not match `shape`.
pub fn reference_gemm(shape: GemmShape, a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.dims(), &[shape.m, shape.k], "A must be M x K");
    assert_eq!(b.dims(), &[shape.k, shape.n], "B must be K x N");
    let mut c = Tensor::zeros(&[shape.m, shape.n]);
    let (bk, bn) = (shape.k, shape.n);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let c_data = c.as_mut_slice();
    for i in 0..shape.m {
        for p in 0..bk {
            let aval = a_data[i * bk + p];
            if aval == 0.0 {
                continue;
            }
            let brow = &b_data[p * bn..(p + 1) * bn];
            let crow = &mut c_data[i * bn..(i + 1) * bn];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += aval * bv;
            }
        }
    }
    c
}

/// Reference 2-D convolution in NCHW / OIHW layout, returning NCHW output.
///
/// # Panics
///
/// Panics if `input` is not `[batch, in_channels, height, width]` or
/// `filter` is not `[out_channels, in_channels, kernel_h, kernel_w]`.
pub fn reference_conv2d(shape: Conv2dShape, input: &Tensor, filter: &Tensor) -> Tensor {
    assert_eq!(
        input.dims(),
        &[shape.batch, shape.in_channels, shape.height, shape.width],
        "input must be NCHW"
    );
    assert_eq!(
        filter.dims(),
        &[
            shape.out_channels,
            shape.in_channels,
            shape.kernel_h,
            shape.kernel_w
        ],
        "filter must be OIHW"
    );
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut out = Tensor::zeros(&[shape.batch, shape.out_channels, oh, ow]);
    let istride_c = shape.height * shape.width;
    let istride_n = shape.in_channels * istride_c;
    let fstride_i = shape.kernel_h * shape.kernel_w;
    let fstride_o = shape.in_channels * fstride_i;
    let in_data = input.as_slice();
    let f_data = filter.as_slice();
    let out_data = out.as_mut_slice();
    for n in 0..shape.batch {
        for oc in 0..shape.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ic in 0..shape.in_channels {
                        for ky in 0..shape.kernel_h {
                            let iy = (oy * shape.stride + ky) as isize - shape.padding as isize;
                            if iy < 0 || iy >= shape.height as isize {
                                continue;
                            }
                            for kx in 0..shape.kernel_w {
                                let ix = (ox * shape.stride + kx) as isize - shape.padding as isize;
                                if ix < 0 || ix >= shape.width as isize {
                                    continue;
                                }
                                let iv = in_data[n * istride_n
                                    + ic * istride_c
                                    + iy as usize * shape.width
                                    + ix as usize];
                                let fv = f_data
                                    [oc * fstride_o + ic * fstride_i + ky * shape.kernel_w + kx];
                                acc += iv * fv;
                            }
                        }
                    }
                    out_data[((n * shape.out_channels + oc) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let t = Tensor::zeros(&[3, 4]);
        assert_eq!(t.len(), 12);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_extent_rejected() {
        let _ = Tensor::zeros(&[3, 0]);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = Tensor::random(&[8, 8], 42);
        let b = Tensor::random(&[8, 8], 42);
        let c = Tensor::random(&[8, 8], 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn gemm_identity() {
        let shape = GemmShape::new(4, 4, 4);
        let a = Tensor::random(&[4, 4], 1);
        let eye = Tensor::from_fn(&[4, 4], |i| if i / 4 == i % 4 { 1.0 } else { 0.0 });
        let c = reference_gemm(shape, &a, &eye);
        assert!(c.approx_eq(&a, 1e-6));
    }

    #[test]
    fn gemm_known_values() {
        // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = Tensor::from_fn(&[2, 2], |i| (i + 1) as f32);
        let b = Tensor::from_fn(&[2, 2], |i| (i + 5) as f32);
        let c = reference_gemm(GemmShape::new(2, 2, 2), &a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn conv_pointwise_equals_gemm() {
        // A 1x1 convolution is exactly a GEMM over channels.
        let shape = Conv2dShape::new(1, 3, 4, 4, 2, 1, 1, 1, 0);
        let input = Tensor::random(&[1, 3, 4, 4], 7);
        let filter = Tensor::random(&[2, 3, 1, 1], 8);
        let out = reference_conv2d(shape, &input, &filter);
        for oc in 0..2 {
            for pix in 0..16 {
                let mut acc = 0.0;
                for ic in 0..3 {
                    acc += input.as_slice()[ic * 16 + pix] * filter.as_slice()[oc * 3 + ic];
                }
                let got = out.as_slice()[oc * 16 + pix];
                assert!((got - acc).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn conv_padding_zeroes_border_contributions() {
        // All-ones 3x3 filter over an all-ones 3x3 single-channel input with
        // pad 1: the center output sees 9 taps, corners see 4.
        let shape = Conv2dShape::new(1, 1, 3, 3, 1, 3, 3, 1, 1);
        let input = Tensor::from_fn(&[1, 1, 3, 3], |_| 1.0);
        let filter = Tensor::from_fn(&[1, 1, 3, 3], |_| 1.0);
        let out = reference_conv2d(shape, &input, &filter);
        assert_eq!(out.at2_oracle(1, 1), 9.0);
        assert_eq!(out.at2_oracle(0, 0), 4.0);
    }

    impl Tensor {
        /// Test helper: read a [1,1,h,w] tensor at (y, x).
        fn at2_oracle(&self, y: usize, x: usize) -> f32 {
            let w = self.dims()[3];
            self.as_slice()[y * w + x]
        }
    }

    #[test]
    fn max_abs_diff_detects_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let mut b = Tensor::zeros(&[2, 2]);
        *b.at2_mut(1, 1) = 0.5;
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(!a.approx_eq(&b, 0.1));
        assert!(a.approx_eq(&b, 0.5));
    }
}
