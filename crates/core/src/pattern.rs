//! Polymerization patterns (Fig. 5 of the paper).
//!
//! The pattern skeleton divides an operator's output into seven blocks:
//! a top band holding blocks {1}{2}{3}, a middle band holding {4}{5}, and a
//! bottom band holding {6}{7}. A *pattern* groups those blocks into
//! rectangular regions; each region's online loops are re-materialized
//! around its own parameterized micro-kernel. Nine representative patterns
//! survive the paper's synthetic-workload clustering; we encode each as a
//! stack of horizontal bands, where a band is split into one or two column
//! segments:
//!
//! ```text
//!  I   [1]        one region covering everything
//!  II  [1,1]      top band + bottom band          (the Fig. 3 example)
//!  III [2]        left column + right column
//!  IV  [1,1,1]    three bands
//!  V   [2,2]      2 x 2 grid
//!  VI  [1,2]      full-width top, split bottom
//!  VII [2,1]      split top, full-width bottom
//!  VIII[1,1,2]    two bands + split bottom
//!  IX  [2,1,1]    split top + two bands
//! ```
//!
//! Per Section 4, GPUs restrict themselves to Patterns I and II (runtime
//! overhead dominates); NPUs use all nine.

use serde::{Deserialize, Serialize};

use accel_sim::MachineModel;

/// Identifier of a polymerization pattern (1 through 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PatternId(pub u8);

impl std::fmt::Display for PatternId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const ROMAN: [&str; 9] = ["I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX"];
        match ROMAN.get((self.0 as usize).wrapping_sub(1)) {
            Some(r) => write!(f, "Pattern-{r}"),
            // 10 is the split-K extension, outside the paper's skeleton.
            None if self.0 == 10 => write!(f, "Pattern-X(split-K)"),
            None => write!(f, "Pattern-#{}", self.0),
        }
    }
}

/// A polymerization pattern: a vertical stack of bands, each split into
/// `bands[i]` column segments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pattern {
    /// Pattern identifier (Roman numeral in the paper).
    pub id: PatternId,
    /// Number of column segments per band, top to bottom.
    pub bands: Vec<usize>,
}

impl Pattern {
    /// Total number of regions (parameterized micro-kernels) in the pattern.
    pub fn num_regions(&self) -> usize {
        self.bands.iter().sum()
    }

    /// Which skeleton blocks {1}..{7} each region covers, for display and
    /// cross-checking against Fig. 5. The skeleton assigns {1}{2}{3} to the
    /// top band, {4}{5} to the middle, {6}{7} to the bottom; merged bands
    /// inherit the union of their blocks.
    pub fn block_cover(&self) -> Vec<Vec<u8>> {
        // Distribute the three skeleton bands over the pattern's bands.
        let skeleton: [&[u8]; 3] = [&[1, 2, 3], &[4, 5], &[6, 7]];
        let nb = self.bands.len();
        let mut per_band: Vec<Vec<u8>> = vec![Vec::new(); nb];
        for (i, blocks) in skeleton.iter().enumerate() {
            // Skeleton band i maps onto pattern band i, with surplus
            // skeleton bands merged into the pattern's last band.
            let target = i.min(nb - 1);
            per_band[target].extend_from_slice(blocks);
        }
        let mut out = Vec::with_capacity(self.num_regions());
        for (band, &segs) in per_band.iter().zip(&self.bands) {
            if segs == 1 {
                out.push(band.clone());
            } else {
                // Split the band's blocks between left and right segments.
                let mid = band.len().div_ceil(2);
                out.push(band[..mid].to_vec());
                out.push(band[mid..].to_vec());
            }
        }
        out
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:", self.id)?;
        for (i, blocks) in self.block_cover().iter().enumerate() {
            write!(f, " R{}{{", i + 1)?;
            for (j, b) in blocks.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{b}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

fn pattern(id: u8, bands: &[usize]) -> Pattern {
    Pattern {
        id: PatternId(id),
        bands: bands.to_vec(),
    }
}

/// All nine representative patterns (Fig. 5 (b)).
pub fn all_patterns() -> Vec<Pattern> {
    vec![
        pattern(1, &[1]),
        pattern(2, &[1, 1]),
        pattern(3, &[2]),
        pattern(4, &[1, 1, 1]),
        pattern(5, &[2, 2]),
        pattern(6, &[1, 2]),
        pattern(7, &[2, 1]),
        pattern(8, &[1, 1, 2]),
        pattern(9, &[2, 1, 1]),
    ]
}

/// The pattern subset used on GPUs: Patterns I and II only, "selected based
/// on their optimal balance of runtime overhead and operator performance"
/// (Section 4).
pub fn gpu_patterns() -> Vec<Pattern> {
    all_patterns().into_iter().take(2).collect()
}

/// The default pattern set for a machine: I–II under dynamic hardware
/// scheduling (GPU), I–IX under static compiler placement (NPU).
pub fn default_patterns(machine: &MachineModel) -> Vec<Pattern> {
    match machine.allocation {
        accel_sim::AllocationPolicy::DynamicHardware => gpu_patterns(),
        accel_sim::AllocationPolicy::StaticCompilerAssigned => all_patterns(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_patterns_with_unique_ids() {
        let ps = all_patterns();
        assert_eq!(ps.len(), 9);
        let mut ids: Vec<u8> = ps.iter().map(|p| p.id.0).collect();
        ids.dedup();
        assert_eq!(ids.len(), 9);
    }

    #[test]
    fn pattern_ii_matches_figure_3() {
        let p = &all_patterns()[1];
        assert_eq!(p.num_regions(), 2);
        let cover = p.block_cover();
        assert_eq!(cover[0], vec![1, 2, 3]);
        assert_eq!(cover[1], vec![4, 5, 6, 7]);
    }

    #[test]
    fn every_pattern_covers_all_seven_blocks_once() {
        for p in all_patterns() {
            let mut seen: Vec<u8> = p.block_cover().into_iter().flatten().collect();
            seen.sort_unstable();
            assert_eq!(seen, vec![1, 2, 3, 4, 5, 6, 7], "{p}");
        }
    }

    #[test]
    fn gpu_subset_is_i_and_ii() {
        let ps = gpu_patterns();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].id, PatternId(1));
        assert_eq!(ps[1].id, PatternId(2));
    }

    #[test]
    fn default_patterns_follow_allocation_policy() {
        assert_eq!(default_patterns(&MachineModel::a100()).len(), 2);
        assert_eq!(default_patterns(&MachineModel::ascend910a()).len(), 9);
    }

    #[test]
    fn roman_numeral_display() {
        assert_eq!(PatternId(1).to_string(), "Pattern-I");
        assert_eq!(PatternId(9).to_string(), "Pattern-IX");
        let p = &all_patterns()[0];
        assert_eq!(p.to_string(), "Pattern-I: R1{1,2,3,4,5,6,7}");
    }

    #[test]
    fn split_k_extension_has_its_own_display() {
        assert_eq!(PatternId(10).to_string(), "Pattern-X(split-K)");
        assert_eq!(PatternId(77).to_string(), "Pattern-#77");
    }

    #[test]
    fn region_counts_stay_search_friendly() {
        for p in all_patterns() {
            assert!(p.num_regions() <= 4, "{p} has too many regions");
        }
    }
}
