//! Sharded, read-mostly program cache with lock-free hits, single-flight
//! fills, and a segmented-LRU capacity bound.
//!
//! The online stage is on the request path: under concurrent serving, a
//! single `Mutex<HashMap>` serializes every lookup, and the naive
//! check-then-insert pattern lets N threads that miss on the same shape
//! all run the (micro- to millisecond) polymerization, N−1 of them
//! wasted — a classic cache stampede. This cache fixes both:
//!
//! * **Lock-free hits** — each shard publishes an immutable
//!   [`Arc`]`<HashMap>` snapshot stamped with a generation counter.
//!   Readers keep a thread-local copy of the snapshot and revalidate it
//!   with a single atomic generation load per lookup; a steady-state hit
//!   therefore touches *no lock* and performs *no shared writes* beyond
//!   the returned `Arc`'s refcount and a striped hit counter. Writers
//!   mutate copy-on-write under a per-shard mutex and publish a new
//!   snapshot + generation, so they never block readers (readers at worst
//!   serve one generation stale, which a concurrent lookup is always
//!   allowed to do).
//! * **Single flight** — a miss installs an in-flight slot before
//!   computing. Concurrent misses on the same key find the slot and block
//!   on its condvar instead of re-running the computation; exactly one
//!   thread polymerizes each unique shape, and everyone shares the
//!   resulting `Arc`. If the computing thread panics, the slot is
//!   abandoned and one waiter takes over, so a poisoned key cannot wedge
//!   the cache.
//!
//! Counters are lock-free atomics (the hot hit counter is striped across
//! cache lines); [`ShardedCache::stats`] snapshots them for serving
//! telemetry, with the entry count served from an exact atomic that is
//! maintained at fill/insert/remove/evict time — no shard scans.
//!
//! An optional **capacity bound** ([`ShardedCache::bounded`]) evicts with
//! a segmented-LRU policy: new entries enter a probation queue; an entry
//! that was hit while resident is promoted to a protected queue at its
//! first eviction scan (and given halved-frequency second chances there),
//! while unreferenced entries are evicted in insertion order. Hot shapes
//! therefore survive a churning tail instead of being FIFO-thrashed.
//! Queue records carry a per-fill stamp, so a removed or re-inserted key
//! leaves only a *stale* record that is skipped (never evicting the new
//! incarnation) and periodically compacted away — the order state is
//! bounded by a small multiple of the live entry count. Unbounded caches
//! (the default) never touch the eviction state.
//!
//! Failure story: a computing closure that returns `Err` (or panics) never
//! caches its result — the in-flight slot is cleared, waiters are woken,
//! and the next caller retries from scratch
//! ([`ShardedCache::try_get_or_compute`]). Entries found invalid after the
//! fact are evicted with [`ShardedCache::remove`] (counted as
//! `invalidations`).

// Online hot path: failures must surface as typed errors, not panics.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Default shard count: enough to make cross-shard collisions rare at
/// serving-realistic thread counts, small enough to stay cheap to snapshot.
pub const DEFAULT_SHARDS: usize = 16;

/// Stripes of the hot hit counter (each on its own cache line).
const HIT_STRIPES: usize = 8;

/// Thread-local read-snapshot slots (direct-mapped by cache id + shard).
const TLS_SLOTS: usize = 256;

/// Frequencies saturate here; far beyond any promotion threshold.
const FREQ_CEILING: u32 = 1 << 20;

/// How a value came out of [`ShardedCache::get_or_compute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The value was already cached.
    Hit,
    /// This call computed the value (the single flight).
    Computed,
    /// Another thread was computing the value; this call waited for it.
    Waited,
}

/// A point-in-time snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no entry (each starts one computation).
    pub misses: u64,
    /// Computations that ran to completion (the polymerization count —
    /// with single flight this equals the number of unique keys computed).
    pub computations: u64,
    /// Lookups that blocked on another thread's in-flight computation
    /// instead of re-running it (each is one saved computation).
    pub coalesced_waits: u64,
    /// Entries inserted directly (e.g. a loaded ahead-of-time bundle).
    pub direct_inserts: u64,
    /// Ready entries evicted by the capacity bound (0 when unbounded).
    pub evictions: u64,
    /// Ready entries explicitly evicted by [`ShardedCache::remove`]
    /// (e.g. entries that failed post-fill validation — poisoned entries).
    pub invalidations: u64,
    /// Cached entries at snapshot time.
    pub entries: u64,
}

impl CacheStats {
    /// Computations started but not yet finished at snapshot time.
    pub fn in_flight(&self) -> u64 {
        self.misses.saturating_sub(self.computations)
    }

    /// Fraction of lookups answered without computing; `0.0` before the
    /// first lookup (never `NaN` — this value reaches exported metrics).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses + self.coalesced_waits;
        if lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / lookups as f64
    }

    /// Field-wise sum of two snapshots (e.g. the GEMM and conv caches of
    /// an engine, reported as one).
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            computations: self.computations + other.computations,
            coalesced_waits: self.coalesced_waits + other.coalesced_waits,
            direct_inserts: self.direct_inserts + other.direct_inserts,
            evictions: self.evictions + other.evictions,
            invalidations: self.invalidations + other.invalidations,
            entries: self.entries + other.entries,
        }
    }

    /// Publishes this snapshot into a telemetry registry (collector style:
    /// the cache's own atomics stay authoritative; the registry's
    /// `cache.*` counters are overwritten with the snapshot, so they
    /// always equal a [`ShardedCache::stats`] call made at the same time).
    pub fn export_to(&self, registry: &mikpoly_telemetry::Registry) {
        for (name, help) in [
            (
                "cache.hits",
                "program-cache lookups answered from the cache",
            ),
            ("cache.misses", "program-cache lookups that missed"),
            ("cache.computations", "programs compiled on a cache miss"),
            (
                "cache.coalesced_waits",
                "lookups that waited for an in-flight compile of the same key",
            ),
            ("cache.direct_inserts", "programs inserted without a lookup"),
            ("cache.evictions", "entries evicted by the LRU policy"),
            (
                "cache.invalidations",
                "entries dropped by explicit invalidation",
            ),
            ("cache.entries", "resident program-cache entries"),
            (
                "cache.hit_rate",
                "hits over lookups, 0 before the first lookup",
            ),
        ] {
            registry.describe(name, help);
        }
        registry.counter("cache.hits").store(self.hits);
        registry.counter("cache.misses").store(self.misses);
        registry
            .counter("cache.computations")
            .store(self.computations);
        registry
            .counter("cache.coalesced_waits")
            .store(self.coalesced_waits);
        registry
            .counter("cache.direct_inserts")
            .store(self.direct_inserts);
        registry.counter("cache.evictions").store(self.evictions);
        registry
            .counter("cache.invalidations")
            .store(self.invalidations);
        registry.counter("cache.entries").store(self.entries);
        // hit_rate is 0.0 before the first lookup, so the gauge (and the
        // Prometheus exposition rendered from it) can never carry a NaN.
        registry.gauge("cache.hit_rate").set(self.hit_rate());
    }
}

/// An in-flight computation other threads can await.
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    ready: Condvar,
}

enum FlightState<V> {
    Pending,
    Done(Arc<V>),
    /// The computing thread panicked; a waiter must restart the flight.
    Abandoned,
}

/// Identity and hotness of one ready entry. Shared (via `Arc`) by every
/// published snapshot holding the entry and by the eviction queues, so a
/// hit recorded against a one-generation-stale snapshot still lands on
/// the live entry's frequency.
struct EntryMeta {
    /// Fill stamp: globally unique per (key, fill). Eviction-queue records
    /// carry the stamp they were enqueued with, which is how a record left
    /// behind by `remove` + re-`insert` is recognized as stale instead of
    /// prematurely evicting the key's new incarnation.
    stamp: u64,
    /// Lookup hits since the entry was filled (or last promoted); drives
    /// the segmented-LRU promotion decision.
    freq: AtomicU32,
}

/// A ready cache entry: the value plus its eviction metadata.
struct ReadyEntry<V> {
    value: Arc<V>,
    meta: Arc<EntryMeta>,
}

impl<V> Clone for ReadyEntry<V> {
    fn clone(&self) -> Self {
        Self {
            value: Arc::clone(&self.value),
            meta: Arc::clone(&self.meta),
        }
    }
}

enum Slot<V> {
    Ready(ReadyEntry<V>),
    InFlight(Arc<Flight<V>>),
}

impl<V> Clone for Slot<V> {
    fn clone(&self) -> Self {
        match self {
            Slot::Ready(e) => Slot::Ready(e.clone()),
            Slot::InFlight(f) => Slot::InFlight(Arc::clone(f)),
        }
    }
}

/// One cache-line-padded counter cell.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// A counter striped across cache lines so 8 threads hammering the hit
/// path don't serialize on one line. `sum` folds the stripes.
struct StripedU64 {
    cells: [PaddedU64; HIT_STRIPES],
}

impl StripedU64 {
    fn new() -> Self {
        Self {
            cells: std::array::from_fn(|_| PaddedU64(AtomicU64::new(0))),
        }
    }

    #[inline]
    fn add(&self, stripe: usize, n: u64) {
        self.cells[stripe & (HIT_STRIPES - 1)]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

struct Counters {
    hits: StripedU64,
    misses: AtomicU64,
    computations: AtomicU64,
    coalesced_waits: AtomicU64,
    direct_inserts: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    /// Exact count of ready entries, maintained at fill/insert/remove/
    /// evict time — `stats()` and capacity checks never scan the shards.
    ready: AtomicUsize,
    /// Fill-stamp source for [`EntryMeta::stamp`].
    stamp: AtomicU64,
}

impl Counters {
    fn new() -> Self {
        Self {
            hits: StripedU64::new(),
            misses: AtomicU64::new(0),
            computations: AtomicU64::new(0),
            coalesced_waits: AtomicU64::new(0),
            direct_inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            ready: AtomicUsize::new(0),
            stamp: AtomicU64::new(0),
        }
    }
}

/// One shard: a published immutable snapshot plus its generation.
///
/// Readers revalidate their thread-local snapshot against `gen` with one
/// atomic load; writers rebuild the map copy-on-write under `map`'s mutex
/// and bump `gen` before releasing it, so a reader that observes the new
/// generation and takes the mutex to refresh is guaranteed the new
/// snapshot (mutex acquire/release ordering), and a reader that observes
/// the old generation serves at most one generation stale.
struct Shard<K, V> {
    gen: AtomicU64,
    map: Mutex<Arc<HashMap<K, Slot<V>>>>,
}

impl<K: Eq + Hash + Clone, V> Shard<K, V> {
    fn new() -> Self {
        Self {
            gen: AtomicU64::new(0),
            map: Mutex::new(Arc::new(HashMap::new())),
        }
    }

    /// Rebuilds the shard map copy-on-write and publishes the result.
    /// The generation bump happens while the writer mutex is still held,
    /// which is what makes the readers' revalidate-then-refresh safe.
    fn mutate<R>(&self, f: impl FnOnce(&mut HashMap<K, Slot<V>>) -> R) -> R {
        let mut guard = self.map.lock();
        let mut next: HashMap<K, Slot<V>> = (**guard).clone();
        let out = f(&mut next);
        *guard = Arc::new(next);
        self.gen.fetch_add(1, Ordering::Release);
        out
    }
}

/// One eviction-order record: the key plus the fill stamp it was enqueued
/// for. A record whose stamp no longer matches the key's live entry is
/// stale (the entry was removed or replaced) and is skipped.
struct OrderRecord<K> {
    key: K,
    stamp: u64,
}

/// Capacity-bound bookkeeping, touched only on the write path (fills,
/// direct inserts, removes, evictions) and only when the cache is
/// bounded. The hit path never takes this lock.
struct EvictionState<K> {
    /// Probation segment: entries that have not earned a promotion.
    probation: VecDeque<OrderRecord<K>>,
    /// Protected segment: entries hit while resident.
    protected: VecDeque<OrderRecord<K>>,
    /// Live stamp + frequency per resident key — lets the eviction scan
    /// test staleness and hotness without touching any shard.
    live: HashMap<K, Arc<EntryMeta>>,
}

impl<K: Eq + Hash + Clone> EvictionState<K> {
    fn new() -> Self {
        Self {
            probation: VecDeque::new(),
            protected: VecDeque::new(),
            live: HashMap::new(),
        }
    }

    fn order_len(&self) -> usize {
        self.probation.len() + self.protected.len()
    }

    /// Drops stale records once the queues exceed a small multiple of the
    /// live count — this is the bound that the FIFO order list lacked
    /// (remove/re-insert used to leak a dead record forever).
    fn compact(&mut self) {
        if self.order_len() <= 2 * self.live.len() + 64 {
            return;
        }
        let live = &self.live;
        let keep = |r: &OrderRecord<K>| live.get(&r.key).is_some_and(|m| m.stamp == r.stamp);
        self.probation.retain(keep);
        self.protected.retain(keep);
    }
}

/// Thread-local cache of published shard snapshots, keyed by (cache id,
/// shard index) into a direct-mapped table. The `Arc<dyn Any>` erases the
/// key/value types so one `thread_local!` serves every `ShardedCache`
/// instantiation; the (globally unique) cache id makes a type confusion
/// impossible, and a mismatched slot simply refreshes.
struct TlsSlot {
    /// Owning cache id; 0 = empty (ids start at 1).
    cache: u64,
    shard: u32,
    gen: u64,
    map: Option<Arc<dyn Any + Send + Sync>>,
}

struct ReadCache {
    slots: Vec<TlsSlot>,
    /// This thread's hit-counter stripe.
    stripe: usize,
}

static STRIPE_SEQ: AtomicUsize = AtomicUsize::new(0);
static CACHE_IDS: AtomicU64 = AtomicU64::new(1);

impl ReadCache {
    fn new() -> Self {
        Self {
            slots: (0..TLS_SLOTS)
                .map(|_| TlsSlot {
                    cache: 0,
                    shard: 0,
                    gen: 0,
                    map: None,
                })
                .collect(),
            stripe: STRIPE_SEQ.fetch_add(1, Ordering::Relaxed),
        }
    }

    #[inline]
    fn index(cache: u64, shard: u32) -> usize {
        (cache as usize)
            .wrapping_mul(31)
            .wrapping_add(shard as usize)
            & (TLS_SLOTS - 1)
    }

    /// The current snapshot of `shard`, refreshed (under the shard's
    /// writer mutex, briefly) only when the generation moved or the slot
    /// belongs to another cache.
    fn current<K, V>(
        &mut self,
        cache: u64,
        shard_idx: u32,
        shard: &Shard<K, V>,
    ) -> &Arc<dyn Any + Send + Sync>
    where
        K: Eq + Hash + Clone + Send + Sync + 'static,
        V: Send + Sync + 'static,
    {
        let slot = &mut self.slots[Self::index(cache, shard_idx)];
        let gen = shard.gen.load(Ordering::Acquire);
        let fresh =
            slot.cache == cache && slot.shard == shard_idx && slot.gen == gen && slot.map.is_some();
        if !fresh {
            let guard = shard.map.lock();
            // Re-read under the mutex: writers bump `gen` while holding
            // it, so this pairing is exact.
            slot.gen = shard.gen.load(Ordering::Acquire);
            slot.map = Some(Arc::clone(&*guard) as Arc<dyn Any + Send + Sync>);
            slot.cache = cache;
            slot.shard = shard_idx;
        }
        match &slot.map {
            Some(map) => map,
            // `fresh` requires `map.is_some()`; the refresh stores one.
            None => unreachable!("refreshed TLS slot holds a snapshot"),
        }
    }
}

thread_local! {
    static READ_CACHE: RefCell<ReadCache> = RefCell::new(ReadCache::new());
}

/// Removes the in-flight slot and wakes waiters if the computation never
/// completed (i.e. the closure panicked). Removal is identity-checked: if
/// something else (a direct insert) already replaced the slot, it is left
/// alone.
struct FlightGuard<'a, K: Eq + Hash + Clone, V> {
    shard: &'a Shard<K, V>,
    key: Option<K>,
    flight: Arc<Flight<V>>,
}

impl<K: Eq + Hash + Clone, V> Drop for FlightGuard<'_, K, V> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            self.shard.mutate(|map| {
                if let Some(Slot::InFlight(f)) = map.get(&key) {
                    if Arc::ptr_eq(f, &self.flight) {
                        map.remove(&key);
                    }
                }
            });
            *self.flight.state.lock() = FlightState::Abandoned;
            self.flight.ready.notify_all();
        }
    }
}

/// A sharded map from keys to `Arc`'d values with lock-free hits,
/// single-flight fills, and an optional segmented-LRU capacity bound.
pub struct ShardedCache<K, V> {
    /// Globally unique instance id (keys the thread-local snapshots).
    id: u64,
    shards: Vec<Shard<K, V>>,
    counters: Counters,
    /// Maximum ready entries; `None` means unbounded (no order tracking).
    capacity: Option<usize>,
    /// Segmented-LRU order state; only touched when `capacity` is set,
    /// and only by the write path.
    eviction: Mutex<EvictionState<K>>,
}

impl<K, V> ShardedCache<K, V>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// A cache with [`DEFAULT_SHARDS`] shards and no capacity bound.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (power of two recommended).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_shards_and_capacity(shards, None)
    }

    /// A cache holding at most `capacity` ready entries; once over the
    /// bound, the segmented-LRU policy evicts unreferenced entries in
    /// insertion order and gives hit-while-resident entries a protected
    /// second life. A `capacity` of zero is treated as one — an empty
    /// bound would evict every fill before its caller returned.
    pub fn bounded(capacity: usize) -> Self {
        Self::with_shards_and_capacity(DEFAULT_SHARDS, Some(capacity.max(1)))
    }

    fn with_shards_and_capacity(shards: usize, capacity: Option<usize>) -> Self {
        assert!(shards > 0, "cache needs at least one shard");
        Self {
            id: CACHE_IDS.fetch_add(1, Ordering::Relaxed),
            shards: (0..shards).map(|_| Shard::new()).collect(),
            counters: Counters::new(),
            capacity,
            eviction: Mutex::new(EvictionState::new()),
        }
    }

    /// The capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    fn shard(&self, key: &K) -> &Shard<K, V> {
        &self.shards[self.shard_index(key)]
    }

    fn shard_index(&self, key: &K) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// The lock-free read path: looks `key` up in this thread's cached
    /// snapshot of its shard, refreshing the snapshot only when the
    /// shard's generation moved. Returns the slot (cloned `Arc`s) and the
    /// thread's hit-counter stripe.
    fn read_slot(&self, key: &K) -> (Option<Slot<V>>, usize) {
        let idx = self.shard_index(key);
        let shard = &self.shards[idx];
        let looked = READ_CACHE.try_with(|rc| {
            let mut rc = rc.borrow_mut();
            let stripe = rc.stripe;
            let snapshot = rc.current(self.id, idx as u32, shard);
            let found = snapshot
                .downcast_ref::<HashMap<K, Slot<V>>>()
                .and_then(|map| map.get(key))
                .cloned();
            (found, stripe)
        });
        match looked {
            Ok(found) => found,
            // Thread-local storage is gone (thread teardown): fall back
            // to a brief lock on the published snapshot.
            Err(_) => (self.shard(key).map.lock().get(key).cloned(), 0),
        }
    }

    fn note_hit(&self, meta: &EntryMeta, stripe: usize) {
        self.counters.hits.add(stripe, 1);
        if self.capacity.is_some() && meta.freq.load(Ordering::Relaxed) < FREQ_CEILING {
            meta.freq.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn new_entry(&self, value: Arc<V>) -> ReadyEntry<V> {
        ReadyEntry {
            value,
            meta: Arc::new(EntryMeta {
                stamp: self.counters.stamp.fetch_add(1, Ordering::Relaxed) + 1,
                freq: AtomicU32::new(0),
            }),
        }
    }

    /// Looks `key` up without filling; counts as a hit when present.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        match self.read_slot(key) {
            (Some(Slot::Ready(e)), stripe) => {
                self.note_hit(&e.meta, stripe);
                Some(e.value)
            }
            _ => None,
        }
    }

    /// Returns the cached value for `key`, computing it with `compute` on
    /// a miss. Concurrent callers for the same key coalesce onto a single
    /// computation; the outcome says which role this call played.
    pub fn get_or_compute(&self, key: &K, compute: impl FnOnce() -> V) -> (Arc<V>, CacheOutcome) {
        match self.try_get_or_compute(key, || Ok::<V, std::convert::Infallible>(compute())) {
            Ok(found) => found,
            Err(infallible) => match infallible {},
        }
    }

    /// Like [`ShardedCache::get_or_compute`], but the computation may
    /// fail. An `Err` is **never cached**: the in-flight slot is removed
    /// and every coalesced waiter is woken to retry (one of them becomes
    /// the next leader), exactly as if the closure had panicked. The
    /// error is returned to the leader only; waiters re-run `compute`
    /// under their own call's closure.
    pub fn try_get_or_compute<E>(
        &self,
        key: &K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<(Arc<V>, CacheOutcome), E> {
        // Fast path: no lock. A ready hit returns directly; a visible
        // in-flight slot is awaited without ever taking the shard mutex.
        match self.read_slot(key) {
            (Some(Slot::Ready(e)), stripe) => {
                self.note_hit(&e.meta, stripe);
                return Ok((e.value, CacheOutcome::Hit));
            }
            (Some(Slot::InFlight(flight)), _) => {
                if let Some(v) = self.await_flight(&flight) {
                    return Ok((v, CacheOutcome::Waited));
                }
                // Abandoned: fall through and contend for the takeover.
            }
            (None, _) => {}
        }
        let shard = self.shard(key);
        loop {
            // Decide this thread's role against the canonical map, under
            // the shard's writer mutex…
            let flight = {
                let mut guard = shard.map.lock();
                match guard.get(key) {
                    Some(Slot::Ready(e)) => {
                        let e = e.clone();
                        drop(guard);
                        self.note_hit(&e.meta, 0);
                        return Ok((e.value, CacheOutcome::Hit));
                    }
                    Some(Slot::InFlight(flight)) => {
                        let flight = Arc::clone(flight);
                        drop(guard);
                        match self.await_flight(&flight) {
                            Some(v) => return Ok((v, CacheOutcome::Waited)),
                            // Computing thread panicked or failed: retry
                            // and take over the flight.
                            None => continue,
                        }
                    }
                    None => {
                        self.counters.misses.fetch_add(1, Ordering::Relaxed);
                        let flight = Arc::new(Flight {
                            state: Mutex::new(FlightState::Pending),
                            ready: Condvar::new(),
                        });
                        let mut next: HashMap<K, Slot<V>> = (**guard).clone();
                        next.insert(key.clone(), Slot::InFlight(Arc::clone(&flight)));
                        *guard = Arc::new(next);
                        shard.gen.fetch_add(1, Ordering::Release);
                        flight
                    }
                }
            };
            // …then compute outside any shard lock. The guard clears the
            // in-flight slot and wakes waiters on *any* early exit —
            // panic or `Err` — so a failed leader can never wedge them.
            let mut guard = FlightGuard {
                shard,
                key: Some(key.clone()),
                flight: Arc::clone(&flight),
            };
            let value = Arc::new(compute()?);
            guard.key = None; // disarm: the fill is committing
            let entry = self.new_entry(Arc::clone(&value));
            let replaced_ready = shard.mutate(|map| {
                matches!(
                    map.insert(key.clone(), Slot::Ready(entry.clone())),
                    Some(Slot::Ready(_))
                )
            });
            if !replaced_ready {
                self.counters.ready.fetch_add(1, Ordering::Relaxed);
            }
            *flight.state.lock() = FlightState::Done(Arc::clone(&value));
            flight.ready.notify_all();
            self.counters.computations.fetch_add(1, Ordering::Relaxed);
            self.register_fill(key, &entry);
            return Ok((value, CacheOutcome::Computed));
        }
    }

    /// Evicts `key`'s ready entry, if any (counted as an invalidation —
    /// the knob for entries found corrupt after the fact). An in-flight
    /// slot is left alone: its leader still owns the fill and its waiters
    /// its condvar.
    pub fn remove(&self, key: &K) -> bool {
        let removed = self.shard(key).mutate(|map| {
            if matches!(map.get(key), Some(Slot::Ready(_))) {
                match map.remove(key) {
                    Some(Slot::Ready(e)) => Some(e),
                    _ => None,
                }
            } else {
                None
            }
        });
        let Some(entry) = removed else {
            return false;
        };
        self.counters.ready.fetch_sub(1, Ordering::Relaxed);
        self.counters.invalidations.fetch_add(1, Ordering::Relaxed);
        if self.capacity.is_some() {
            let mut ev = self.eviction.lock();
            // Drop the live record only for *this* incarnation: a racing
            // re-fill may already have registered a newer stamp. The
            // order record goes stale and is skipped/compacted later —
            // never evicting the new incarnation (the stale-order fix).
            if ev
                .live
                .get(key)
                .is_some_and(|m| m.stamp == entry.meta.stamp)
            {
                ev.live.remove(key);
            }
            ev.compact();
        }
        true
    }

    /// Blocks until `flight` resolves; `None` means it was abandoned.
    fn await_flight(&self, flight: &Flight<V>) -> Option<Arc<V>> {
        self.counters
            .coalesced_waits
            .fetch_add(1, Ordering::Relaxed);
        let mut state = flight.state.lock();
        loop {
            match &*state {
                FlightState::Done(v) => return Some(Arc::clone(v)),
                FlightState::Abandoned => return None,
                FlightState::Pending => flight.ready.wait(&mut state),
            }
        }
    }

    /// Inserts a ready value, replacing any previous entry.
    pub fn insert(&self, key: K, value: Arc<V>) {
        self.counters.direct_inserts.fetch_add(1, Ordering::Relaxed);
        let entry = self.new_entry(value);
        let replaced_ready = self.shard(&key).mutate(|map| {
            matches!(
                map.insert(key.clone(), Slot::Ready(entry.clone())),
                Some(Slot::Ready(_))
            )
        });
        if !replaced_ready {
            self.counters.ready.fetch_add(1, Ordering::Relaxed);
        }
        self.register_fill(&key, &entry);
    }

    /// Bulk [`ShardedCache::insert`]: groups the batch by shard so each
    /// shard republishes its snapshot **once** instead of once per entry
    /// — this is what makes warm restarts from a large ahead-of-time
    /// bundle O(n) instead of O(n · shard size).
    pub fn insert_many(&self, entries: impl IntoIterator<Item = (K, Arc<V>)>) {
        let mut by_shard: Vec<Vec<(K, ReadyEntry<V>)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut n = 0u64;
        for (key, value) in entries {
            let idx = self.shard_index(&key);
            by_shard[idx].push((key, self.new_entry(value)));
            n += 1;
        }
        if n == 0 {
            return;
        }
        self.counters.direct_inserts.fetch_add(n, Ordering::Relaxed);
        let mut registered: Vec<(K, ReadyEntry<V>)> = Vec::new();
        for (idx, batch) in by_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let added = self.shards[idx].mutate(|map| {
                let mut added = 0usize;
                for (key, entry) in &batch {
                    if !matches!(
                        map.insert(key.clone(), Slot::Ready(entry.clone())),
                        Some(Slot::Ready(_))
                    ) {
                        added += 1;
                    }
                }
                added
            });
            self.counters.ready.fetch_add(added, Ordering::Relaxed);
            registered.extend(batch);
        }
        if let Some(capacity) = self.capacity {
            let mut ev = self.eviction.lock();
            for (key, entry) in &registered {
                ev.live.insert(key.clone(), Arc::clone(&entry.meta));
                ev.probation.push_back(OrderRecord {
                    key: key.clone(),
                    stamp: entry.meta.stamp,
                });
            }
            self.evict_to_capacity(&mut ev, capacity);
            ev.compact();
        }
    }

    /// Registers a completed fill with the eviction state and trims back
    /// to capacity. No-op when unbounded (the default never takes the
    /// order lock). Lock order is eviction-state → shard; no caller holds
    /// a shard mutex while acquiring the eviction lock, so the two cannot
    /// deadlock.
    fn register_fill(&self, key: &K, entry: &ReadyEntry<V>) {
        let Some(capacity) = self.capacity else {
            return;
        };
        let mut ev = self.eviction.lock();
        ev.live.insert(key.clone(), Arc::clone(&entry.meta));
        ev.probation.push_back(OrderRecord {
            key: key.clone(),
            stamp: entry.meta.stamp,
        });
        self.evict_to_capacity(&mut ev, capacity);
        ev.compact();
    }

    /// The segmented-LRU eviction scan. Victims come from the probation
    /// queue first (insertion order); an entry that was hit while
    /// resident is promoted to the protected queue on its first scan
    /// instead of dying, and protected entries earn halved-frequency
    /// second chances. The scan budget (one full pass over the order
    /// records) guarantees termination even when everything is hot: once
    /// it runs out, the next live record is evicted regardless.
    fn evict_to_capacity(&self, ev: &mut EvictionState<K>, capacity: usize) {
        let mut budget = ev.order_len();
        while self.counters.ready.load(Ordering::Relaxed) > capacity {
            let forced = budget == 0;
            let (record, from_probation) = if let Some(r) = ev.probation.pop_front() {
                (r, true)
            } else if let Some(r) = ev.protected.pop_front() {
                (r, false)
            } else {
                // Entries committed but not yet registered (a racing
                // fill) can leave `ready` transiently above the bound;
                // their own registration will re-run this scan.
                break;
            };
            budget = budget.saturating_sub(1);
            let meta = match ev.live.get(&record.key) {
                Some(m) if m.stamp == record.stamp => Arc::clone(m),
                // Stale record (key removed or re-filled since it was
                // enqueued): drop it without counting an eviction.
                _ => continue,
            };
            let freq = meta.freq.load(Ordering::Relaxed);
            if !forced && freq > 0 {
                // Promote (probation → protected) or rotate (protected)
                // with decayed frequency instead of evicting a hot entry.
                meta.freq
                    .store(if from_probation { 0 } else { freq / 2 }, Ordering::Relaxed);
                ev.protected.push_back(record);
                continue;
            }
            // Evict under the victim shard's writer mutex, re-checking
            // identity by stamp: a concurrent remove + re-fill of the key
            // must never have its *new* entry evicted by this record.
            let evicted = self.shard(&record.key).mutate(|map| {
                if matches!(map.get(&record.key), Some(Slot::Ready(e)) if e.meta.stamp == record.stamp)
                {
                    map.remove(&record.key);
                    true
                } else {
                    false
                }
            });
            ev.live.remove(&record.key);
            if evicted {
                self.counters.ready.fetch_sub(1, Ordering::Relaxed);
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Clones out every ready value — a consistent-enough snapshot taken
    /// shard by shard, without holding any lock across the whole scan.
    pub fn snapshot(&self) -> Vec<Arc<V>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = Arc::clone(&*shard.map.lock());
            out.extend(map.values().filter_map(|slot| match slot {
                Slot::Ready(e) => Some(Arc::clone(&e.value)),
                Slot::InFlight(_) => None,
            }));
        }
        out
    }

    /// Number of ready entries, counted by scanning the shards — the
    /// ground truth the [`ShardedCache::ready_entries`] atomic is tested
    /// against. Prefer `ready_entries` (O(1)) on hot paths.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.map
                    .lock()
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Exact ready-entry count from the maintained atomic (no scans).
    pub fn ready_entries(&self) -> usize {
        self.counters.ready.load(Ordering::Relaxed)
    }

    /// Whether the cache holds no ready entries.
    pub fn is_empty(&self) -> bool {
        self.ready_entries() == 0
    }

    /// Snapshots the counters. `entries` comes from the maintained atomic
    /// ready count — this never scans the shards.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.sum(),
            misses: self.counters.misses.load(Ordering::Relaxed),
            computations: self.counters.computations.load(Ordering::Relaxed),
            coalesced_waits: self.counters.coalesced_waits.load(Ordering::Relaxed),
            direct_inserts: self.counters.direct_inserts.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            invalidations: self.counters.invalidations.load(Ordering::Relaxed),
            entries: self.counters.ready.load(Ordering::Relaxed) as u64,
        }
    }

    /// Checks the cache's structural invariants, intended for tests and
    /// the `cache-bench` smoke at quiescence (no concurrent mutators):
    /// the atomic ready count equals a full scan, and when bounded, the
    /// order state is consistent with and bounded by the live entries.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let scanned = self.len();
        let ready = self.ready_entries();
        if scanned != ready {
            return Err(format!(
                "ready-entry counter {ready} != scanned entry count {scanned}"
            ));
        }
        if let Some(capacity) = self.capacity {
            if ready > capacity {
                return Err(format!("{ready} ready entries exceed capacity {capacity}"));
            }
            let ev = self.eviction.lock();
            if ev.live.len() != ready {
                return Err(format!(
                    "live-stamp index holds {} keys for {ready} ready entries",
                    ev.live.len()
                ));
            }
            let bound = 2 * ev.live.len() + 64 + 1;
            if ev.order_len() > bound {
                return Err(format!(
                    "order queues hold {} records, over the compaction bound {bound}",
                    ev.order_len()
                ));
            }
        }
        Ok(())
    }
}

impl<K, V> Default for ShardedCache<K, V>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> std::fmt::Debug for ShardedCache<K, V>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn hit_after_compute_and_counters() {
        let cache: ShardedCache<u64, String> = ShardedCache::new();
        let (v, outcome) = cache.get_or_compute(&7, || "seven".to_string());
        assert_eq!(outcome, CacheOutcome::Computed);
        assert_eq!(&*v, "seven");
        let (v2, outcome2) = cache.get_or_compute(&7, || unreachable!("must hit"));
        assert_eq!(outcome2, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&v, &v2));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.computations), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.in_flight(), 0);
    }

    #[test]
    fn hit_rate_is_zero_before_first_lookup_and_never_nan() {
        let stats = CacheStats::default();
        assert_eq!(stats.hit_rate(), 0.0, "empty stats must not be NaN");
        assert!(stats.hit_rate().is_finite());
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        assert!(cache.stats().hit_rate().is_finite());
        let _ = cache.get_or_compute(&1, || 1);
        let _ = cache.get(&1);
        assert_eq!(cache.stats().hit_rate(), 0.5);
    }

    #[test]
    fn concurrent_misses_compute_exactly_once() {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new());
        let computed = Arc::new(AtomicUsize::new(0));
        let threads = 8;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                scope.spawn(move || {
                    let (v, _) = cache.get_or_compute(&42, || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        4242
                    });
                    assert_eq!(*v, 4242);
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "single flight");
        let stats = cache.stats();
        assert_eq!(stats.computations, 1);
        assert_eq!(stats.hits + stats.coalesced_waits, threads - 1);
    }

    #[test]
    fn panicked_flight_is_taken_over() {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new());
        let c2 = Arc::clone(&cache);
        let panicker = std::thread::spawn(move || {
            let _ = c2.get_or_compute(&1, || panic!("simulated compile failure"));
        });
        assert!(panicker.join().is_err());
        // The key is not wedged: the next caller computes it.
        let (v, outcome) = cache.get_or_compute(&1, || 11);
        assert_eq!((*v, outcome), (11, CacheOutcome::Computed));
    }

    #[test]
    fn failed_flight_is_not_cached_and_retries() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        let err = cache
            .try_get_or_compute(&5, || Err::<u64, &str>("injected"))
            .expect_err("leader must see its own error");
        assert_eq!(err, "injected");
        assert_eq!(cache.len(), 0, "errors are never cached");
        assert!(cache.get(&5).is_none());
        // The key is not wedged: the next caller computes fresh.
        let (v, outcome) = cache
            .try_get_or_compute(&5, || Ok::<u64, &str>(55))
            .expect("retry succeeds");
        assert_eq!((*v, outcome), (55, CacheOutcome::Computed));
        let stats = cache.stats();
        assert_eq!(stats.computations, 1, "only the success counts");
        assert_eq!(stats.misses, 2, "both calls missed");
    }

    #[test]
    fn followers_of_failed_leader_retry_instead_of_hanging() {
        // One leader fails (errors or panics) while several followers are
        // already blocked on its flight. Every follower must terminate:
        // one takes over and computes, the rest share the result.
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new());
        let started = Arc::new(std::sync::Barrier::new(2));
        let leader = {
            let cache = Arc::clone(&cache);
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                let _ = cache.try_get_or_compute(&9, || {
                    started.wait(); // followers may now pile on
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    Err::<u64, &str>("leader fails")
                });
            })
        };
        started.wait();
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let (v, _) = cache
                        .try_get_or_compute(&9, || Ok::<u64, &str>(99))
                        .expect("follower retry must succeed");
                    *v
                })
            })
            .collect();
        leader.join().expect("leader thread must not die");
        for f in followers {
            assert_eq!(f.join().expect("follower must terminate"), 99);
        }
        let stats = cache.stats();
        assert_eq!(stats.computations, 1, "exactly one successful fill");
        assert!(cache.get(&9).is_some());
    }

    #[test]
    fn followers_of_panicked_leader_do_not_hang() {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new());
        let started = Arc::new(std::sync::Barrier::new(2));
        let leader = {
            let cache = Arc::clone(&cache);
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                let _ = cache.get_or_compute(&3, || {
                    started.wait();
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    panic!("injected compile panic");
                });
            })
        };
        started.wait();
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let (v, _) = cache.get_or_compute(&3, || 33);
                    *v
                })
            })
            .collect();
        assert!(leader.join().is_err(), "leader panics");
        for f in followers {
            assert_eq!(f.join().expect("follower must terminate"), 33);
        }
    }

    #[test]
    fn remove_evicts_ready_entries_and_counts_invalidations() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        cache.insert(1, Arc::new(10));
        assert!(cache.remove(&1), "ready entry removed");
        assert!(!cache.remove(&1), "second remove is a no-op");
        assert!(!cache.remove(&2), "absent key is a no-op");
        assert!(cache.get(&1).is_none());
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 0);
        // Removed keys recompute on next sight.
        let (_, outcome) = cache.get_or_compute(&1, || 11);
        assert_eq!(outcome, CacheOutcome::Computed);
    }

    #[test]
    fn snapshot_and_direct_insert() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        for k in 0..100 {
            cache.insert(k, Arc::new(k * 2));
        }
        assert_eq!(cache.len(), 100);
        let mut values: Vec<u64> = cache.snapshot().iter().map(|v| **v).collect();
        values.sort_unstable();
        assert_eq!(values, (0..100).map(|k| k * 2).collect::<Vec<_>>());
        assert_eq!(cache.stats().direct_inserts, 100);
        cache.check_invariants().expect("invariants");
    }

    #[test]
    fn insert_many_matches_individual_inserts() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        cache.insert_many((0..500).map(|k| (k, Arc::new(k * 3))));
        assert_eq!(cache.len(), 500);
        assert_eq!(cache.ready_entries(), 500);
        for k in 0..500 {
            assert_eq!(*cache.get(&k).expect("present"), k * 3);
        }
        assert_eq!(cache.stats().direct_inserts, 500);
        cache.check_invariants().expect("invariants");
        // Re-inserting the same keys replaces, never double-counts.
        cache.insert_many((0..500).map(|k| (k, Arc::new(k * 4))));
        assert_eq!(cache.ready_entries(), 500);
        assert_eq!(*cache.get(&7).expect("present"), 28);
        cache.check_invariants().expect("invariants");
    }

    #[test]
    fn bounded_cache_evicts_unreferenced_entries_in_insertion_order() {
        let cache: ShardedCache<u64, u64> = ShardedCache::bounded(1);
        assert_eq!(cache.capacity(), Some(1));
        let (_, o1) = cache.get_or_compute(&1, || 10);
        let (_, o2) = cache.get_or_compute(&2, || 20);
        // Key 1 was evicted to make room for key 2, so it recomputes.
        let (v1, o3) = cache.get_or_compute(&1, || 11);
        assert_eq!(
            (o1, o2, o3),
            (
                CacheOutcome::Computed,
                CacheOutcome::Computed,
                CacheOutcome::Computed
            )
        );
        assert_eq!(*v1, 11);
        let stats = cache.stats();
        assert_eq!(stats.computations, 3);
        assert!(stats.entries <= 1);
        assert!(stats.evictions >= 2, "evictions={}", stats.evictions);
        cache.check_invariants().expect("invariants");
    }

    #[test]
    fn bounded_cache_keeps_newest_entries() {
        // Without any hits, the segmented-LRU policy degenerates to
        // insertion order: the newest entries survive.
        let cache: ShardedCache<u64, u64> = ShardedCache::bounded(4);
        for k in 0..32 {
            cache.insert(k, Arc::new(k));
        }
        assert_eq!(cache.len(), 4);
        for k in 28..32 {
            assert!(cache.get(&k).is_some(), "key {k} should survive");
        }
        for k in 0..28 {
            assert!(cache.get(&k).is_none(), "key {k} should be evicted");
        }
        assert_eq!(cache.stats().evictions, 28);
        cache.check_invariants().expect("invariants");
    }

    #[test]
    fn hot_entries_survive_a_churning_tail() {
        // The capacity-thrash fix: a hit-while-resident entry is promoted
        // to the protected segment and outlives a stream of one-shot keys
        // that would have FIFO-evicted it.
        let cache: ShardedCache<u64, u64> = ShardedCache::bounded(4);
        cache.insert(1000, Arc::new(1));
        for _ in 0..3 {
            assert!(cache.get(&1000).is_some());
        }
        for k in 0..64 {
            cache.insert(k, Arc::new(k));
        }
        assert!(
            cache.get(&1000).is_some(),
            "hot key must survive 64 cold inserts at capacity 4"
        );
        assert_eq!(cache.len(), 4);
        cache.check_invariants().expect("invariants");
    }

    #[test]
    fn stale_order_records_do_not_leak_or_evict_reinserted_keys() {
        // Regression for the FIFO-order leak: an invalidate/re-insert
        // loop used to grow the order list without bound, and the stale
        // front records could evict a re-inserted key prematurely.
        let cache: ShardedCache<u64, u64> = ShardedCache::bounded(8);
        for k in 0..8 {
            cache.insert(k, Arc::new(k));
        }
        for round in 0..1000u64 {
            let k = round % 8;
            assert!(cache.remove(&k), "round {round}: live entry removed");
            cache.insert(k, Arc::new(k + round));
        }
        // Survivor set: exactly the 8 keys, all at their newest values.
        assert_eq!(cache.len(), 8);
        for k in 0..8 {
            assert!(cache.get(&k).is_some(), "key {k} must survive the churn");
        }
        // No evictions ever happened — the cache never exceeded capacity,
        // so any eviction would have been a stale-record bug.
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0, "stale records must not evict");
        assert_eq!(stats.invalidations, 1000);
        // The order state stayed bounded (the old design held 1008 dead
        // records here; compaction keeps it near the live count).
        let order_len = cache.eviction.lock().order_len();
        assert!(
            order_len <= 2 * 8 + 64 + 1,
            "order list leaked: {order_len} records for 8 live entries"
        );
        cache.check_invariants().expect("invariants");
    }

    #[test]
    fn ready_counter_matches_scan_under_mixed_operations() {
        let cache: ShardedCache<u64, u64> = ShardedCache::bounded(16);
        for k in 0..64 {
            cache.insert(k, Arc::new(k));
            if k % 3 == 0 {
                cache.remove(&(k / 2));
            }
            if k % 5 == 0 {
                let _ = cache.get_or_compute(&(k + 1000), || k);
            }
            assert_eq!(
                cache.ready_entries(),
                cache.len(),
                "counter diverged at step {k}"
            );
        }
        cache.check_invariants().expect("invariants");
    }

    #[test]
    fn ready_counter_matches_scan_under_concurrent_churn() {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::bounded(32));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let k = (t * 1000 + i) % 96;
                        match i % 4 {
                            0 => cache.insert(k, Arc::new(i)),
                            1 => {
                                let _ = cache.get_or_compute(&k, || i);
                            }
                            2 => {
                                let _ = cache.get(&k);
                            }
                            _ => {
                                let _ = cache.remove(&k);
                            }
                        }
                    }
                });
            }
        });
        cache.check_invariants().expect("invariants after churn");
    }

    #[test]
    fn eviction_racing_a_committing_flight_strands_no_one() {
        // A bounded cache under simultaneous fills: flights commit while
        // other threads' eviction scans trim the same shards. Nobody may
        // hang, every caller gets its value, and the counters stay
        // consistent (evictions never exceed successful fills).
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::bounded(4));
        let threads = 8u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let k = (t + i) % 32;
                        let (v, _) = cache.get_or_compute(&k, || k * 7);
                        assert_eq!(*v, k * 7, "wrong value for key {k}");
                    }
                });
            }
        });
        let stats = cache.stats();
        let fills = stats.computations + stats.direct_inserts;
        assert!(
            stats.evictions <= fills,
            "evictions {} exceed fills {fills} — double-counted",
            stats.evictions
        );
        assert_eq!(
            stats.entries as usize,
            cache.len(),
            "ready counter diverged under racing eviction"
        );
        cache.check_invariants().expect("invariants");
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache: ShardedCache<u64, u64> = ShardedCache::with_shards(16);
        for k in 0..256 {
            cache.insert(k, Arc::new(k));
        }
        let occupied = cache
            .shards
            .iter()
            .filter(|s| !s.map.lock().is_empty())
            .count();
        assert!(occupied >= 12, "only {occupied}/16 shards occupied");
    }

    #[test]
    fn cross_thread_visibility_through_generation_refresh() {
        // A value inserted on one thread is visible to a fresh thread
        // (cold TLS) and to this thread after the generation bump.
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new());
        cache.insert(5, Arc::new(50));
        assert_eq!(*cache.get(&5).expect("same-thread read"), 50);
        let c2 = Arc::clone(&cache);
        let handle = std::thread::spawn(move || c2.get(&5).map(|v| *v));
        assert_eq!(handle.join().expect("reader thread"), Some(50));
        // Mutate and re-read on this thread: the bump invalidates the
        // cached snapshot immediately.
        cache.insert(5, Arc::new(51));
        assert_eq!(*cache.get(&5).expect("post-update read"), 51);
        cache.remove(&5);
        assert!(cache.get(&5).is_none(), "removal visible immediately");
    }
}
