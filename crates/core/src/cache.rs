//! Sharded, read-mostly program cache with single-flight compilation.
//!
//! The online stage is on the request path: under concurrent serving, a
//! single `Mutex<HashMap>` serializes every lookup, and the naive
//! check-then-insert pattern lets N threads that miss on the same shape
//! all run the (micro- to millisecond) polymerization, N−1 of them
//! wasted — a classic cache stampede. This cache fixes both:
//!
//! * **Sharding** — keys hash to one of N shards, each behind its own
//!   `parking_lot::RwLock`. Hits take a shard *read* lock, so the steady
//!   state (every hot shape cached) is reader-parallel across threads and
//!   contention-free across shards.
//! * **Single flight** — a miss installs an in-flight slot before
//!   computing. Concurrent misses on the same key find the slot and block
//!   on its condvar instead of re-running the computation; exactly one
//!   thread polymerizes each unique shape, and everyone shares the
//!   resulting `Arc`. If the computing thread panics, the slot is
//!   abandoned and one waiter takes over, so a poisoned key cannot wedge
//!   the cache.
//!
//! Counters are lock-free atomics; [`ShardedCache::stats`] snapshots them
//! for serving telemetry.
//!
//! An optional **capacity bound** ([`ShardedCache::bounded`]) evicts the
//! least recently *inserted* ready entry once the cache exceeds the bound
//! (FIFO order, tracked globally across shards). Serving fleets whose
//! shape universe outgrows memory re-polymerize evicted shapes on next
//! sight; the `evictions` counter makes the churn observable. Unbounded
//! caches (the default) never take the order-list lock.
//!
//! Failure story: a computing closure that returns `Err` (or panics) never
//! caches its result — the in-flight slot is cleared, waiters are woken,
//! and the next caller retries from scratch
//! ([`ShardedCache::try_get_or_compute`]). Entries found invalid after the
//! fact are evicted with [`ShardedCache::remove`] (counted as
//! `invalidations`).

// Online hot path: failures must surface as typed errors, not panics.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, RwLock};

/// Default shard count: enough to make cross-shard collisions rare at
/// serving-realistic thread counts, small enough to stay cheap to snapshot.
pub const DEFAULT_SHARDS: usize = 16;

/// How a value came out of [`ShardedCache::get_or_compute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The value was already cached.
    Hit,
    /// This call computed the value (the single flight).
    Computed,
    /// Another thread was computing the value; this call waited for it.
    Waited,
}

/// A point-in-time snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no entry (each starts one computation).
    pub misses: u64,
    /// Computations that ran to completion (the polymerization count —
    /// with single flight this equals the number of unique keys computed).
    pub computations: u64,
    /// Lookups that blocked on another thread's in-flight computation
    /// instead of re-running it (each is one saved computation).
    pub coalesced_waits: u64,
    /// Entries inserted directly (e.g. a loaded ahead-of-time bundle).
    pub direct_inserts: u64,
    /// Ready entries evicted by the capacity bound (0 when unbounded).
    pub evictions: u64,
    /// Ready entries explicitly evicted by [`ShardedCache::remove`]
    /// (e.g. entries that failed post-fill validation — poisoned entries).
    pub invalidations: u64,
    /// Cached entries at snapshot time.
    pub entries: u64,
}

impl CacheStats {
    /// Computations started but not yet finished at snapshot time.
    pub fn in_flight(&self) -> u64 {
        self.misses.saturating_sub(self.computations)
    }

    /// Fraction of lookups answered without computing, `NaN` if none.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses + self.coalesced_waits;
        self.hits as f64 / lookups as f64
    }

    /// Field-wise sum of two snapshots (e.g. the GEMM and conv caches of
    /// an engine, reported as one).
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            computations: self.computations + other.computations,
            coalesced_waits: self.coalesced_waits + other.coalesced_waits,
            direct_inserts: self.direct_inserts + other.direct_inserts,
            evictions: self.evictions + other.evictions,
            invalidations: self.invalidations + other.invalidations,
            entries: self.entries + other.entries,
        }
    }

    /// Publishes this snapshot into a telemetry registry (collector style:
    /// the cache's own atomics stay authoritative; the registry's
    /// `cache.*` counters are overwritten with the snapshot, so they
    /// always equal a [`ShardedCache::stats`] call made at the same time).
    pub fn export_to(&self, registry: &mikpoly_telemetry::Registry) {
        registry.counter("cache.hits").store(self.hits);
        registry.counter("cache.misses").store(self.misses);
        registry
            .counter("cache.computations")
            .store(self.computations);
        registry
            .counter("cache.coalesced_waits")
            .store(self.coalesced_waits);
        registry
            .counter("cache.direct_inserts")
            .store(self.direct_inserts);
        registry.counter("cache.evictions").store(self.evictions);
        registry
            .counter("cache.invalidations")
            .store(self.invalidations);
        registry.counter("cache.entries").store(self.entries);
    }
}

/// An in-flight computation other threads can await.
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    ready: Condvar,
}

enum FlightState<V> {
    Pending,
    Done(Arc<V>),
    /// The computing thread panicked; a waiter must restart the flight.
    Abandoned,
}

enum Slot<V> {
    Ready(Arc<V>),
    InFlight(Arc<Flight<V>>),
}

struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    computations: AtomicU64,
    coalesced_waits: AtomicU64,
    direct_inserts: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

/// Removes the in-flight slot and wakes waiters if the computation never
/// completed (i.e. the closure panicked).
struct FlightGuard<'a, K: Eq + Hash, V> {
    shard: &'a RwLock<HashMap<K, Slot<V>>>,
    key: Option<K>,
    flight: Arc<Flight<V>>,
}

impl<K: Eq + Hash, V> Drop for FlightGuard<'_, K, V> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            self.shard.write().remove(&key);
            *self.flight.state.lock() = FlightState::Abandoned;
            self.flight.ready.notify_all();
        }
    }
}

/// A sharded map from keys to `Arc`'d values with single-flight fills.
pub struct ShardedCache<K, V> {
    shards: Vec<RwLock<HashMap<K, Slot<V>>>>,
    counters: Counters,
    /// Maximum ready entries; `None` means unbounded (no order tracking).
    capacity: Option<usize>,
    /// Global FIFO insertion order; only touched when `capacity` is set.
    order: Mutex<std::collections::VecDeque<K>>,
}

impl<K: Eq + Hash + Clone, V> ShardedCache<K, V> {
    /// A cache with [`DEFAULT_SHARDS`] shards and no capacity bound.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (power of two recommended).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_shards_and_capacity(shards, None)
    }

    /// A cache holding at most `capacity` ready entries; once full, the
    /// oldest-inserted entry is evicted (FIFO). A `capacity` of zero is
    /// treated as one — an empty bound would evict every fill before its
    /// caller returned.
    pub fn bounded(capacity: usize) -> Self {
        Self::with_shards_and_capacity(DEFAULT_SHARDS, Some(capacity.max(1)))
    }

    fn with_shards_and_capacity(shards: usize, capacity: Option<usize>) -> Self {
        assert!(shards > 0, "cache needs at least one shard");
        Self {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            counters: Counters {
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                computations: AtomicU64::new(0),
                coalesced_waits: AtomicU64::new(0),
                direct_inserts: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                invalidations: AtomicU64::new(0),
            },
            capacity,
            order: Mutex::new(std::collections::VecDeque::new()),
        }
    }

    /// The capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Records a ready insert in the FIFO order list and evicts the oldest
    /// ready entries until the bound holds again. No-op when unbounded.
    /// Stale order entries (keys already evicted or replaced) are skipped
    /// without counting as evictions. Lock order is order-list → shard;
    /// nothing takes the order lock while holding a shard lock, so the
    /// two cannot deadlock.
    fn enforce_capacity(&self, key: &K) {
        let Some(capacity) = self.capacity else {
            return;
        };
        let mut order = self.order.lock();
        order.push_back(key.clone());
        while self.len() > capacity {
            let Some(victim) = order.pop_front() else {
                break;
            };
            let mut shard = self.shard(&victim).write();
            if matches!(shard.get(&victim), Some(Slot::Ready(_))) {
                shard.remove(&victim);
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, Slot<V>>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Looks `key` up without filling; counts as a hit when present.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let guard = self.shard(key).read();
        match guard.get(key) {
            Some(Slot::Ready(v)) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(v))
            }
            _ => None,
        }
    }

    /// Returns the cached value for `key`, computing it with `compute` on
    /// a miss. Concurrent callers for the same key coalesce onto a single
    /// computation; the outcome says which role this call played.
    pub fn get_or_compute(&self, key: &K, compute: impl FnOnce() -> V) -> (Arc<V>, CacheOutcome) {
        match self.try_get_or_compute(key, || Ok::<V, std::convert::Infallible>(compute())) {
            Ok(found) => found,
            Err(infallible) => match infallible {},
        }
    }

    /// Like [`ShardedCache::get_or_compute`], but the computation may
    /// fail. An `Err` is **never cached**: the in-flight slot is removed
    /// and every coalesced waiter is woken to retry (one of them becomes
    /// the next leader), exactly as if the closure had panicked. The
    /// error is returned to the leader only; waiters re-run `compute`
    /// under their own call's closure.
    pub fn try_get_or_compute<E>(
        &self,
        key: &K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<(Arc<V>, CacheOutcome), E> {
        let shard = self.shard(key);
        // Fast path: shared lock only.
        {
            let guard = shard.read();
            if let Some(Slot::Ready(v)) = guard.get(key) {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(v), CacheOutcome::Hit));
            }
        }
        loop {
            // Decide this thread's role under the exclusive lock…
            let flight = {
                let mut guard = shard.write();
                match guard.get(key) {
                    Some(Slot::Ready(v)) => {
                        self.counters.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok((Arc::clone(v), CacheOutcome::Hit));
                    }
                    Some(Slot::InFlight(flight)) => {
                        let flight = Arc::clone(flight);
                        drop(guard);
                        match self.await_flight(&flight) {
                            Some(v) => return Ok((v, CacheOutcome::Waited)),
                            // Computing thread panicked or failed: retry
                            // and take over the flight.
                            None => continue,
                        }
                    }
                    None => {
                        self.counters.misses.fetch_add(1, Ordering::Relaxed);
                        let flight = Arc::new(Flight {
                            state: Mutex::new(FlightState::Pending),
                            ready: Condvar::new(),
                        });
                        guard.insert(key.clone(), Slot::InFlight(Arc::clone(&flight)));
                        flight
                    }
                }
            };
            // …then compute outside any shard lock. The guard clears the
            // in-flight slot and wakes waiters on *any* early exit —
            // panic or `Err` — so a failed leader can never wedge them.
            let mut guard = FlightGuard {
                shard,
                key: Some(key.clone()),
                flight: Arc::clone(&flight),
            };
            let value = Arc::new(compute()?);
            guard.key = None; // disarm: the fill is committing
            shard
                .write()
                .insert(key.clone(), Slot::Ready(Arc::clone(&value)));
            *flight.state.lock() = FlightState::Done(Arc::clone(&value));
            flight.ready.notify_all();
            self.counters.computations.fetch_add(1, Ordering::Relaxed);
            self.enforce_capacity(key);
            return Ok((value, CacheOutcome::Computed));
        }
    }

    /// Evicts `key`'s ready entry, if any (counted as an invalidation —
    /// the knob for entries found corrupt after the fact). An in-flight
    /// slot is left alone: its leader still owns the fill and its waiters
    /// its condvar.
    pub fn remove(&self, key: &K) -> bool {
        let mut guard = self.shard(key).write();
        if matches!(guard.get(key), Some(Slot::Ready(_))) {
            guard.remove(key);
            self.counters.invalidations.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Blocks until `flight` resolves; `None` means it was abandoned.
    fn await_flight(&self, flight: &Flight<V>) -> Option<Arc<V>> {
        self.counters
            .coalesced_waits
            .fetch_add(1, Ordering::Relaxed);
        let mut state = flight.state.lock();
        loop {
            match &*state {
                FlightState::Done(v) => return Some(Arc::clone(v)),
                FlightState::Abandoned => return None,
                FlightState::Pending => flight.ready.wait(&mut state),
            }
        }
    }

    /// Inserts a ready value, replacing any previous entry.
    pub fn insert(&self, key: K, value: Arc<V>) {
        self.counters.direct_inserts.fetch_add(1, Ordering::Relaxed);
        self.shard(&key)
            .write()
            .insert(key.clone(), Slot::Ready(value));
        self.enforce_capacity(&key);
    }

    /// Clones out every ready value — a consistent-enough snapshot taken
    /// shard by shard, without holding any lock across the whole scan.
    pub fn snapshot(&self) -> Vec<Arc<V>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let guard = shard.read();
            out.extend(guard.values().filter_map(|slot| match slot {
                Slot::Ready(v) => Some(Arc::clone(v)),
                Slot::InFlight(_) => None,
            }));
        }
        out
    }

    /// Number of ready entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Whether the cache holds no ready entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            computations: self.counters.computations.load(Ordering::Relaxed),
            coalesced_waits: self.counters.coalesced_waits.load(Ordering::Relaxed),
            direct_inserts: self.counters.direct_inserts.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            invalidations: self.counters.invalidations.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

impl<K: Eq + Hash + Clone, V> Default for ShardedCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V> std::fmt::Debug for ShardedCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn hit_after_compute_and_counters() {
        let cache: ShardedCache<u64, String> = ShardedCache::new();
        let (v, outcome) = cache.get_or_compute(&7, || "seven".to_string());
        assert_eq!(outcome, CacheOutcome::Computed);
        assert_eq!(&*v, "seven");
        let (v2, outcome2) = cache.get_or_compute(&7, || unreachable!("must hit"));
        assert_eq!(outcome2, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&v, &v2));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.computations), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.in_flight(), 0);
    }

    #[test]
    fn concurrent_misses_compute_exactly_once() {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new());
        let computed = Arc::new(AtomicUsize::new(0));
        let threads = 8;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                scope.spawn(move || {
                    let (v, _) = cache.get_or_compute(&42, || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        4242
                    });
                    assert_eq!(*v, 4242);
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "single flight");
        let stats = cache.stats();
        assert_eq!(stats.computations, 1);
        assert_eq!(stats.hits + stats.coalesced_waits, threads - 1);
    }

    #[test]
    fn panicked_flight_is_taken_over() {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new());
        let c2 = Arc::clone(&cache);
        let panicker = std::thread::spawn(move || {
            let _ = c2.get_or_compute(&1, || panic!("simulated compile failure"));
        });
        assert!(panicker.join().is_err());
        // The key is not wedged: the next caller computes it.
        let (v, outcome) = cache.get_or_compute(&1, || 11);
        assert_eq!((*v, outcome), (11, CacheOutcome::Computed));
    }

    #[test]
    fn failed_flight_is_not_cached_and_retries() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        let err = cache
            .try_get_or_compute(&5, || Err::<u64, &str>("injected"))
            .expect_err("leader must see its own error");
        assert_eq!(err, "injected");
        assert_eq!(cache.len(), 0, "errors are never cached");
        assert!(cache.get(&5).is_none());
        // The key is not wedged: the next caller computes fresh.
        let (v, outcome) = cache
            .try_get_or_compute(&5, || Ok::<u64, &str>(55))
            .expect("retry succeeds");
        assert_eq!((*v, outcome), (55, CacheOutcome::Computed));
        let stats = cache.stats();
        assert_eq!(stats.computations, 1, "only the success counts");
        assert_eq!(stats.misses, 2, "both calls missed");
    }

    #[test]
    fn followers_of_failed_leader_retry_instead_of_hanging() {
        // One leader fails (errors or panics) while several followers are
        // already blocked on its flight. Every follower must terminate:
        // one takes over and computes, the rest share the result.
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new());
        let started = Arc::new(std::sync::Barrier::new(2));
        let leader = {
            let cache = Arc::clone(&cache);
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                let _ = cache.try_get_or_compute(&9, || {
                    started.wait(); // followers may now pile on
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    Err::<u64, &str>("leader fails")
                });
            })
        };
        started.wait();
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let (v, _) = cache
                        .try_get_or_compute(&9, || Ok::<u64, &str>(99))
                        .expect("follower retry must succeed");
                    *v
                })
            })
            .collect();
        leader.join().expect("leader thread must not die");
        for f in followers {
            assert_eq!(f.join().expect("follower must terminate"), 99);
        }
        let stats = cache.stats();
        assert_eq!(stats.computations, 1, "exactly one successful fill");
        assert!(cache.get(&9).is_some());
    }

    #[test]
    fn followers_of_panicked_leader_do_not_hang() {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new());
        let started = Arc::new(std::sync::Barrier::new(2));
        let leader = {
            let cache = Arc::clone(&cache);
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                let _ = cache.get_or_compute(&3, || {
                    started.wait();
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    panic!("injected compile panic");
                });
            })
        };
        started.wait();
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let (v, _) = cache.get_or_compute(&3, || 33);
                    *v
                })
            })
            .collect();
        assert!(leader.join().is_err(), "leader panics");
        for f in followers {
            assert_eq!(f.join().expect("follower must terminate"), 33);
        }
    }

    #[test]
    fn remove_evicts_ready_entries_and_counts_invalidations() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        cache.insert(1, Arc::new(10));
        assert!(cache.remove(&1), "ready entry removed");
        assert!(!cache.remove(&1), "second remove is a no-op");
        assert!(!cache.remove(&2), "absent key is a no-op");
        assert!(cache.get(&1).is_none());
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 0);
        // Removed keys recompute on next sight.
        let (_, outcome) = cache.get_or_compute(&1, || 11);
        assert_eq!(outcome, CacheOutcome::Computed);
    }

    #[test]
    fn snapshot_and_direct_insert() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        for k in 0..100 {
            cache.insert(k, Arc::new(k * 2));
        }
        assert_eq!(cache.len(), 100);
        let mut values: Vec<u64> = cache.snapshot().iter().map(|v| **v).collect();
        values.sort_unstable();
        assert_eq!(values, (0..100).map(|k| k * 2).collect::<Vec<_>>());
        assert_eq!(cache.stats().direct_inserts, 100);
    }

    #[test]
    fn bounded_cache_evicts_fifo() {
        let cache: ShardedCache<u64, u64> = ShardedCache::bounded(1);
        assert_eq!(cache.capacity(), Some(1));
        let (_, o1) = cache.get_or_compute(&1, || 10);
        let (_, o2) = cache.get_or_compute(&2, || 20);
        // Key 1 was evicted to make room for key 2, so it recomputes.
        let (v1, o3) = cache.get_or_compute(&1, || 11);
        assert_eq!(
            (o1, o2, o3),
            (
                CacheOutcome::Computed,
                CacheOutcome::Computed,
                CacheOutcome::Computed
            )
        );
        assert_eq!(*v1, 11);
        let stats = cache.stats();
        assert_eq!(stats.computations, 3);
        assert!(stats.entries <= 1);
        assert!(stats.evictions >= 2, "evictions={}", stats.evictions);
    }

    #[test]
    fn bounded_cache_keeps_newest_entries() {
        let cache: ShardedCache<u64, u64> = ShardedCache::bounded(4);
        for k in 0..32 {
            cache.insert(k, Arc::new(k));
        }
        assert_eq!(cache.len(), 4);
        // The four newest keys survive; everything older is gone.
        for k in 28..32 {
            assert!(cache.get(&k).is_some(), "key {k} should survive");
        }
        for k in 0..28 {
            assert!(cache.get(&k).is_none(), "key {k} should be evicted");
        }
        assert_eq!(cache.stats().evictions, 28);
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache: ShardedCache<u64, u64> = ShardedCache::with_shards(16);
        for k in 0..256 {
            cache.insert(k, Arc::new(k));
        }
        let occupied = cache.shards.iter().filter(|s| !s.read().is_empty()).count();
        assert!(occupied >= 12, "only {occupied}/16 shards occupied");
    }
}
