//! Retry and circuit-breaker policies for the serving runtime.
//!
//! Two failure regimes need different medicine. *Transient* faults (a
//! one-off device error) clear on their own: the right response is a
//! bounded retry with exponential backoff, paid in virtual device time.
//! *Persistent* faults (a shape whose compilation panics every time) do
//! not: retrying burns the full failure cost on every request of that
//! shape. The per-shape [`CircuitBreaker`] cuts that loss — after
//! [`BreakerPolicy::failure_threshold`] consecutive failures the shape's
//! breaker *opens* and requests route straight to the degraded compile
//! path; after [`BreakerPolicy::cooldown_ns`] of virtual time it
//! *half-opens* and lets exactly one probe retry the full path, closing
//! again on success.
//!
//! The breaker is keyed by shape (not request): a poisoned shape must not
//! affect healthy traffic. State updates happen from concurrently
//! compiling workers, so with more than one worker the order of
//! success/failure observations is scheduling-dependent; the serving
//! *dispositions* remain exhaustive regardless, and single-worker runs
//! (the breaker unit tests) are fully deterministic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Bounded retry with exponential backoff, for transient faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Virtual backoff before the first retry, ns.
    pub backoff_ns: f64,
    /// Backoff multiplier per subsequent retry.
    pub backoff_multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff_ns: 2_000.0,
            backoff_multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// The virtual backoff before retry number `retry` (0-based).
    pub fn backoff_for(&self, retry: u32) -> f64 {
        self.backoff_ns * self.backoff_multiplier.powi(retry as i32)
    }
}

/// When a shape's breaker opens and how long it stays open.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive full-path failures that open the breaker.
    pub failure_threshold: u32,
    /// Virtual time an open breaker blocks the full path before
    /// half-opening for a probe, ns.
    pub cooldown_ns: f64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown_ns: 1_000_000.0, // 1 ms of virtual serving time
        }
    }
}

/// Observable state of one shape's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests take the full compile path.
    Closed,
    /// Tripped: requests route straight to the degraded path.
    Open,
    /// Cooldown elapsed: one probe may retry the full path.
    HalfOpen,
}

/// What the breaker allows for one request of a shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Breaker closed: take the full path.
    Allow,
    /// Breaker half-open and this request is the probe: take the full
    /// path; its outcome decides whether the breaker closes or re-opens.
    Probe,
    /// Breaker open (or a probe is already in flight): take the degraded
    /// path without attempting the full one.
    Degrade,
}

#[derive(Debug, Default)]
struct ShapeBreaker {
    consecutive_failures: u32,
    open: bool,
    open_until_ns: f64,
    probe_outstanding: bool,
}

/// Per-shape circuit breaker over virtual serving time.
#[derive(Debug)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    shapes: Mutex<HashMap<u64, ShapeBreaker>>,
    opens: AtomicU64,
}

impl CircuitBreaker {
    /// A breaker with the given policy and no tripped shapes.
    pub fn new(policy: BreakerPolicy) -> Self {
        Self {
            policy,
            shapes: Mutex::new(HashMap::new()),
            opens: AtomicU64::new(0),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> BreakerPolicy {
        self.policy
    }

    /// Decides how a request of shape `key` arriving at virtual `now_ns`
    /// may proceed. A [`BreakerDecision::Probe`] reserves the single
    /// half-open probe slot; the caller must report the probe's outcome
    /// via [`CircuitBreaker::record_success`] or
    /// [`CircuitBreaker::record_failure`].
    pub fn check(&self, key: u64, now_ns: f64) -> BreakerDecision {
        let mut shapes = self.shapes.lock();
        let Some(state) = shapes.get_mut(&key) else {
            return BreakerDecision::Allow;
        };
        if !state.open {
            return BreakerDecision::Allow;
        }
        if now_ns < state.open_until_ns || state.probe_outstanding {
            return BreakerDecision::Degrade;
        }
        state.probe_outstanding = true;
        BreakerDecision::Probe
    }

    /// The observable state of shape `key`'s breaker at virtual `now_ns`.
    pub fn state(&self, key: u64, now_ns: f64) -> BreakerState {
        let shapes = self.shapes.lock();
        match shapes.get(&key) {
            Some(s) if s.open && now_ns < s.open_until_ns => BreakerState::Open,
            Some(s) if s.open => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Reports a full-path success for shape `key`: closes the breaker
    /// and resets the failure count. Returns `true` when this success
    /// closed an **open** breaker (a half-open probe came back healthy)
    /// — the transition flight-recorder chains tag as `"closed"`.
    pub fn record_success(&self, key: u64) -> bool {
        let mut shapes = self.shapes.lock();
        if let Some(state) = shapes.get_mut(&key) {
            let was_open = state.open;
            *state = ShapeBreaker::default();
            was_open
        } else {
            false
        }
    }

    /// Reports a full-path failure for shape `key` at virtual `now_ns`.
    /// Returns `true` when this failure opened (or re-opened) the breaker.
    pub fn record_failure(&self, key: u64, now_ns: f64) -> bool {
        let mut shapes = self.shapes.lock();
        let state = shapes.entry(key).or_default();
        state.consecutive_failures += 1;
        let was_probe = state.probe_outstanding;
        state.probe_outstanding = false;
        let trip = was_probe || state.consecutive_failures >= self.policy.failure_threshold;
        if trip {
            state.open = true;
            state.open_until_ns = now_ns + self.policy.cooldown_ns;
            self.opens.fetch_add(1, Ordering::Relaxed);
        }
        trip
    }

    /// How many times any shape's breaker opened (including re-opens
    /// after a failed probe).
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }

    /// Shapes whose breaker is currently open or half-open.
    pub fn tripped_shapes(&self) -> usize {
        self.shapes.lock().values().filter(|s| s.open).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let retry = RetryPolicy {
            max_retries: 3,
            backoff_ns: 100.0,
            backoff_multiplier: 2.0,
        };
        assert_eq!(retry.backoff_for(0), 100.0);
        assert_eq!(retry.backoff_for(1), 200.0);
        assert_eq!(retry.backoff_for(2), 400.0);
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_after_cooldown() {
        let breaker = CircuitBreaker::new(BreakerPolicy {
            failure_threshold: 2,
            cooldown_ns: 1000.0,
        });
        assert_eq!(breaker.check(7, 0.0), BreakerDecision::Allow);
        assert!(!breaker.record_failure(7, 0.0));
        assert_eq!(breaker.state(7, 1.0), BreakerState::Closed);
        assert!(breaker.record_failure(7, 10.0), "second failure trips");
        assert_eq!(breaker.state(7, 11.0), BreakerState::Open);
        assert_eq!(breaker.check(7, 500.0), BreakerDecision::Degrade);
        // Cooldown elapsed: half-open, exactly one probe.
        assert_eq!(breaker.state(7, 1010.0 + 1.0), BreakerState::HalfOpen);
        assert_eq!(breaker.check(7, 1011.0), BreakerDecision::Probe);
        assert_eq!(
            breaker.check(7, 1012.0),
            BreakerDecision::Degrade,
            "only one probe at a time"
        );
        assert_eq!(breaker.opens(), 1);
    }

    #[test]
    fn successful_probe_closes_failed_probe_reopens() {
        let breaker = CircuitBreaker::new(BreakerPolicy {
            failure_threshold: 1,
            cooldown_ns: 100.0,
        });
        assert!(breaker.record_failure(1, 0.0));
        assert_eq!(breaker.check(1, 200.0), BreakerDecision::Probe);
        assert!(breaker.record_failure(1, 200.0), "failed probe re-opens");
        assert_eq!(breaker.state(1, 250.0), BreakerState::Open);
        assert_eq!(breaker.check(1, 400.0), BreakerDecision::Probe);
        assert!(
            breaker.record_success(1),
            "probe success reports the open->closed transition"
        );
        assert!(
            !breaker.record_success(1),
            "a second success is not a transition"
        );
        assert_eq!(breaker.state(1, 401.0), BreakerState::Closed);
        assert_eq!(breaker.check(1, 402.0), BreakerDecision::Allow);
        assert_eq!(breaker.opens(), 2);
        assert_eq!(breaker.tripped_shapes(), 0);
    }

    #[test]
    fn shapes_are_independent() {
        let breaker = CircuitBreaker::new(BreakerPolicy {
            failure_threshold: 1,
            cooldown_ns: 1e9,
        });
        assert!(breaker.record_failure(1, 0.0));
        assert_eq!(breaker.check(1, 1.0), BreakerDecision::Degrade);
        assert_eq!(breaker.check(2, 1.0), BreakerDecision::Allow);
        assert_eq!(breaker.tripped_shapes(), 1);
    }
}
