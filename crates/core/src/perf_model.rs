//! Micro-kernel performance models (`g_predict`).
//!
//! For each micro-kernel `K̃`, the offline stage learns a piecewise-linear
//! function `g_predict(t)` estimating the cost of a pipelined task that runs
//! `t` instances of `K̃` on a single PE (Section 3.3). The coefficients are
//! learned from measurements at `t ∈ [1, n_pred]`; each linear segment is a
//! least-squares fit over the samples falling in its span, so measurement
//! noise is genuinely regressed away rather than memorized.

use serde::{Deserialize, Serialize};

/// One linear segment `cost(t) = intercept + slope * t` valid on
/// `[t_lo, t_hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Inclusive lower bound of the segment's validity.
    pub t_lo: usize,
    /// Inclusive upper bound of the segment's validity.
    pub t_hi: usize,
    /// Intercept in nanoseconds.
    pub intercept_ns: f64,
    /// Slope in nanoseconds per instance.
    pub slope_ns: f64,
}

impl Segment {
    fn eval(&self, t: f64) -> f64 {
        self.intercept_ns + self.slope_ns * t
    }
}

/// A piecewise-linear performance model for one micro-kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    segments: Vec<Segment>,
}

impl PerfModel {
    /// Fits a piecewise-linear model to `(t, duration_ns)` samples.
    ///
    /// Samples are partitioned into `num_segments` spans that are roughly
    /// uniform in `log t` (matching the log-spaced sampling schedule of the
    /// offline stage), and each span gets an ordinary least-squares line.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two samples are provided or `num_segments` is
    /// zero.
    pub fn fit(samples: &[(usize, f64)], num_segments: usize) -> Self {
        assert!(samples.len() >= 2, "need at least two samples to fit");
        assert!(num_segments > 0, "need at least one segment");
        let mut samples: Vec<(usize, f64)> = samples.to_vec();
        samples.sort_by_key(|&(t, _)| t);
        samples.dedup_by_key(|&mut (t, _)| t);

        let num_segments = num_segments.min(samples.len() / 2).max(1);
        let t_min = samples.first().expect("nonempty").0 as f64;
        let t_max = samples.last().expect("nonempty").0 as f64;

        // Log-spaced span boundaries over [t_min, t_max].
        let log_lo = t_min.max(1.0).ln();
        let log_hi = t_max.max(t_min + 1.0).ln();
        let bound = |i: usize| -> f64 {
            (log_lo + (log_hi - log_lo) * i as f64 / num_segments as f64).exp()
        };

        let mut segments = Vec::with_capacity(num_segments);
        let mut start = 0usize;
        for seg in 0..num_segments {
            let hi_t = if seg + 1 == num_segments {
                f64::INFINITY
            } else {
                bound(seg + 1)
            };
            let mut end = start;
            while end < samples.len() && (samples[end].0 as f64) <= hi_t {
                end += 1;
            }
            // Make sure every segment gets at least two points and the final
            // segment swallows the tail.
            if seg + 1 == num_segments {
                end = samples.len();
            }
            if end - start < 2 {
                end = (start + 2).min(samples.len());
            }
            if end - start >= 2 {
                let span = &samples[start..end];
                let (intercept, slope) = least_squares(span);
                segments.push(Segment {
                    t_lo: span.first().expect("span nonempty").0,
                    t_hi: span.last().expect("span nonempty").0,
                    intercept_ns: intercept,
                    slope_ns: slope,
                });
                start = end;
            }
            if start >= samples.len() {
                break;
            }
        }
        assert!(!segments.is_empty(), "fit produced no segments");
        Self { segments }
    }

    /// `g_predict(t)`: predicted duration (ns) of a pipelined task running
    /// `t` instances on one PE. Extrapolates with the first/last segment
    /// outside the fitted range.
    ///
    /// # Panics
    ///
    /// Panics if `t` is zero.
    pub fn predict(&self, t: usize) -> f64 {
        assert!(t > 0, "a pipelined task runs at least one instance");
        let tf = t as f64;
        for seg in &self.segments {
            if t <= seg.t_hi {
                return seg.eval(tf).max(0.0);
            }
        }
        let last = self.segments.last().expect("segments nonempty");
        last.eval(tf).max(0.0)
    }

    /// The fitted segments (for inspection / serialization round-trips).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Mean relative error against a set of `(t, truth_ns)` points.
    pub fn mean_relative_error(&self, truth: &[(usize, f64)]) -> f64 {
        assert!(!truth.is_empty(), "need at least one evaluation point");
        truth
            .iter()
            .map(|&(t, v)| (self.predict(t) - v).abs() / v.max(1e-9))
            .sum::<f64>()
            / truth.len() as f64
    }
}

/// Ordinary least squares for `y = a + b x` over `(t, y)` samples.
fn least_squares(samples: &[(usize, f64)]) -> (f64, f64) {
    let n = samples.len() as f64;
    let sx: f64 = samples.iter().map(|&(t, _)| t as f64).sum();
    let sy: f64 = samples.iter().map(|&(_, y)| y).sum();
    let sxx: f64 = samples.iter().map(|&(t, _)| (t as f64) * (t as f64)).sum();
    let sxy: f64 = samples.iter().map(|&(t, y)| t as f64 * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (sy / n, 0.0);
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    (intercept, slope)
}

/// The log-spaced sampling schedule the offline stage uses to learn
/// `g_predict`: `t = 1, 2, 3, 4, 6, 8, ...` up to `n_pred`.
pub fn sample_schedule(n_pred: usize) -> Vec<usize> {
    let mut ts = vec![1usize, 2, 3, 4];
    let mut t = 4usize;
    while t < n_pred {
        t = (t * 3 / 2).max(t + 1);
        ts.push(t.min(n_pred));
    }
    ts.dedup();
    ts.retain(|&v| v <= n_pred);
    ts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_affine_truth() {
        let truth = |t: usize| 500.0 + 12.5 * t as f64;
        let samples: Vec<(usize, f64)> = sample_schedule(1024)
            .iter()
            .map(|&t| (t, truth(t)))
            .collect();
        let model = PerfModel::fit(&samples, 4);
        for &t in &[1, 7, 64, 500, 1024, 4096] {
            let err = (model.predict(t) - truth(t)).abs() / truth(t);
            assert!(err < 0.01, "t={t}: err={err}");
        }
    }

    #[test]
    fn fit_regresses_away_noise() {
        // ±2% multiplicative noise, deterministic per t.
        let truth = |t: usize| 300.0 + 8.0 * t as f64;
        let noisy =
            |t: usize| truth(t) * (1.0 + 0.02 * if t.is_multiple_of(2) { 1.0 } else { -1.0 });
        let samples: Vec<(usize, f64)> = sample_schedule(2048)
            .iter()
            .map(|&t| (t, noisy(t)))
            .collect();
        let model = PerfModel::fit(&samples, 4);
        let pts: Vec<(usize, f64)> = (1..100).map(|t| (t * 20, truth(t * 20))).collect();
        assert!(model.mean_relative_error(&pts) < 0.03);
    }

    #[test]
    fn predict_extrapolates_beyond_samples() {
        let samples: Vec<(usize, f64)> = (1..=32).map(|t| (t, 100.0 + 5.0 * t as f64)).collect();
        let model = PerfModel::fit(&samples, 2);
        let p = model.predict(1000);
        assert!((p - 5100.0).abs() / 5100.0 < 0.05);
    }

    #[test]
    fn predict_is_monotone_for_affine_truth() {
        let samples: Vec<(usize, f64)> = sample_schedule(512)
            .iter()
            .map(|&t| (t, 50.0 + 3.0 * t as f64))
            .collect();
        let model = PerfModel::fit(&samples, 4);
        let mut prev = 0.0;
        for t in 1..600 {
            let v = model.predict(t);
            assert!(v >= prev - 1e-6, "non-monotone at t={t}");
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn fit_rejects_single_sample() {
        let _ = PerfModel::fit(&[(1, 10.0)], 2);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn predict_rejects_zero() {
        let samples: Vec<(usize, f64)> = (1..=8).map(|t| (t, t as f64)).collect();
        let _ = PerfModel::fit(&samples, 1).predict(0);
    }

    #[test]
    fn schedule_is_log_spaced_and_bounded() {
        let s = sample_schedule(5120);
        assert_eq!(s[0], 1);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(*s.last().expect("nonempty") <= 5120);
        assert!(
            s.len() < 40,
            "schedule should stay cheap: {} points",
            s.len()
        );
    }

    #[test]
    fn segments_cover_sample_range() {
        let samples: Vec<(usize, f64)> = sample_schedule(256)
            .iter()
            .map(|&t| (t, 10.0 * t as f64))
            .collect();
        let model = PerfModel::fit(&samples, 3);
        assert_eq!(model.segments().first().expect("nonempty").t_lo, 1);
        assert_eq!(model.segments().last().expect("nonempty").t_hi, 256);
    }
}
