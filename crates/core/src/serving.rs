//! Concurrent serving runtime over a shared [`Engine`].
//!
//! The paper motivates dynamic-shape compilation with model serving, where
//! requests with runtime-determined shapes arrive continuously. This
//! module closes that loop: a pool of worker threads serves a request
//! stream from one shared engine, exercising the sharded single-flight
//! program cache exactly as a real server would — concurrent first-sight
//! shapes coalesce onto one polymerization, repeats hit without blocking
//! writers.
//!
//! # Timing methodology
//!
//! Each request's latency decomposes into three parts measured on two
//! different clocks:
//!
//! * **compile** — *real* wall-clock nanoseconds the worker spent in
//!   online polymerization (zero on a cache hit; the coalesced-wait time
//!   when another worker was compiling the same shape). This is the
//!   overhead MikPoly actually pays on the host.
//! * **device** — *simulated* device nanoseconds from the accelerator
//!   model, plus the cluster's dispatch latency when the device pool is
//!   remote (more than one device behind an interconnect).
//! * **queue** — *virtual* waiting time: from arrival until a worker and
//!   a device were both free. Arrivals are virtual timestamps (e.g.
//!   Poisson via [`poisson_arrivals`]); each worker advances a virtual
//!   clock `free_at`, and the device pool keeps a per-device virtual
//!   free time, so queueing behaviour is deterministic under a seed while
//!   compile times remain real measurements.
//!
//! Workers pull requests in arrival order from a shared cursor (FIFO
//! dispatch to the first idle worker), which is the M/G/m discipline the
//! tail-latency experiment models.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use accel_sim::Cluster;
use tensor_ir::Operator;

use crate::cache::CacheStats;
use crate::engine::Engine;

/// One inference request: a weighted operator list (one forward pass)
/// arriving at a virtual timestamp.
#[derive(Debug, Clone)]
pub struct Request {
    /// Stream-unique id (records are reported in id order).
    pub id: usize,
    /// Virtual arrival time, ns from stream start.
    pub arrival_ns: f64,
    /// The operators of the forward pass, each with an execution count.
    pub ops: Vec<(Operator, usize)>,
}

impl Request {
    /// A single-operator request.
    pub fn single(id: usize, arrival_ns: f64, operator: Operator) -> Self {
        Self {
            id,
            arrival_ns,
            ops: vec![(operator, 1)],
        }
    }
}

/// Per-request latency decomposition (see the module docs for which parts
/// are real versus virtual time).
#[derive(Debug, Clone, Copy)]
pub struct RequestRecord {
    /// The request's id.
    pub id: usize,
    /// Worker thread that served it.
    pub worker: usize,
    /// Device that executed it.
    pub device: usize,
    /// Virtual wait for a worker plus a device, ns.
    pub queue_ns: f64,
    /// Real online-compilation wall clock, ns (0 when fully cache-hit).
    pub compile_ns: u128,
    /// Simulated device time including dispatch, ns.
    pub device_ns: f64,
    /// Virtual completion time, ns from stream start.
    pub finish_ns: f64,
}

impl RequestRecord {
    /// End-to-end latency: queueing + compilation + device, ns.
    pub fn total_ns(&self) -> f64 {
        self.queue_ns + self.compile_ns as f64 + self.device_ns
    }
}

/// Per-worker accounting over one [`ServingRuntime::serve`] call.
#[derive(Debug, Clone, Copy)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Requests this worker served.
    pub requests: usize,
    /// Virtual busy time (compile + device across its requests), ns.
    pub busy_ns: f64,
    /// `busy_ns` over the stream's makespan.
    pub utilization: f64,
}

/// Everything one `serve` call observed.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Per-request records, in request-id order.
    pub records: Vec<RequestRecord>,
    /// Per-worker accounting.
    pub workers: Vec<WorkerStats>,
    /// Engine program-cache counters after the stream (GEMM and conv
    /// caches merged).
    pub cache: CacheStats,
    /// Virtual time from first arrival to last completion, ns.
    pub makespan_ns: f64,
}

impl ServingReport {
    /// Completed requests per virtual second.
    pub fn throughput_rps(&self) -> f64 {
        self.records.len() as f64 / (self.makespan_ns / 1e9)
    }

    /// Summarizes the latency distribution and its decomposition.
    pub fn latency_summary(&self) -> LatencySummary {
        let mut totals: Vec<f64> = self.records.iter().map(RequestRecord::total_ns).collect();
        totals.sort_by(f64::total_cmp);
        let n = self.records.len().max(1) as f64;
        LatencySummary {
            p50_ns: percentile(&totals, 0.50),
            p95_ns: percentile(&totals, 0.95),
            p99_ns: percentile(&totals, 0.99),
            mean_ns: totals.iter().sum::<f64>() / n,
            mean_queue_ns: self.records.iter().map(|r| r.queue_ns).sum::<f64>() / n,
            mean_compile_ns: self
                .records
                .iter()
                .map(|r| r.compile_ns as f64)
                .sum::<f64>()
                / n,
            mean_device_ns: self.records.iter().map(|r| r.device_ns).sum::<f64>() / n,
        }
    }
}

/// Latency percentiles plus the mean decomposition, all ns.
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// Median end-to-end latency.
    pub p50_ns: f64,
    /// 95th-percentile end-to-end latency.
    pub p95_ns: f64,
    /// 99th-percentile end-to-end latency.
    pub p99_ns: f64,
    /// Mean end-to-end latency.
    pub mean_ns: f64,
    /// Mean queueing component.
    pub mean_queue_ns: f64,
    /// Mean online-compilation component.
    pub mean_compile_ns: f64,
    /// Mean device component.
    pub mean_device_ns: f64,
}

/// Nearest-rank percentile of an ascending-sorted slice (0 for empty).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Virtual Poisson arrival times: `count` timestamps with exponential
/// inter-arrival gaps of mean `mean_gap_ns`, deterministic under `seed`.
pub fn poisson_arrivals(count: usize, mean_gap_ns: f64, seed: u64) -> Vec<f64> {
    assert!(mean_gap_ns > 0.0, "mean gap must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..count)
        .map(|_| {
            let u: f64 = rng.gen();
            // Inverse-CDF exponential; clamp away u == 1 to keep ln finite.
            t += -mean_gap_ns * (1.0 - u).max(1e-12).ln();
            t
        })
        .collect()
}

/// A multi-worker request executor over a shared engine and a simulated
/// device pool.
pub struct ServingRuntime {
    engine: Arc<Engine>,
    cluster: Cluster,
    workers: usize,
}

impl ServingRuntime {
    /// Creates a runtime with `workers` threads over `cluster`'s devices.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or the cluster's device model differs
    /// from the engine's machine (programs would be timed on the wrong
    /// accelerator).
    pub fn new(engine: Arc<Engine>, cluster: Cluster, workers: usize) -> Self {
        assert!(workers > 0, "serving needs at least one worker");
        assert_eq!(
            cluster.machine.name,
            engine.machine().name,
            "device pool and engine must model the same machine"
        );
        Self {
            engine,
            cluster,
            workers,
        }
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Serves `requests` (any order; they are dispatched by arrival time)
    /// to completion and reports per-request latency decompositions plus
    /// worker and cache counters.
    pub fn serve(&self, requests: &[Request]) -> ServingReport {
        let mut ordered: Vec<&Request> = requests.iter().collect();
        ordered.sort_by(|a, b| f64::total_cmp(&a.arrival_ns, &b.arrival_ns));
        let cursor = AtomicUsize::new(0);
        // Virtual free time per device; a request takes the earliest-free
        // device once its compilation is done.
        let device_pool = Mutex::new(vec![0.0f64; self.cluster.devices]);
        // Dispatch over the interconnect only when the pool is remote.
        let dispatch_ns = if self.cluster.devices > 1 {
            self.cluster.interconnect.latency_ns
        } else {
            0.0
        };

        let per_worker: Vec<Vec<RequestRecord>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|worker| {
                    let ordered = &ordered;
                    let cursor = &cursor;
                    let device_pool = &device_pool;
                    scope.spawn(move || {
                        let mut records = Vec::new();
                        let mut free_at = 0.0f64;
                        loop {
                            let next = cursor.fetch_add(1, Ordering::SeqCst);
                            let Some(request) = ordered.get(next) else {
                                break;
                            };
                            let start = request.arrival_ns.max(free_at);
                            // Real wall-clock compile (0 on cache hits),
                            // simulated device time.
                            let graph = self
                                .engine
                                .run_graph(request.ops.iter().map(|(op, count)| (op, *count)));
                            let ready = start + graph.compile_ns as f64;
                            let (device, device_start) = {
                                let mut pool = device_pool.lock();
                                let (device, device_free) = pool
                                    .iter()
                                    .enumerate()
                                    .min_by(|a, b| f64::total_cmp(a.1, b.1))
                                    .map(|(i, &free)| (i, free))
                                    .expect("cluster has devices");
                                let device_start = ready.max(device_free) + dispatch_ns;
                                pool[device] = device_start + graph.device_ns;
                                (device, device_start)
                            };
                            let finish = device_start + graph.device_ns;
                            free_at = finish;
                            records.push(RequestRecord {
                                id: request.id,
                                worker,
                                device,
                                queue_ns: (start - request.arrival_ns)
                                    + (device_start - dispatch_ns - ready),
                                compile_ns: graph.compile_ns,
                                device_ns: graph.device_ns + dispatch_ns,
                                finish_ns: finish,
                            });
                        }
                        records
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serving worker panicked"))
                .collect()
        });

        let first_arrival = ordered.first().map_or(0.0, |r| r.arrival_ns);
        let last_finish = per_worker
            .iter()
            .flatten()
            .map(|r| r.finish_ns)
            .fold(first_arrival, f64::max);
        let makespan_ns = (last_finish - first_arrival).max(f64::MIN_POSITIVE);
        let workers = per_worker
            .iter()
            .enumerate()
            .map(|(worker, records)| {
                let busy_ns = records
                    .iter()
                    .map(|r| r.compile_ns as f64 + r.device_ns)
                    .sum::<f64>();
                WorkerStats {
                    worker,
                    requests: records.len(),
                    busy_ns,
                    utilization: busy_ns / makespan_ns,
                }
            })
            .collect();
        let mut records: Vec<RequestRecord> = per_worker.into_iter().flatten().collect();
        records.sort_by_key(|r| r.id);
        let cache = self
            .engine
            .gemm_compiler()
            .cache_stats()
            .merged(self.engine.conv_compiler().cache_stats());
        ServingReport {
            records,
            workers,
            cache,
            makespan_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::OfflineOptions;
    use accel_sim::{Interconnect, MachineModel};
    use tensor_ir::GemmShape;

    fn engine() -> Arc<Engine> {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        Arc::new(Engine::offline(MachineModel::a100(), &o))
    }

    fn stream(n: usize, gap: f64) -> Vec<Request> {
        let shapes = [(256, 256, 256), (777, 512, 256), (64, 64, 64)];
        poisson_arrivals(n, gap, 7)
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let (m, nn, k) = shapes[i % shapes.len()];
                Request::single(i, t, Operator::gemm(GemmShape::new(m, nn, k)))
            })
            .collect()
    }

    #[test]
    fn decomposition_adds_up_and_all_requests_complete() {
        let engine = engine();
        let cluster = Cluster::new(engine.machine().clone(), 1, Interconnect::nvlink3());
        let runtime = ServingRuntime::new(engine, cluster, 2);
        let requests = stream(24, 50_000.0);
        let report = runtime.serve(&requests);
        assert_eq!(report.records.len(), 24);
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.id, i);
            assert!(r.queue_ns >= -1e-6, "negative queue: {r:?}");
            assert!(r.device_ns > 0.0);
            assert!((r.total_ns() - (r.finish_ns - requests[i].arrival_ns)).abs() < 1e-3);
        }
        // 3 unique shapes → 3 polymerizations, regardless of worker count.
        assert_eq!(report.cache.computations, 3);
        assert_eq!(report.workers.len(), 2);
        assert_eq!(report.workers.iter().map(|w| w.requests).sum::<usize>(), 24);
    }

    #[test]
    fn more_workers_do_not_reduce_saturated_throughput() {
        // Near-zero inter-arrival gap = saturating load: service is the
        // bottleneck, so throughput must improve with workers.
        // The device pool stays fixed while the worker count varies, so
        // the comparison isolates host-side parallelism; the cache is
        // warmed first so real compile wall-clock (identical work, but
        // paid once per engine) does not blur the virtual-time comparison.
        let requests = stream(48, 1.0);
        let mut last = 0.0;
        for workers in [1usize, 2, 4] {
            let engine = engine();
            for request in &requests {
                for (op, _) in &request.ops {
                    engine.run_operator(op);
                }
            }
            let cluster = Cluster::new(engine.machine().clone(), 4, Interconnect::nvlink3());
            let report = ServingRuntime::new(engine, cluster, workers).serve(&requests);
            let rps = report.throughput_rps();
            assert!(
                rps >= last * 0.99,
                "{workers} workers: {rps} rps after {last}"
            );
            last = rps;
        }
    }

    #[test]
    fn poisson_arrivals_are_deterministic_and_increasing() {
        let a = poisson_arrivals(100, 1000.0, 42);
        let b = poisson_arrivals(100, 1000.0, 42);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        let mean_gap = a.last().unwrap() / 100.0;
        assert!(mean_gap > 300.0 && mean_gap < 3000.0, "mean gap {mean_gap}");
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.5), 51.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
