//! Concurrent serving runtime over a shared [`Engine`].
//!
//! The paper motivates dynamic-shape compilation with model serving, where
//! requests with runtime-determined shapes arrive continuously. This
//! module closes that loop: a pool of worker threads serves a request
//! stream from one shared engine, exercising the sharded single-flight
//! program cache exactly as a real server would — concurrent first-sight
//! shapes coalesce onto one polymerization, repeats hit without blocking
//! writers.
//!
//! # Timing methodology
//!
//! Each request's latency decomposes into three parts measured on two
//! different clocks:
//!
//! * **compile** — *real* wall-clock nanoseconds the worker spent in
//!   online polymerization (zero on a cache hit; the coalesced-wait time
//!   when another worker was compiling the same shape). This is the
//!   overhead MikPoly actually pays on the host.
//! * **device** — *simulated* device nanoseconds from the accelerator
//!   model, plus the cluster's dispatch latency when the device pool is
//!   remote (more than one device behind an interconnect).
//! * **queue** — *virtual* waiting time: from arrival until a worker and
//!   a device were both free. Arrivals are virtual timestamps (e.g.
//!   Poisson via [`poisson_arrivals`]); each worker advances a virtual
//!   clock `free_at`, and the device pool keeps a per-device virtual
//!   free time, so queueing behaviour is deterministic under a seed while
//!   compile times remain real measurements.
//!
//! Workers pull requests in arrival order from a shared cursor (FIFO
//! dispatch to the first idle worker), which is the M/G/m discipline the
//! tail-latency experiment models.
//!
//! The real work (compilation) runs in parallel across OS threads, but
//! the *virtual* bookkeeping — which worker slot and device a request
//! takes, and when — is applied in strict arrival order behind a ticket
//! sequencer. The virtual timeline is therefore a deterministic function
//! of the request stream and the measured compile durations, never of OS
//! scheduling: a starved thread cannot skew queueing, and enabling
//! telemetry cannot shift throughput.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use accel_sim::Cluster;
use mikpoly_telemetry::{Clock, ClockNs, Histogram, Lane, LatencyStats, SpanRecord, Telemetry};
use tensor_ir::Operator;

use crate::cache::CacheStats;
use crate::engine::Engine;

/// One inference request: a weighted operator list (one forward pass)
/// arriving at a virtual timestamp.
#[derive(Debug, Clone)]
pub struct Request {
    /// Stream-unique id (records are reported in id order).
    pub id: usize,
    /// Virtual arrival time, ns from stream start.
    pub arrival_ns: f64,
    /// The operators of the forward pass, each with an execution count.
    pub ops: Vec<(Operator, usize)>,
}

impl Request {
    /// A single-operator request.
    pub fn single(id: usize, arrival_ns: f64, operator: Operator) -> Self {
        Self {
            id,
            arrival_ns,
            ops: vec![(operator, 1)],
        }
    }
}

/// Per-request latency decomposition (see the module docs for which parts
/// are real versus virtual time).
#[derive(Debug, Clone, Copy)]
pub struct RequestRecord {
    /// The request's id.
    pub id: usize,
    /// Worker thread that served it.
    pub worker: usize,
    /// Device that executed it.
    pub device: usize,
    /// Virtual wait for a worker plus a device, ns.
    pub queue_ns: f64,
    /// Online-compilation wall clock, explicitly labelled as **real**
    /// time (zero when fully cache-hit) — the clock tag is what keeps it
    /// from being summed into virtual durations unannotated.
    pub compile: ClockNs,
    /// Portion of the compile window the polymerization search took
    /// (real ns; fresh compilations only).
    pub search_ns: u128,
    /// Portion of the compile window spent blocked on another worker's
    /// in-flight compilation of the same shape (real ns).
    pub cache_wait_ns: u128,
    /// Simulated device time including dispatch, ns.
    pub device_ns: f64,
    /// Virtual completion time, ns from stream start.
    pub finish_ns: f64,
}

impl RequestRecord {
    /// End-to-end latency on the serving timeline: queueing + the compile
    /// window (a real-clock measurement explicitly projected onto the
    /// virtual timeline, 1:1 — the worker really is occupied that long
    /// while virtual arrivals accumulate) + device, ns.
    pub fn timeline_total_ns(&self) -> f64 {
        self.queue_ns + self.compile.onto_virtual_timeline() + self.device_ns
    }
}

/// Per-worker accounting over one [`ServingRuntime::serve`] call.
#[derive(Debug, Clone, Copy)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Requests this worker served.
    pub requests: usize,
    /// Virtual busy time (compile + device across its requests), ns.
    pub busy_ns: f64,
    /// `busy_ns` over the stream's makespan.
    pub utilization: f64,
}

/// Everything one `serve` call observed.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Per-request records, in request-id order.
    pub records: Vec<RequestRecord>,
    /// Per-worker accounting.
    pub workers: Vec<WorkerStats>,
    /// Engine program-cache counters after the stream (GEMM and conv
    /// caches merged).
    pub cache: CacheStats,
    /// Virtual time from first arrival to last completion, ns.
    pub makespan_ns: f64,
}

impl ServingReport {
    /// Completed requests per virtual second.
    pub fn throughput_rps(&self) -> f64 {
        self.records.len() as f64 / (self.makespan_ns / 1e9)
    }

    /// Summarizes the latency distribution and its decomposition by
    /// feeding every record through the telemetry histogram type — one
    /// clock-labelled readout per phase, so real (compile) and virtual
    /// (queue/device/total) time can never be conflated in a summary.
    /// Percentiles are log2-bucket estimates (within one bucket width of
    /// exact — see [`percentile`] for the exact sorted-slice form); counts,
    /// means, and maxima are exact.
    pub fn latency_summary(&self) -> LatencySummary {
        let total = Histogram::new(Clock::Virtual);
        let queue = Histogram::new(Clock::Virtual);
        let compile = Histogram::new(Clock::Real);
        let device = Histogram::new(Clock::Virtual);
        for r in &self.records {
            total.record_f64(r.timeline_total_ns());
            queue.record_f64(r.queue_ns);
            compile.record_f64(r.compile.real_ns());
            device.record_f64(r.device_ns);
        }
        LatencySummary {
            total: total.stats(),
            queue: queue.stats(),
            compile: compile.stats(),
            device: device.stats(),
        }
    }
}

/// Per-phase latency readouts, each tagged with the clock it was measured
/// on (`total`/`queue`/`device` are virtual serving time; `compile` is
/// real host time).
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// End-to-end timeline latency (virtual clock).
    pub total: LatencyStats,
    /// Queueing component (virtual clock).
    pub queue: LatencyStats,
    /// Online-compilation component (real clock).
    pub compile: LatencyStats,
    /// Device component including dispatch (virtual clock).
    pub device: LatencyStats,
}

/// Nearest-rank percentile of an ascending-sorted slice (0 for empty).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Virtual Poisson arrival times: `count` timestamps with exponential
/// inter-arrival gaps of mean `mean_gap_ns`, deterministic under `seed`.
pub fn poisson_arrivals(count: usize, mean_gap_ns: f64, seed: u64) -> Vec<f64> {
    assert!(mean_gap_ns > 0.0, "mean gap must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..count)
        .map(|_| {
            let u: f64 = rng.gen();
            // Inverse-CDF exponential; clamp away u == 1 to keep ln finite.
            t += -mean_gap_ns * (1.0 - u).max(1e-12).ln();
            t
        })
        .collect()
}

/// A multi-worker request executor over a shared engine and a simulated
/// device pool.
pub struct ServingRuntime {
    engine: Arc<Engine>,
    cluster: Cluster,
    workers: usize,
    telemetry: Arc<Telemetry>,
}

impl ServingRuntime {
    /// Creates a runtime with `workers` threads over `cluster`'s devices.
    /// Telemetry defaults to the engine's handle (so an engine built with
    /// [`Engine::offline_with_telemetry`] gets serving spans for free).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or the cluster's device model differs
    /// from the engine's machine (programs would be timed on the wrong
    /// accelerator).
    pub fn new(engine: Arc<Engine>, cluster: Cluster, workers: usize) -> Self {
        assert!(workers > 0, "serving needs at least one worker");
        assert_eq!(
            cluster.machine.name,
            engine.machine().name,
            "device pool and engine must model the same machine"
        );
        let telemetry = Arc::clone(engine.telemetry());
        Self {
            engine,
            cluster,
            workers,
            telemetry,
        }
    }

    /// Replaces the telemetry handle (builder style).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The telemetry handle serving spans and metrics are recorded into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Serves `requests` (any order; they are dispatched by arrival time)
    /// to completion and reports per-request latency decompositions plus
    /// worker and cache counters.
    pub fn serve(&self, requests: &[Request]) -> ServingReport {
        let mut ordered: Vec<&Request> = requests.iter().collect();
        ordered.sort_by(|a, b| f64::total_cmp(&a.arrival_ns, &b.arrival_ns));
        let cursor = AtomicUsize::new(0);
        let sequencer = Sequencer::new();
        // Virtual free time per worker slot and per device. A request is
        // assigned (in arrival order) to the earliest-free worker slot,
        // then takes the earliest-free device once its compilation is
        // done. Slots are virtual-time identities, deliberately decoupled
        // from the OS threads doing the real compile work, so the
        // timeline cannot be skewed by thread starvation.
        let worker_pool = Mutex::new(vec![0.0f64; self.workers]);
        let device_pool = Mutex::new(vec![0.0f64; self.cluster.devices]);
        // Dispatch over the interconnect only when the pool is remote.
        let dispatch_ns = if self.cluster.devices > 1 {
            self.cluster.interconnect.latency_ns
        } else {
            0.0
        };

        let telemetry = &self.telemetry;
        let per_thread: Vec<Vec<RequestRecord>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|_| {
                    let ordered = &ordered;
                    let cursor = &cursor;
                    let sequencer = &sequencer;
                    let worker_pool = &worker_pool;
                    let device_pool = &device_pool;
                    scope.spawn(move || {
                        let mut records = Vec::new();
                        loop {
                            let ticket = cursor.fetch_add(1, Ordering::SeqCst);
                            let Some(request) = ordered.get(ticket) else {
                                break;
                            };
                            // Real wall-clock compile (0 on cache hits),
                            // simulated device time — the expensive part,
                            // running in parallel across threads.
                            let graph = self
                                .engine
                                .run_graph(request.ops.iter().map(|(op, count)| (op, *count)));
                            // The worker is genuinely occupied for the real
                            // compile wall-clock while virtual arrivals keep
                            // accumulating — the one sanctioned projection
                            // of real time onto the serving timeline.
                            let compile = ClockNs::real(graph.compile_ns as f64);

                            // Virtual bookkeeping in strict arrival order.
                            sequencer.wait_for(ticket);
                            // Only the turn holder touches the pools, so
                            // the slot can be reserved after `finish` is
                            // known below.
                            let (worker, worker_free) = earliest_free(&worker_pool.lock());
                            let start = request.arrival_ns.max(worker_free);
                            let ready = start + compile.onto_virtual_timeline();
                            let (device, device_start) = {
                                let mut pool = device_pool.lock();
                                let (device, device_free) = earliest_free(&pool);
                                let device_start = ready.max(device_free) + dispatch_ns;
                                pool[device] = device_start + graph.device_ns;
                                (device, device_start)
                            };
                            let finish = device_start + graph.device_ns;
                            worker_pool.lock()[worker] = finish;
                            sequencer.advance();

                            let record = RequestRecord {
                                id: request.id,
                                worker,
                                device,
                                queue_ns: (start - request.arrival_ns)
                                    + (device_start - dispatch_ns - ready),
                                compile,
                                search_ns: graph.search_ns,
                                cache_wait_ns: graph.cache_wait_ns,
                                device_ns: graph.device_ns + dispatch_ns,
                                finish_ns: finish,
                            };
                            if telemetry.is_enabled() {
                                emit_request_telemetry(
                                    telemetry,
                                    request,
                                    &record,
                                    start,
                                    ready,
                                    device_start,
                                    dispatch_ns,
                                );
                            }
                            records.push(record);
                        }
                        records
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serving worker panicked"))
                .collect()
        });

        let first_arrival = ordered.first().map_or(0.0, |r| r.arrival_ns);
        let last_finish = per_thread
            .iter()
            .flatten()
            .map(|r| r.finish_ns)
            .fold(first_arrival, f64::max);
        let makespan_ns = (last_finish - first_arrival).max(f64::MIN_POSITIVE);
        let mut records: Vec<RequestRecord> = per_thread.into_iter().flatten().collect();
        records.sort_by_key(|r| r.id);
        let workers = (0..self.workers)
            .map(|worker| {
                let mine = records.iter().filter(|r| r.worker == worker);
                let busy_ns = mine
                    .clone()
                    .map(|r| r.compile.onto_virtual_timeline() + r.device_ns)
                    .sum::<f64>();
                WorkerStats {
                    worker,
                    requests: mine.count(),
                    busy_ns,
                    utilization: busy_ns / makespan_ns,
                }
            })
            .collect();
        let cache = self
            .engine
            .gemm_compiler()
            .cache_stats()
            .merged(self.engine.conv_compiler().cache_stats());
        if self.telemetry.is_enabled() {
            let registry = self.telemetry.registry();
            // Collector-style export: the registry's cache.* counters are
            // overwritten with the caches' own (authoritative) atomics, so
            // a metrics snapshot taken now exactly equals `cache`.
            cache.export_to(registry);
            registry.gauge("serving.workers").set(self.workers as f64);
            registry
                .gauge("serving.devices")
                .set(self.cluster.devices as f64);
            registry.gauge("serving.makespan_ms").set(makespan_ns / 1e6);
            registry
                .gauge("serving.throughput_rps")
                .set(records.len() as f64 / (makespan_ns / 1e9));
        }
        ServingReport {
            records,
            workers,
            cache,
            makespan_ns,
        }
    }
}

/// Hands out turns in ticket order: real compile work overlaps freely
/// across threads, but each request's virtual bookkeeping runs alone, in
/// arrival order, so the timeline is scheduling-independent.
struct Sequencer {
    turn: Mutex<usize>,
    ready: Condvar,
}

impl Sequencer {
    fn new() -> Self {
        Self {
            turn: Mutex::new(0),
            ready: Condvar::new(),
        }
    }

    /// Blocks until it is `ticket`'s turn.
    fn wait_for(&self, ticket: usize) {
        let mut turn = self.turn.lock();
        while *turn != ticket {
            self.ready.wait(&mut turn);
        }
    }

    /// Passes the turn to the next ticket.
    fn advance(&self) {
        *self.turn.lock() += 1;
        self.ready.notify_all();
    }
}

/// The index and virtual free time of the earliest-free pool slot.
fn earliest_free(pool: &[f64]) -> (usize, f64) {
    pool.iter()
        .enumerate()
        .min_by(|a, b| f64::total_cmp(a.1, b.1))
        .map(|(i, &free)| (i, free))
        .expect("pool is non-empty")
}

/// Emits one served request's phase spans and latency metrics.
///
/// Worker lanes carry the request timeline: the queue phases as async
/// (overlap-safe) spans, then a `serving.request` window containing the
/// `serving.compile` window, which in turn contains the per-request search
/// and coalesced-wait sub-phases (nested by time containment). The device
/// execution lands on the device's own lane.
#[allow(clippy::too_many_arguments)]
fn emit_request_telemetry(
    telemetry: &Telemetry,
    request: &Request,
    record: &RequestRecord,
    start: f64,
    ready: f64,
    device_start: f64,
    dispatch_ns: f64,
) {
    let rid = record.id as u64;
    let lane = Lane::Worker(record.worker);
    telemetry.record_span(SpanRecord::async_phase(
        "serving.queue",
        lane,
        rid,
        request.arrival_ns,
        start - request.arrival_ns,
    ));
    let device_wait = device_start - dispatch_ns - ready;
    if device_wait > 0.0 {
        telemetry.record_span(SpanRecord::async_phase(
            "serving.queue.device",
            lane,
            rid,
            ready,
            device_wait,
        ));
    }
    telemetry.record_span(
        SpanRecord::complete("serving.request", lane, start, record.finish_ns - start)
            .with_arg("request", rid),
    );
    telemetry.record_span(
        SpanRecord::complete(
            "serving.compile",
            lane,
            start,
            record.compile.onto_virtual_timeline(),
        )
        .with_arg("request", rid),
    );
    // The compile window's sub-phases, placed sequentially inside it
    // (their real-clock durations sum to at most the window's).
    let mut at = start;
    if record.search_ns > 0 {
        let dur = record.search_ns as f64;
        telemetry.record_span(
            SpanRecord::complete("serving.compile.search", lane, at, dur).with_arg("request", rid),
        );
        at += dur;
    }
    if record.cache_wait_ns > 0 {
        telemetry.record_span(
            SpanRecord::complete(
                "serving.compile.wait",
                lane,
                at,
                record.cache_wait_ns as f64,
            )
            .with_arg("request", rid),
        );
    }
    telemetry.record_span(
        SpanRecord::complete(
            "serving.device",
            Lane::Device(record.device),
            device_start,
            record.finish_ns - device_start,
        )
        .with_arg("request", rid)
        .with_arg("worker", record.worker),
    );
    let registry = telemetry.registry();
    registry.counter("serving.requests").inc();
    registry
        .histogram("serving.queue_ns", Clock::Virtual)
        .record_f64(record.queue_ns);
    registry
        .histogram("serving.compile_ns", Clock::Real)
        .record_f64(record.compile.real_ns());
    registry
        .histogram("serving.device_ns", Clock::Virtual)
        .record_f64(record.device_ns);
    registry
        .histogram("serving.total_ns", Clock::Virtual)
        .record_f64(record.timeline_total_ns());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::OfflineOptions;
    use accel_sim::{Interconnect, MachineModel};
    use tensor_ir::GemmShape;

    fn engine() -> Arc<Engine> {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        Arc::new(Engine::offline(MachineModel::a100(), &o))
    }

    fn stream(n: usize, gap: f64) -> Vec<Request> {
        let shapes = [(256, 256, 256), (777, 512, 256), (64, 64, 64)];
        poisson_arrivals(n, gap, 7)
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let (m, nn, k) = shapes[i % shapes.len()];
                Request::single(i, t, Operator::gemm(GemmShape::new(m, nn, k)))
            })
            .collect()
    }

    #[test]
    fn decomposition_adds_up_and_all_requests_complete() {
        let engine = engine();
        let cluster = Cluster::new(engine.machine().clone(), 1, Interconnect::nvlink3());
        let telemetry = mikpoly_telemetry::Telemetry::enabled();
        let runtime =
            ServingRuntime::new(engine, cluster, 2).with_telemetry(Arc::clone(&telemetry));
        let requests = stream(24, 50_000.0);
        let report = runtime.serve(&requests);
        assert_eq!(report.records.len(), 24);
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.id, i);
            assert!(r.queue_ns >= -1e-6, "negative queue: {r:?}");
            assert!(r.device_ns > 0.0);
            assert_eq!(r.compile.clock(), Clock::Real);
            assert!((r.timeline_total_ns() - (r.finish_ns - requests[i].arrival_ns)).abs() < 1e-3);
        }
        // 3 unique shapes → 3 polymerizations, regardless of worker count.
        assert_eq!(report.cache.computations, 3);
        assert_eq!(report.workers.len(), 2);
        assert_eq!(report.workers.iter().map(|w| w.requests).sum::<usize>(), 24);
        // Telemetry: every request got queue/request/compile/device spans,
        // and the exported cache counters equal the report's snapshot.
        let spans = telemetry.drain_spans();
        for name in [
            "serving.queue",
            "serving.request",
            "serving.compile",
            "serving.device",
        ] {
            let count = spans.iter().filter(|s| s.name == name).count();
            assert_eq!(count, 24, "{name}: {count} spans");
        }
        let snap = telemetry.registry().snapshot();
        assert_eq!(snap.counter("cache.hits"), Some(report.cache.hits));
        assert_eq!(
            snap.counter("cache.computations"),
            Some(report.cache.computations)
        );
        assert_eq!(
            snap.counter("cache.coalesced_waits"),
            Some(report.cache.coalesced_waits)
        );
        assert_eq!(snap.counter("serving.requests"), Some(24));
        let summary = report.latency_summary();
        assert_eq!(summary.total.count, 24);
        assert_eq!(summary.compile.clock, Clock::Real);
        assert_eq!(summary.total.clock, Clock::Virtual);
    }

    #[test]
    fn more_workers_do_not_reduce_saturated_throughput() {
        // Near-zero inter-arrival gap = saturating load: service is the
        // bottleneck, so throughput must improve with workers.
        // The device pool stays fixed while the worker count varies, so
        // the comparison isolates host-side parallelism; the cache is
        // warmed first so real compile wall-clock (identical work, but
        // paid once per engine) does not blur the virtual-time comparison.
        let requests = stream(48, 1.0);
        let mut last = 0.0;
        for workers in [1usize, 2, 4] {
            let engine = engine();
            for request in &requests {
                for (op, _) in &request.ops {
                    engine.run_operator(op);
                }
            }
            let cluster = Cluster::new(engine.machine().clone(), 4, Interconnect::nvlink3());
            let report = ServingRuntime::new(engine, cluster, workers).serve(&requests);
            let rps = report.throughput_rps();
            assert!(
                rps >= last * 0.99,
                "{workers} workers: {rps} rps after {last}"
            );
            last = rps;
        }
    }

    #[test]
    fn poisson_arrivals_are_deterministic_and_increasing() {
        let a = poisson_arrivals(100, 1000.0, 42);
        let b = poisson_arrivals(100, 1000.0, 42);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        let mean_gap = a.last().unwrap() / 100.0;
        assert!(mean_gap > 300.0 && mean_gap < 3000.0, "mean gap {mean_gap}");
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.5), 51.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
