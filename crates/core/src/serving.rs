//! Concurrent serving runtime over a shared [`Engine`].
//!
//! The paper motivates dynamic-shape compilation with model serving, where
//! requests with runtime-determined shapes arrive continuously. This
//! module closes that loop: a pool of worker threads serves a request
//! stream from one shared engine, exercising the sharded single-flight
//! program cache exactly as a real server would — concurrent first-sight
//! shapes coalesce onto one polymerization, repeats hit without blocking
//! writers.
//!
//! # Timing methodology
//!
//! Each request's latency decomposes into three parts measured on two
//! different clocks:
//!
//! * **compile** — *real* wall-clock nanoseconds the worker spent in
//!   online polymerization (zero on a cache hit; the coalesced-wait time
//!   when another worker was compiling the same shape). This is the
//!   overhead MikPoly actually pays on the host.
//! * **device** — *simulated* device nanoseconds from the accelerator
//!   model, plus the cluster's dispatch latency when the device pool is
//!   remote (more than one device behind an interconnect).
//! * **queue** — *virtual* waiting time: from arrival until a worker and
//!   a device were both free. Arrivals are virtual timestamps (e.g.
//!   Poisson via [`poisson_arrivals`]); each worker advances a virtual
//!   clock `free_at`, and the device pool keeps a per-device virtual
//!   free time, so queueing behaviour is deterministic under a seed while
//!   compile times remain real measurements.
//!
//! Workers pull requests in arrival order from a shared cursor (FIFO
//! dispatch to the first idle worker), which is the M/G/m discipline the
//! tail-latency experiment models.
//!
//! The real work (compilation) runs in parallel across OS threads, but
//! the *virtual* bookkeeping — which worker slot and device a request
//! takes, and when — is applied in strict arrival order behind a ticket
//! sequencer. The virtual timeline is therefore a deterministic function
//! of the request stream and the measured compile durations, never of OS
//! scheduling: a starved thread cannot skew queueing, and enabling
//! telemetry cannot shift throughput.
//!
//! # Fault tolerance
//!
//! With [`ServingOptions`] the runtime becomes a fault-tolerant server:
//! every request terminates with exactly one [`Disposition`], and a
//! poisoned request can degrade *its own* answer but never wedge a worker
//! or a follower.
//!
//! * **Admission control** — a request whose [`Request::deadline_ns`]
//!   already passed at arrival is shed *before any compile work*; one
//!   whose service would start past its deadline is shed at dispatch; and
//!   when [`ServingOptions::queue_capacity`] is set, a request that would
//!   have to wait behind a full queue is shed rather than enqueued. Shed
//!   requests consume no virtual resources.
//! * **Degradation ladder** — the compile phase runs under
//!   [`ServingOptions::compile_budget`]: the staged search first yields
//!   its deadline-cut incumbent, and if the full path fails outright
//!   (typed error or panic — both isolated with `catch_unwind`), a
//!   search-free fallback compile produces a correct, slower program. Only
//!   when the fallback fails too is the request [`Disposition::Failed`].
//! * **Transient retries** — injected device faults
//!   ([`ServingOptions::fault_plan`]) are retried with exponential
//!   backoff in virtual device time per [`ServingOptions::retry`];
//!   exhausting the budget fails the request.
//! * **Circuit breaker** — [`ServingOptions::breaker`] keys a
//!   [`CircuitBreaker`] by request shape: persistently failing shapes
//!   route straight to the degraded path until a cooldown elapses and a
//!   single probe retries the full path.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use accel_sim::{Cluster, FaultPlan};
use mikpoly_telemetry::{
    ChainDisposition, ChainRecord, Clock, ClockNs, Histogram, Lane, LatencyStats, SloEngine,
    SloObservation, SloPolicy, SloReport, SpanRecord, Telemetry,
};
use tensor_ir::Operator;

use crate::cache::CacheStats;
use crate::compiler::CompileBudget;
use crate::engine::{Engine, GraphRun};
use crate::resilience::{BreakerDecision, BreakerPolicy, CircuitBreaker, RetryPolicy};

/// Sentinel for "no worker/device slot": shed requests never occupy one.
const NO_SLOT: usize = usize::MAX;

/// One inference request: a weighted operator list (one forward pass)
/// arriving at a virtual timestamp.
#[derive(Debug, Clone)]
pub struct Request {
    /// Stream-unique id (records are reported in id order).
    pub id: usize,
    /// Virtual arrival time, ns from stream start.
    pub arrival_ns: f64,
    /// The operators of the forward pass, each with an execution count.
    pub ops: Vec<(Operator, usize)>,
    /// Virtual deadline, ns from stream start: the request is shed unless
    /// its service can *start* by this time. `None` means no deadline.
    pub deadline_ns: Option<f64>,
}

impl Request {
    /// A single-operator request with no deadline.
    pub fn single(id: usize, arrival_ns: f64, operator: Operator) -> Self {
        Self {
            id,
            arrival_ns,
            ops: vec![(operator, 1)],
            deadline_ns: None,
        }
    }

    /// Sets the virtual deadline (builder style).
    #[must_use]
    pub fn with_deadline(mut self, deadline_ns: f64) -> Self {
        self.deadline_ns = Some(deadline_ns);
        self
    }
}

/// How a request's service terminated. Every request gets exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Served with a fully-searched program.
    Completed,
    /// Served correctly but with a degraded program (deadline-cut search
    /// incumbent, search-free fallback, or an open breaker's detour).
    Degraded,
    /// Rejected by admission control before consuming virtual resources
    /// (see [`RequestRecord::shed_reason`]).
    Shed,
    /// Admitted but not served: both compile paths failed, or device
    /// retries were exhausted.
    Failed,
}

/// Why admission control rejected a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The deadline had already passed when the request arrived; it was
    /// shed before any compile work.
    DeadlineAtEnqueue,
    /// Service would have started after the deadline.
    DeadlineAtDispatch,
    /// The bounded wait queue was full at enqueue time.
    QueueFull,
}

impl ShedReason {
    /// Stable lowercase label, used as the flight-recorder chain's error
    /// string for shed requests.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::DeadlineAtEnqueue => "deadline-at-enqueue",
            ShedReason::DeadlineAtDispatch => "deadline-at-dispatch",
            ShedReason::QueueFull => "queue-full",
        }
    }
}

/// Fault-tolerance policy for one [`ServingRuntime`]. The default is the
/// fault-free fast path: no deadlines enforced beyond the requests' own,
/// unbounded queue, no breaker, no injected faults.
#[derive(Debug, Clone, Default)]
pub struct ServingOptions {
    /// Bound on requests admitted but waiting for a worker; `None` is
    /// unbounded. A request that would wait behind a full queue is shed.
    pub queue_capacity: Option<usize>,
    /// Per-request real-time compile budget. The staged search degrades
    /// to its incumbent (and then to the search-free fallback) rather
    /// than overrun it.
    pub compile_budget: Option<Duration>,
    /// Retry schedule for transient device faults.
    pub retry: RetryPolicy,
    /// Per-shape circuit breaker for persistent compile failures.
    pub breaker: Option<BreakerPolicy>,
    /// Deterministic fault-injection plan, installed into the engine's
    /// compilers for the duration of each [`ServingRuntime::serve`] call.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

/// Per-request latency decomposition (see the module docs for which parts
/// are real versus virtual time).
#[derive(Debug, Clone, Copy)]
pub struct RequestRecord {
    /// The request's id.
    pub id: usize,
    /// Worker slot that served it (`usize::MAX` for shed requests,
    /// which never occupy one — see [`RequestRecord::executed`]).
    pub worker: usize,
    /// Device that executed it (`usize::MAX` when none did).
    pub device: usize,
    /// Virtual wait for a worker plus a device, ns.
    pub queue_ns: f64,
    /// Online-compilation wall clock, explicitly labelled as **real**
    /// time (zero when fully cache-hit) — the clock tag is what keeps it
    /// from being summed into virtual durations unannotated.
    pub compile: ClockNs,
    /// Portion of the compile window the polymerization search took
    /// (real ns; fresh compilations only).
    pub search_ns: u128,
    /// Portion of the compile window spent blocked on another worker's
    /// in-flight compilation of the same shape (real ns).
    pub cache_wait_ns: u128,
    /// Simulated device time including dispatch and any fault retries
    /// with their backoffs, ns.
    pub device_ns: f64,
    /// Virtual completion time, ns from stream start (arrival time for
    /// shed requests).
    pub finish_ns: f64,
    /// How service terminated.
    pub disposition: Disposition,
    /// Set iff `disposition` is [`Disposition::Shed`].
    pub shed_reason: Option<ShedReason>,
    /// Device-fault retries this request paid for (in backoff + re-run
    /// virtual time).
    pub retries: u32,
    /// The request's deadline, copied through so SLO evaluation can
    /// compute deadline-hit rates from records alone.
    pub deadline_ns: Option<f64>,
    /// Circuit-breaker transition observed while serving this request:
    /// `"opened"` (this request's failure tripped the breaker),
    /// `"closed"` (its probe succeeded), or `"short-circuit"` (an open
    /// breaker routed it straight to the degraded path).
    pub breaker_event: Option<&'static str>,
}

impl RequestRecord {
    /// End-to-end latency on the serving timeline: queueing + the compile
    /// window (a real-clock measurement explicitly projected onto the
    /// virtual timeline, 1:1 — the worker really is occupied that long
    /// while virtual arrivals accumulate) + device, ns.
    pub fn timeline_total_ns(&self) -> f64 {
        self.queue_ns + self.compile.onto_virtual_timeline() + self.device_ns
    }

    /// Whether the request ran on a device (shed requests and
    /// compile-failed requests did not).
    pub fn executed(&self) -> bool {
        self.device != NO_SLOT
    }
}

/// Per-worker accounting over one [`ServingRuntime::serve`] call.
#[derive(Debug, Clone, Copy)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Requests this worker served.
    pub requests: usize,
    /// Virtual busy time (compile + device across its requests), ns.
    pub busy_ns: f64,
    /// `busy_ns` over the stream's makespan.
    pub utilization: f64,
}

/// How many requests ended in each [`Disposition`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispositionCounts {
    /// Served with a fully-searched program.
    pub completed: usize,
    /// Served with a degraded program.
    pub degraded: usize,
    /// Rejected by admission control.
    pub shed: usize,
    /// Admitted but not served.
    pub failed: usize,
}

impl DispositionCounts {
    /// Total requests across all dispositions.
    pub fn total(&self) -> usize {
        self.completed + self.degraded + self.shed + self.failed
    }

    /// Requests that produced an answer (completed + degraded).
    pub fn served(&self) -> usize {
        self.completed + self.degraded
    }
}

/// Everything one `serve` call observed.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Per-request records, in request-id order.
    pub records: Vec<RequestRecord>,
    /// Per-worker accounting.
    pub workers: Vec<WorkerStats>,
    /// Engine program-cache counters after the stream (GEMM and conv
    /// caches merged).
    pub cache: CacheStats,
    /// Virtual time from first arrival to last completion, ns.
    pub makespan_ns: f64,
    /// Times any shape's circuit breaker opened (0 without a breaker).
    pub breaker_opens: u64,
}

impl ServingReport {
    /// Requests (of any disposition) per virtual second.
    pub fn throughput_rps(&self) -> f64 {
        self.records.len() as f64 / (self.makespan_ns / 1e9)
    }

    /// *Served* requests (completed + degraded) per virtual second — the
    /// throughput that survives shedding and failures.
    pub fn goodput_rps(&self) -> f64 {
        self.dispositions().served() as f64 / (self.makespan_ns / 1e9)
    }

    /// Tallies every record's disposition. By construction each request
    /// contributes exactly one, so `dispositions().total()` equals
    /// `records.len()`.
    pub fn dispositions(&self) -> DispositionCounts {
        let mut counts = DispositionCounts::default();
        for r in &self.records {
            match r.disposition {
                Disposition::Completed => counts.completed += 1,
                Disposition::Degraded => counts.degraded += 1,
                Disposition::Shed => counts.shed += 1,
                Disposition::Failed => counts.failed += 1,
            }
        }
        counts
    }

    /// Summarizes the latency distribution and its decomposition by
    /// feeding every record through the telemetry histogram type — one
    /// clock-labelled readout per phase, so real (compile) and virtual
    /// (queue/device/total) time can never be conflated in a summary.
    /// Percentiles are log2-bucket estimates (within one bucket width of
    /// exact — see [`percentile`] for the exact sorted-slice form); counts,
    /// means, and maxima are exact.
    pub fn latency_summary(&self) -> LatencySummary {
        let total = Histogram::new(Clock::Virtual);
        let queue = Histogram::new(Clock::Virtual);
        let compile = Histogram::new(Clock::Real);
        let device = Histogram::new(Clock::Virtual);
        for r in &self.records {
            total.record_f64(r.timeline_total_ns());
            queue.record_f64(r.queue_ns);
            compile.record_f64(r.compile.real_ns());
            device.record_f64(r.device_ns);
        }
        LatencySummary {
            total: total.stats(),
            queue: queue.stats(),
            compile: compile.stats(),
            device: device.stats(),
        }
    }

    /// Evaluates the stream against `policy`: every record becomes one
    /// [`SloObservation`] (deadline verdicts only for requests that
    /// carried a deadline), and the engine's disposition tally is built
    /// from the same records as [`ServingReport::dispositions`], so the
    /// two always agree — `mikpoly health` asserts this equality.
    pub fn evaluate_slo(&self, policy: SloPolicy) -> SloReport {
        let mut engine = SloEngine::new(policy);
        for r in &self.records {
            let served = matches!(
                r.disposition,
                Disposition::Completed | Disposition::Degraded
            );
            engine.observe(SloObservation {
                finish_ns: r.finish_ns,
                disposition: chain_disposition(r.disposition),
                deadline_met: r.deadline_ns.map(|d| served && r.finish_ns <= d),
                compile_ns: r.compile.real_ns(),
            });
        }
        engine.evaluate()
    }
}

/// Per-phase latency readouts, each tagged with the clock it was measured
/// on (`total`/`queue`/`device` are virtual serving time; `compile` is
/// real host time).
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// End-to-end timeline latency (virtual clock).
    pub total: LatencyStats,
    /// Queueing component (virtual clock).
    pub queue: LatencyStats,
    /// Online-compilation component (real clock).
    pub compile: LatencyStats,
    /// Device component including dispatch (virtual clock).
    pub device: LatencyStats,
}

/// Nearest-rank percentile of an ascending-sorted slice (0 for empty).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Virtual Poisson arrival times: `count` timestamps with exponential
/// inter-arrival gaps of mean `mean_gap_ns`, deterministic under `seed`.
pub fn poisson_arrivals(count: usize, mean_gap_ns: f64, seed: u64) -> Vec<f64> {
    assert!(mean_gap_ns > 0.0, "mean gap must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..count)
        .map(|_| {
            let u: f64 = rng.gen();
            // Inverse-CDF exponential; clamp away u == 1 to keep ln finite.
            t += -mean_gap_ns * (1.0 - u).max(1e-12).ln();
            t
        })
        .collect()
}

/// The breaker key for a request: a hash of its full operator list, so a
/// poisoned shape cannot trip healthy traffic's breaker.
fn request_shape_key(request: &Request) -> u64 {
    let mut hasher = DefaultHasher::new();
    for (op, count) in &request.ops {
        op.hash(&mut hasher);
        count.hash(&mut hasher);
    }
    hasher.finish()
}

/// What the parallel (pre-sequencer) compile phase produced.
struct CompileOutcome {
    /// The compiled forward pass; `None` when both the full path and the
    /// degraded fallback failed.
    graph: Option<GraphRun>,
    /// Real wall-clock of the whole compile phase, ns (the graph's own
    /// measurement on the clean path; the measured window including the
    /// failed attempt when the fallback ran).
    compile_ns: u128,
    /// Device-fault retries the request will pay for.
    retries: u32,
    /// All retries faulted too: the request fails after occupying the
    /// device for every attempt.
    device_failed: bool,
    /// Total virtual device time across attempts and backoffs, ns.
    total_device_ns: f64,
    /// Breaker transition this compile triggered or rode, if any.
    breaker_event: Option<&'static str>,
}

/// A multi-worker request executor over a shared engine and a simulated
/// device pool.
pub struct ServingRuntime {
    engine: Arc<Engine>,
    cluster: Cluster,
    workers: usize,
    telemetry: Arc<Telemetry>,
    options: ServingOptions,
    breaker: Option<CircuitBreaker>,
}

impl ServingRuntime {
    /// Creates a runtime with `workers` threads over `cluster`'s devices.
    /// Telemetry defaults to the engine's handle (so an engine built with
    /// [`Engine::offline_with_telemetry`] gets serving spans for free).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or the cluster's device model differs
    /// from the engine's machine (programs would be timed on the wrong
    /// accelerator).
    pub fn new(engine: Arc<Engine>, cluster: Cluster, workers: usize) -> Self {
        assert!(workers > 0, "serving needs at least one worker");
        assert_eq!(
            cluster.machine.name,
            engine.machine().name,
            "device pool and engine must model the same machine"
        );
        let telemetry = Arc::clone(engine.telemetry());
        Self {
            engine,
            cluster,
            workers,
            telemetry,
            options: ServingOptions::default(),
            breaker: None,
        }
    }

    /// Replaces the telemetry handle (builder style).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets the fault-tolerance policy (builder style). Creates the
    /// per-shape circuit breaker when the options ask for one.
    #[must_use]
    pub fn with_options(mut self, options: ServingOptions) -> Self {
        self.breaker = options.breaker.map(CircuitBreaker::new);
        self.options = options;
        self
    }

    /// The telemetry handle serving spans and metrics are recorded into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The fault-tolerance policy in force.
    pub fn options(&self) -> &ServingOptions {
        &self.options
    }

    /// The per-shape circuit breaker, when enabled.
    pub fn breaker(&self) -> Option<&CircuitBreaker> {
        self.breaker.as_ref()
    }

    /// The parallel compile phase for one admitted request: breaker check,
    /// panic-isolated full compile under the budget, degraded fallback,
    /// and the deterministic device-fault retry schedule.
    fn compile_request(&self, request: &Request) -> CompileOutcome {
        let key = request_shape_key(request);
        let breaker = self.breaker.as_ref();
        let decision = breaker.map_or(BreakerDecision::Allow, |b| b.check(key, request.arrival_ns));
        let degrade_only = decision == BreakerDecision::Degrade;
        let compile_start = Instant::now();
        let budget = CompileBudget {
            deadline: self
                .options
                .compile_budget
                .map(|limit| compile_start + limit),
            degrade_only,
        };
        let run = |budget: CompileBudget| {
            catch_unwind(AssertUnwindSafe(|| {
                self.engine
                    .try_run_graph(request.ops.iter().map(|(op, count)| (op, *count)), budget)
            }))
        };
        // Breaker transitions are recorded onto the request's chain: a
        // `Degrade` decision short-circuits, a tripping failure opens,
        // and a successful half-open probe closes.
        let mut breaker_event = degrade_only.then_some("short-circuit");
        let (graph, fell_back) = match run(budget) {
            Ok(Ok(graph)) => {
                if !degrade_only {
                    if let Some(b) = breaker {
                        if b.record_success(key) {
                            breaker_event = Some("closed");
                        }
                    }
                }
                (Some(graph), false)
            }
            // Typed failure or panic: both feed the breaker and fall
            // through to the search-free fallback, itself panic-isolated
            // so a poisoned shape cannot kill the worker.
            Ok(Err(_)) | Err(_) => {
                if !degrade_only {
                    if let Some(b) = breaker {
                        if b.record_failure(key, request.arrival_ns) {
                            breaker_event = Some("opened");
                        }
                    }
                }
                let fallback = CompileBudget {
                    deadline: None,
                    degrade_only: true,
                };
                match run(fallback) {
                    Ok(Ok(graph)) => (Some(graph), true),
                    Ok(Err(_)) | Err(_) => (None, true),
                }
            }
        };
        let compile_ns = match (&graph, fell_back) {
            (Some(graph), false) => graph.compile_ns,
            _ => compile_start.elapsed().as_nanos(),
        };
        // Device faults are a pure function of (plan, request id, attempt),
        // so the whole retry schedule — and its virtual cost — is known
        // before the request reaches the sequenced section.
        let mut retries = 0u32;
        let mut device_failed = false;
        let mut total_device_ns = graph.as_ref().map_or(0.0, |g| g.device_ns);
        if let (Some(graph), Some(plan)) = (&graph, self.options.fault_plan.as_deref()) {
            let retry = self.options.retry;
            let mut attempt = 0u32;
            while plan.device_fault(request.id as u64, attempt) {
                if attempt >= retry.max_retries {
                    device_failed = true;
                    break;
                }
                total_device_ns += retry.backoff_for(attempt) + graph.device_ns;
                retries += 1;
                attempt += 1;
            }
        }
        CompileOutcome {
            graph,
            compile_ns,
            retries,
            device_failed,
            total_device_ns,
            breaker_event,
        }
    }

    /// Serves `requests` (any order; they are dispatched by arrival time)
    /// to completion and reports per-request latency decompositions plus
    /// worker and cache counters. Every request terminates with exactly
    /// one [`Disposition`].
    pub fn serve(&self, requests: &[Request]) -> ServingReport {
        if let Some(plan) = &self.options.fault_plan {
            self.engine.set_fault_plan(Some(Arc::clone(plan)));
        }
        let mut ordered: Vec<&Request> = requests.iter().collect();
        ordered.sort_by(|a, b| f64::total_cmp(&a.arrival_ns, &b.arrival_ns));
        let cursor = AtomicUsize::new(0);
        let sequencer = Sequencer::new();
        // Virtual free time per worker slot and per device. A request is
        // assigned (in arrival order) to the earliest-free worker slot,
        // then takes the earliest-free device once its compilation is
        // done. Slots are virtual-time identities, deliberately decoupled
        // from the OS threads doing the real compile work, so the
        // timeline cannot be skewed by thread starvation.
        let worker_pool = Mutex::new(vec![0.0f64; self.workers]);
        let device_pool = Mutex::new(vec![0.0f64; self.cluster.devices]);
        // Service-start times of admitted requests still waiting for
        // their worker. Starts are monotone non-decreasing across tickets,
        // so the front entries with `start <= arrival` have begun service
        // by the time a later request arrives — popping them yields the
        // exact queue depth at that arrival instant.
        let waiting = Mutex::new(VecDeque::<f64>::new());
        // Dispatch over the interconnect only when the pool is remote.
        let dispatch_ns = if self.cluster.devices > 1 {
            self.cluster.interconnect.latency_ns
        } else {
            0.0
        };

        let telemetry = &self.telemetry;
        let per_thread: Vec<Vec<RequestRecord>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|_| {
                    let ordered = &ordered;
                    let cursor = &cursor;
                    let sequencer = &sequencer;
                    let worker_pool = &worker_pool;
                    let device_pool = &device_pool;
                    let waiting = &waiting;
                    scope.spawn(move || {
                        let mut records = Vec::new();
                        loop {
                            let ticket = cursor.fetch_add(1, Ordering::SeqCst);
                            let Some(request) = ordered.get(ticket) else {
                                break;
                            };
                            // Pre-admission shed: a deadline that passed
                            // before arrival means the request is never
                            // compiled at all — it only takes (and
                            // immediately passes) its sequencer turn.
                            if request.deadline_ns.is_some_and(|d| d <= request.arrival_ns) {
                                sequencer.wait_for(ticket);
                                sequencer.advance();
                                let record = shed_record(request, ShedReason::DeadlineAtEnqueue);
                                if telemetry.is_enabled() {
                                    emit_request_telemetry(
                                        telemetry,
                                        request,
                                        &record,
                                        request.arrival_ns,
                                        None,
                                        dispatch_ns,
                                    );
                                }
                                records.push(record);
                                continue;
                            }
                            // Real wall-clock compile (0 on cache hits),
                            // simulated device time — the expensive part,
                            // running in parallel across threads and
                            // panic-isolated inside `compile_request`.
                            let outcome = self.compile_request(request);
                            // The worker is genuinely occupied for the real
                            // compile wall-clock while virtual arrivals keep
                            // accumulating — the one sanctioned projection
                            // of real time onto the serving timeline.
                            let compile = ClockNs::real(outcome.compile_ns as f64);

                            // Virtual bookkeeping in strict arrival order.
                            // Everything from here to `advance` must be
                            // panic-free: a panic would strand every later
                            // ticket on the sequencer.
                            sequencer.wait_for(ticket);
                            let mut waiting_q = waiting.lock();
                            while waiting_q.front().is_some_and(|&s| s <= request.arrival_ns) {
                                waiting_q.pop_front();
                            }
                            let (worker, worker_free) = earliest_free(&worker_pool.lock());
                            let start = request.arrival_ns.max(worker_free);
                            let shed = if request.deadline_ns.is_some_and(|d| start > d) {
                                Some(ShedReason::DeadlineAtDispatch)
                            } else if start > request.arrival_ns
                                && self
                                    .options
                                    .queue_capacity
                                    .is_some_and(|cap| waiting_q.len() >= cap)
                            {
                                Some(ShedReason::QueueFull)
                            } else {
                                if start > request.arrival_ns {
                                    waiting_q.push_back(start);
                                }
                                None
                            };
                            drop(waiting_q);

                            let (record, exec) = if let Some(reason) = shed {
                                // Shed: no virtual resources consumed.
                                (shed_record(request, reason), None)
                            } else if let Some(graph) = &outcome.graph {
                                let ready = start + compile.onto_virtual_timeline();
                                let (device, device_start) = {
                                    let mut pool = device_pool.lock();
                                    let (device, device_free) = earliest_free(&pool);
                                    let device_start = ready.max(device_free) + dispatch_ns;
                                    pool[device] = device_start + outcome.total_device_ns;
                                    (device, device_start)
                                };
                                let finish = device_start + outcome.total_device_ns;
                                worker_pool.lock()[worker] = finish;
                                let disposition = if outcome.device_failed {
                                    Disposition::Failed
                                } else if graph.degraded > 0 {
                                    Disposition::Degraded
                                } else {
                                    Disposition::Completed
                                };
                                (
                                    RequestRecord {
                                        id: request.id,
                                        worker,
                                        device,
                                        queue_ns: (start - request.arrival_ns)
                                            + (device_start - dispatch_ns - ready),
                                        compile,
                                        search_ns: graph.search_ns,
                                        cache_wait_ns: graph.cache_wait_ns,
                                        device_ns: outcome.total_device_ns + dispatch_ns,
                                        finish_ns: finish,
                                        disposition,
                                        shed_reason: None,
                                        retries: outcome.retries,
                                        deadline_ns: request.deadline_ns,
                                        breaker_event: outcome.breaker_event,
                                    },
                                    Some((ready, device_start)),
                                )
                            } else {
                                // Both compile paths failed: the worker was
                                // occupied for the compile window, but no
                                // device was ever dispatched.
                                let finish = start + compile.onto_virtual_timeline();
                                worker_pool.lock()[worker] = finish;
                                (
                                    RequestRecord {
                                        id: request.id,
                                        worker,
                                        device: NO_SLOT,
                                        queue_ns: start - request.arrival_ns,
                                        compile,
                                        search_ns: 0,
                                        cache_wait_ns: 0,
                                        device_ns: 0.0,
                                        finish_ns: finish,
                                        disposition: Disposition::Failed,
                                        shed_reason: None,
                                        retries: outcome.retries,
                                        deadline_ns: request.deadline_ns,
                                        breaker_event: outcome.breaker_event,
                                    },
                                    None,
                                )
                            };
                            sequencer.advance();

                            if telemetry.is_enabled() {
                                emit_request_telemetry(
                                    telemetry,
                                    request,
                                    &record,
                                    start,
                                    exec,
                                    dispatch_ns,
                                );
                            }
                            records.push(record);
                        }
                        records
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    // The per-ticket body is panic-isolated; if a worker
                    // dies anyway, surface the panic rather than silently
                    // dropping its records.
                    h.join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                })
                .collect()
        });

        let first_arrival = ordered.first().map_or(0.0, |r| r.arrival_ns);
        let last_finish = per_thread
            .iter()
            .flatten()
            .map(|r| r.finish_ns)
            .fold(first_arrival, f64::max);
        let makespan_ns = (last_finish - first_arrival).max(f64::MIN_POSITIVE);
        let mut records: Vec<RequestRecord> = per_thread.into_iter().flatten().collect();
        records.sort_by_key(|r| r.id);
        let workers = (0..self.workers)
            .map(|worker| {
                let mine = records.iter().filter(|r| r.worker == worker);
                let busy_ns = mine
                    .clone()
                    .map(|r| r.compile.onto_virtual_timeline() + r.device_ns)
                    .sum::<f64>();
                WorkerStats {
                    worker,
                    requests: mine.count(),
                    busy_ns,
                    utilization: busy_ns / makespan_ns,
                }
            })
            .collect();
        let cache = self
            .engine
            .gemm_compiler()
            .cache_stats()
            .merged(self.engine.conv_compiler().cache_stats());
        let breaker_opens = self.breaker.as_ref().map_or(0, CircuitBreaker::opens);
        if self.telemetry.is_enabled() {
            let registry = self.telemetry.registry();
            // Collector-style export: the registry's cache.* counters are
            // overwritten with the caches' own (authoritative) atomics, so
            // a metrics snapshot taken now exactly equals `cache`.
            cache.export_to(registry);
            registry.gauge("serving.workers").set(self.workers as f64);
            registry
                .gauge("serving.devices")
                .set(self.cluster.devices as f64);
            registry.gauge("serving.makespan_ms").set(makespan_ns / 1e6);
            registry
                .gauge("serving.throughput_rps")
                .set(records.len() as f64 / (makespan_ns / 1e9));
            registry
                .gauge("serving.breaker_opens")
                .set(breaker_opens as f64);
            describe_serving_metrics(registry);
            self.telemetry.export_health();
        }
        ServingReport {
            records,
            workers,
            cache,
            makespan_ns,
            breaker_opens,
        }
    }
}

/// Hands out turns in ticket order: real compile work overlaps freely
/// across threads, but each request's virtual bookkeeping runs alone, in
/// arrival order, so the timeline is scheduling-independent.
struct Sequencer {
    turn: Mutex<usize>,
    ready: Condvar,
}

impl Sequencer {
    fn new() -> Self {
        Self {
            turn: Mutex::new(0),
            ready: Condvar::new(),
        }
    }

    /// Blocks until it is `ticket`'s turn.
    fn wait_for(&self, ticket: usize) {
        let mut turn = self.turn.lock();
        while *turn != ticket {
            self.ready.wait(&mut turn);
        }
    }

    /// Passes the turn to the next ticket.
    fn advance(&self) {
        *self.turn.lock() += 1;
        self.ready.notify_all();
    }
}

/// The index and virtual free time of the earliest-free pool slot.
/// Panic-free (it runs inside the sequenced section): an empty pool —
/// excluded by the constructor asserts — would return the infinity
/// sentinel rather than panicking.
fn earliest_free(pool: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (slot, &free_at) in pool.iter().enumerate() {
        if free_at <= best.1 {
            best = (slot, free_at);
        }
    }
    best
}

/// The record for a request rejected by admission control: sentinel
/// worker/device slots, zero resource use, finish at arrival.
fn shed_record(request: &Request, reason: ShedReason) -> RequestRecord {
    RequestRecord {
        id: request.id,
        worker: NO_SLOT,
        device: NO_SLOT,
        queue_ns: 0.0,
        compile: ClockNs::real(0.0),
        search_ns: 0,
        cache_wait_ns: 0,
        device_ns: 0.0,
        finish_ns: request.arrival_ns,
        disposition: Disposition::Shed,
        shed_reason: Some(reason),
        retries: 0,
        deadline_ns: request.deadline_ns,
        breaker_event: None,
    }
}

/// The counter a record's disposition increments.
fn disposition_counter(disposition: Disposition) -> &'static str {
    match disposition {
        Disposition::Completed => "serving.completed",
        Disposition::Degraded => "serving.degraded",
        Disposition::Shed => "serving.shed",
        Disposition::Failed => "serving.failed",
    }
}

/// Maps a serving disposition onto the telemetry crate's mirror enum.
fn chain_disposition(disposition: Disposition) -> ChainDisposition {
    match disposition {
        Disposition::Completed => ChainDisposition::Completed,
        Disposition::Degraded => ChainDisposition::Degraded,
        Disposition::Shed => ChainDisposition::Shed,
        Disposition::Failed => ChainDisposition::Failed,
    }
}

/// The terminal error label a record's chain carries (`None` for served
/// requests). The chaos suite asserts every `Failed`/`Shed` record's
/// retained chain reproduces exactly this string.
pub fn record_error_label(record: &RequestRecord) -> Option<&'static str> {
    match record.disposition {
        Disposition::Shed => record.shed_reason.map(ShedReason::label),
        Disposition::Failed => Some(if record.executed() {
            "device-retries-exhausted"
        } else {
            "compile-failed"
        }),
        Disposition::Completed | Disposition::Degraded => None,
    }
}

/// Registers `# HELP` text for every serving-layer metric so Prometheus
/// snapshots are self-describing.
fn describe_serving_metrics(registry: &mikpoly_telemetry::Registry) {
    for (name, help) in [
        ("serving.requests", "requests entering the serving pipeline"),
        (
            "serving.completed",
            "requests served on the full compile path",
        ),
        ("serving.degraded", "requests served on the degraded path"),
        ("serving.shed", "requests rejected before execution"),
        (
            "serving.failed",
            "requests that exhausted retries or failed to compile",
        ),
        (
            "serving.retried",
            "device retry attempts across all requests",
        ),
        ("serving.workers", "serving worker threads in the run"),
        ("serving.devices", "simulated devices in the run"),
        (
            "serving.makespan_ms",
            "virtual time from first arrival to last completion",
        ),
        (
            "serving.throughput_rps",
            "requests per virtual second over the makespan",
        ),
        (
            "serving.breaker_opens",
            "circuit-breaker open transitions across all shapes",
        ),
        ("serving.queue_ns", "virtual queueing latency per request"),
        (
            "serving.compile_ns",
            "real host compile latency per request",
        ),
        ("serving.device_ns", "virtual device latency per request"),
        ("serving.total_ns", "end-to-end virtual latency per request"),
    ] {
        registry.describe(name, help);
    }
}

/// Builds and records the request's flight-recorder chain, returning
/// whether it was retained (retained requests get histogram exemplars,
/// so every exemplar resolves to a chain [`FlightRecorder::find`] can
/// produce).
///
/// [`FlightRecorder::find`]: mikpoly_telemetry::FlightRecorder::find
fn record_chain(telemetry: &Telemetry, request: &Request, record: &RequestRecord) -> bool {
    let cache_outcome = if record.disposition == Disposition::Shed {
        "none"
    } else if record.cache_wait_ns > 0 {
        "waited"
    } else if record.compile.real_ns() == 0.0 {
        "hit"
    } else {
        "computed"
    };
    let chain = ChainRecord {
        id: record.id as u64,
        shape_key: request_shape_key(request),
        worker: if record.worker == NO_SLOT {
            u64::MAX
        } else {
            record.worker as u64
        },
        queue_ns: record.queue_ns,
        compile_real_ns: record.compile.real_ns(),
        search_ns: record.search_ns as f64,
        cache_wait_ns: record.cache_wait_ns as f64,
        device_ns: record.device_ns,
        finish_ns: record.finish_ns,
        retries: record.retries,
        cache_outcome,
        breaker_event: record.breaker_event,
        disposition: chain_disposition(record.disposition),
        error: record_error_label(record).map(str::to_string),
    };
    telemetry.recorder().record(chain).is_some()
}

/// Emits one served request's phase spans and latency metrics.
///
/// Worker lanes carry the request timeline: the queue phases as async
/// (overlap-safe) spans, then a `serving.request` window containing the
/// `serving.compile` window, which in turn contains the per-request search
/// and coalesced-wait sub-phases (nested by time containment). The device
/// execution lands on the device's own lane when one ran (`exec` carries
/// its `(ready, device_start)` times). Shed requests get a zero-duration
/// `serving.shed` marker and their disposition counter only.
fn emit_request_telemetry(
    telemetry: &Telemetry,
    request: &Request,
    record: &RequestRecord,
    start: f64,
    exec: Option<(f64, f64)>,
    dispatch_ns: f64,
) {
    let registry = telemetry.registry();
    registry.counter("serving.requests").inc();
    registry
        .counter(disposition_counter(record.disposition))
        .inc();
    if record.retries > 0 {
        registry
            .counter("serving.retried")
            .add(u64::from(record.retries));
    }
    let rid = record.id as u64;
    // Chains are recorded before the histograms so exemplar stamping can
    // be gated on retention: every stamped exemplar id is resolvable.
    let retained = record_chain(telemetry, request, record);
    if record.disposition == Disposition::Shed {
        telemetry.record_span(
            SpanRecord::async_phase(
                "serving.shed",
                Lane::HostThread(0),
                rid,
                request.arrival_ns,
                0.0,
            )
            .with_arg("request", rid),
        );
        return;
    }
    let lane = Lane::Worker(record.worker);
    telemetry.record_span(SpanRecord::async_phase(
        "serving.queue",
        lane,
        rid,
        request.arrival_ns,
        start - request.arrival_ns,
    ));
    telemetry.record_span(
        SpanRecord::complete("serving.request", lane, start, record.finish_ns - start)
            .with_arg("request", rid),
    );
    telemetry.record_span(
        SpanRecord::complete(
            "serving.compile",
            lane,
            start,
            record.compile.onto_virtual_timeline(),
        )
        .with_arg("request", rid),
    );
    // The compile window's sub-phases, placed sequentially inside it
    // (their real-clock durations sum to at most the window's).
    let mut at = start;
    if record.search_ns > 0 {
        let dur = record.search_ns as f64;
        telemetry.record_span(
            SpanRecord::complete("serving.compile.search", lane, at, dur).with_arg("request", rid),
        );
        at += dur;
    }
    if record.cache_wait_ns > 0 {
        telemetry.record_span(
            SpanRecord::complete(
                "serving.compile.wait",
                lane,
                at,
                record.cache_wait_ns as f64,
            )
            .with_arg("request", rid),
        );
    }
    if let Some((ready, device_start)) = exec {
        let device_wait = device_start - dispatch_ns - ready;
        if device_wait > 0.0 {
            telemetry.record_span(SpanRecord::async_phase(
                "serving.queue.device",
                lane,
                rid,
                ready,
                device_wait,
            ));
        }
        telemetry.record_span(
            SpanRecord::complete(
                "serving.device",
                Lane::Device(record.device),
                device_start,
                record.finish_ns - device_start,
            )
            .with_arg("request", rid)
            .with_arg("worker", record.worker),
        );
    }
    let observe = |name: &str, clock: Clock, value: f64| {
        let histogram = registry.histogram(name, clock);
        if retained {
            histogram.record_f64_with_exemplar(value, rid);
        } else {
            histogram.record_f64(value);
        }
    };
    observe("serving.queue_ns", Clock::Virtual, record.queue_ns);
    observe("serving.compile_ns", Clock::Real, record.compile.real_ns());
    observe("serving.device_ns", Clock::Virtual, record.device_ns);
    observe(
        "serving.total_ns",
        Clock::Virtual,
        record.timeline_total_ns(),
    );
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::offline::OfflineOptions;
    use accel_sim::{Interconnect, MachineModel};
    use tensor_ir::GemmShape;

    fn engine() -> Arc<Engine> {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        Arc::new(Engine::offline(MachineModel::a100(), &o))
    }

    fn local_cluster(engine: &Engine) -> Cluster {
        Cluster::new(engine.machine().clone(), 1, Interconnect::nvlink3())
    }

    fn stream(n: usize, gap: f64) -> Vec<Request> {
        let shapes = [(256, 256, 256), (777, 512, 256), (64, 64, 64)];
        poisson_arrivals(n, gap, 7)
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let (m, nn, k) = shapes[i % shapes.len()];
                Request::single(i, t, Operator::gemm(GemmShape::new(m, nn, k)))
            })
            .collect()
    }

    #[test]
    fn decomposition_adds_up_and_all_requests_complete() {
        let engine = engine();
        let cluster = local_cluster(&engine);
        let telemetry = mikpoly_telemetry::Telemetry::enabled();
        let runtime =
            ServingRuntime::new(engine, cluster, 2).with_telemetry(Arc::clone(&telemetry));
        let requests = stream(24, 50_000.0);
        let report = runtime.serve(&requests);
        assert_eq!(report.records.len(), 24);
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.id, i);
            assert!(r.queue_ns >= -1e-6, "negative queue: {r:?}");
            assert!(r.device_ns > 0.0);
            assert_eq!(r.compile.clock(), Clock::Real);
            assert_eq!(r.disposition, Disposition::Completed);
            assert!(r.executed());
            assert!((r.timeline_total_ns() - (r.finish_ns - requests[i].arrival_ns)).abs() < 1e-3);
        }
        // 3 unique shapes → 3 polymerizations, regardless of worker count.
        assert_eq!(report.cache.computations, 3);
        assert_eq!(report.workers.len(), 2);
        assert_eq!(report.workers.iter().map(|w| w.requests).sum::<usize>(), 24);
        let counts = report.dispositions();
        assert_eq!(counts.completed, 24);
        assert_eq!(counts.total(), 24);
        assert_eq!(report.breaker_opens, 0);
        // Telemetry: every request got queue/request/compile/device spans,
        // and the exported cache counters equal the report's snapshot.
        let spans = telemetry.drain_spans();
        for name in [
            "serving.queue",
            "serving.request",
            "serving.compile",
            "serving.device",
        ] {
            let count = spans.iter().filter(|s| s.name == name).count();
            assert_eq!(count, 24, "{name}: {count} spans");
        }
        let snap = telemetry.registry().snapshot();
        assert_eq!(snap.counter("cache.hits"), Some(report.cache.hits));
        assert_eq!(
            snap.counter("cache.computations"),
            Some(report.cache.computations)
        );
        assert_eq!(
            snap.counter("cache.coalesced_waits"),
            Some(report.cache.coalesced_waits)
        );
        assert_eq!(snap.counter("serving.requests"), Some(24));
        assert_eq!(snap.counter("serving.completed"), Some(24));
        let summary = report.latency_summary();
        assert_eq!(summary.total.count, 24);
        assert_eq!(summary.compile.clock, Clock::Real);
        assert_eq!(summary.total.clock, Clock::Virtual);
    }

    #[test]
    fn more_workers_do_not_reduce_saturated_throughput() {
        // Near-zero inter-arrival gap = saturating load: service is the
        // bottleneck, so throughput must improve with workers.
        // The device pool stays fixed while the worker count varies, so
        // the comparison isolates host-side parallelism; the cache is
        // warmed first so real compile wall-clock (identical work, but
        // paid once per engine) does not blur the virtual-time comparison.
        let requests = stream(48, 1.0);
        let mut last = 0.0;
        for workers in [1usize, 2, 4] {
            let engine = engine();
            for request in &requests {
                for (op, _) in &request.ops {
                    engine.run_operator(op);
                }
            }
            let cluster = Cluster::new(engine.machine().clone(), 4, Interconnect::nvlink3());
            let report = ServingRuntime::new(engine, cluster, workers).serve(&requests);
            let rps = report.throughput_rps();
            assert!(
                rps >= last * 0.99,
                "{workers} workers: {rps} rps after {last}"
            );
            last = rps;
        }
    }

    #[test]
    fn expired_deadline_requests_are_shed_without_compiling() {
        let engine = engine();
        let cluster = local_cluster(&engine);
        let runtime = ServingRuntime::new(engine, cluster, 2);
        let requests: Vec<Request> = (0..6)
            .map(|i| {
                let arrival = i as f64 * 10_000.0;
                Request::single(i, arrival, Operator::gemm(GemmShape::new(256, 256, 256)))
                    .with_deadline(arrival - 1.0)
            })
            .collect();
        let report = runtime.serve(&requests);
        assert_eq!(report.records.len(), 6);
        for r in &report.records {
            assert_eq!(r.disposition, Disposition::Shed);
            assert_eq!(r.shed_reason, Some(ShedReason::DeadlineAtEnqueue));
            assert!(!r.executed());
            assert_eq!(r.compile.real_ns(), 0.0);
        }
        // The whole point: a request shed at enqueue is never compiled.
        assert_eq!(report.cache.computations, 0);
        assert_eq!(report.dispositions().shed, 6);
        assert_eq!(report.goodput_rps(), 0.0);
    }

    #[test]
    fn bounded_queue_sheds_bursts_and_late_starts_shed_on_deadline() {
        let engine = engine();
        let cluster = local_cluster(&engine);
        let runtime = ServingRuntime::new(engine, cluster, 1).with_options(ServingOptions {
            queue_capacity: Some(2),
            ..ServingOptions::default()
        });
        let op = || Operator::gemm(GemmShape::new(256, 256, 256));
        // A burst of 8 simultaneous arrivals against 1 worker and a
        // 2-deep queue: the first starts immediately, two wait, the rest
        // overflow. A ninth, slightly later request has a deadline far
        // tighter than the backlog, so it sheds at dispatch (the deadline
        // check dominates the queue check).
        let mut requests: Vec<Request> = (0..8).map(|i| Request::single(i, 0.0, op())).collect();
        requests.push(Request::single(8, 1.0, op()).with_deadline(2.0));
        let report = runtime.serve(&requests);
        let counts = report.dispositions();
        assert_eq!(counts.completed, 3, "{counts:?}");
        assert_eq!(counts.shed, 6, "{counts:?}");
        assert_eq!(counts.total(), 9);
        let queue_full = report
            .records
            .iter()
            .filter(|r| r.shed_reason == Some(ShedReason::QueueFull))
            .count();
        assert_eq!(queue_full, 5);
        assert_eq!(
            report.records[8].shed_reason,
            Some(ShedReason::DeadlineAtDispatch)
        );
        // Shed requests never occupy a worker slot.
        assert!(report
            .records
            .iter()
            .filter(|r| r.disposition == Disposition::Shed)
            .all(|r| r.worker == usize::MAX && !r.executed()));
    }

    #[test]
    fn breaker_opens_probes_and_recovers() {
        let engine = engine();
        let cluster = local_cluster(&engine);
        // Compilation of the (single) shape panics on its first 5
        // attempts, then heals. Threshold 2 and a cooldown shorter than
        // the arrival gap give a fully deterministic single-worker
        // timeline: fail, fail-and-open, three failed probes (re-opens),
        // a successful probe that closes, then cache hits.
        let plan = FaultPlan {
            seed: 11,
            compile_panic_rate: 1.0,
            panic_attempts: 5,
            ..FaultPlan::none()
        };
        let runtime = ServingRuntime::new(engine, cluster, 1).with_options(ServingOptions {
            breaker: Some(BreakerPolicy {
                failure_threshold: 2,
                cooldown_ns: 5_000.0,
            }),
            fault_plan: Some(Arc::new(plan)),
            ..ServingOptions::default()
        });
        let requests: Vec<Request> = (0..8)
            .map(|i| {
                Request::single(
                    i,
                    i as f64 * 10_000.0,
                    Operator::gemm(GemmShape::new(256, 256, 256)),
                )
            })
            .collect();
        let report = runtime.serve(&requests);
        let counts = report.dispositions();
        assert_eq!(counts.degraded, 5, "{counts:?}");
        assert_eq!(counts.completed, 3, "{counts:?}");
        assert_eq!(counts.failed, 0, "{counts:?}");
        // Open on the second failure, then three failed probes re-open.
        assert_eq!(report.breaker_opens, 4);
        for r in &report.records[..5] {
            assert_eq!(r.disposition, Disposition::Degraded, "{r:?}");
            assert!(r.executed(), "degraded requests still run: {r:?}");
        }
        for r in &report.records[5..] {
            assert_eq!(r.disposition, Disposition::Completed, "{r:?}");
        }
    }

    #[test]
    fn poisson_arrivals_are_deterministic_and_increasing() {
        let a = poisson_arrivals(100, 1000.0, 42);
        let b = poisson_arrivals(100, 1000.0, 42);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        let mean_gap = a.last().unwrap() / 100.0;
        assert!(mean_gap > 300.0 && mean_gap < 3000.0, "mean gap {mean_gap}");
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.5), 51.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
