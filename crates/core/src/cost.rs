//! The polymerization cost model (Section 3.4, Eq. 2–4).
//!
//! For a tensor program `S` with regions `R_i`, each instantiated with a
//! micro-kernel `K̃_i`:
//!
//! ```text
//! Cost(S, H) = Σ_i f_wave(R_i, K̃_i, H) * f_pipe(R_i, K̃_i, H)
//! f_wave = ceil( f_parallel(R_i, K̃_i) / |P_multi| )      (Eq. 3)
//! f_pipe = g_predict( f_num(R_i, K̃_i), K̃_i, H )          (Eq. 4)
//! ```
//!
//! `f_parallel` counts pipelined tasks (the non-reduction loops) and `f_num`
//! the micro-kernel instances per task (the reduction loop). The two
//! ablation variants of Fig. 12(b) keep only one factor each: `MikPoly-Wave`
//! minimizes wave count (favoring large micro-kernels), `MikPoly-Pipe`
//! minimizes single-PE pipelined-task cost (favoring small ones).

use serde::{Deserialize, Serialize};

use crate::perf_model::PerfModel;
use crate::plan::Region;

/// Which cost model drives strategy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CostModelKind {
    /// The full Eq. 2 model: waves x pipelined-task cost.
    #[default]
    Full,
    /// `MikPoly-Wave`: wave count only.
    WaveOnly,
    /// `MikPoly-Pipe`: pipelined-task cost only.
    PipeOnly,
}

impl std::fmt::Display for CostModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CostModelKind::Full => "MikPoly",
            CostModelKind::WaveOnly => "MikPoly-Wave",
            CostModelKind::PipeOnly => "MikPoly-Pipe",
        };
        f.write_str(s)
    }
}

/// `f_wave`: the number of waves needed to run the region's tasks across
/// the PEs.
pub fn f_wave(region: &Region, num_pes: usize) -> usize {
    region.tasks().div_ceil(num_pes)
}

/// `f_pipe`: the predicted duration of one of the region's pipelined tasks
/// on one PE.
pub fn f_pipe(region: &Region, k_extent: usize, perf: &PerfModel) -> f64 {
    perf.predict(region.instances(k_extent))
}

/// The cost contribution of one region under the chosen model.
pub fn region_cost(
    kind: CostModelKind,
    region: &Region,
    k_extent: usize,
    num_pes: usize,
    perf: &PerfModel,
) -> f64 {
    let waves = f_wave(region, num_pes) as f64;
    match kind {
        CostModelKind::Full => waves * f_pipe(region, k_extent, perf),
        CostModelKind::WaveOnly => waves,
        CostModelKind::PipeOnly => f_pipe(region, k_extent, perf),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{MicroKernel, MicroKernelId};
    use crate::perf_model::{sample_schedule, PerfModel};

    fn affine_model(intercept: f64, slope: f64) -> PerfModel {
        let samples: Vec<(usize, f64)> = sample_schedule(512)
            .iter()
            .map(|&t| (t, intercept + slope * t as f64))
            .collect();
        PerfModel::fit(&samples, 3)
    }

    fn region(m: usize, n: usize, um: usize, un: usize, uk: usize) -> Region {
        Region::new(
            0,
            m,
            0,
            n,
            MicroKernel::new(MicroKernelId(0), um, un, uk, 4),
        )
    }

    #[test]
    fn f_wave_quantizes_to_pe_count() {
        let r = region(4096, 1024, 256, 128, 32);
        // (4096/256) * (1024/128) = 128 tasks on 108 PEs -> 2 waves. This is
        // exactly the GEMM-A case of Section 6.
        assert_eq!(r.tasks(), 128);
        assert_eq!(f_wave(&r, 108), 2);
        let r_small = region(3072, 1024, 256, 128, 32);
        assert_eq!(r_small.tasks(), 96);
        assert_eq!(f_wave(&r_small, 108), 1);
    }

    #[test]
    fn full_cost_multiplies_waves_and_pipe() {
        let perf = affine_model(100.0, 10.0);
        let r = region(4096, 1024, 256, 128, 32);
        let k = 4096;
        let expected_pipe = perf.predict(4096 / 32);
        let c = region_cost(CostModelKind::Full, &r, k, 108, &perf);
        assert!((c - 2.0 * expected_pipe).abs() < 1e-6);
    }

    #[test]
    fn wave_only_ignores_kernel_speed() {
        let fast = affine_model(10.0, 1.0);
        let slow = affine_model(1000.0, 100.0);
        let r = region(512, 512, 64, 64, 32);
        let a = region_cost(CostModelKind::WaveOnly, &r, 256, 108, &fast);
        let b = region_cost(CostModelKind::WaveOnly, &r, 256, 108, &slow);
        assert_eq!(a, b);
    }

    #[test]
    fn pipe_only_ignores_parallelism() {
        let perf = affine_model(100.0, 10.0);
        let small = region(64, 64, 64, 64, 32);
        let huge = region(6400, 6400, 64, 64, 32);
        let a = region_cost(CostModelKind::PipeOnly, &small, 64, 108, &perf);
        let b = region_cost(CostModelKind::PipeOnly, &huge, 64, 108, &perf);
        assert_eq!(a, b);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(CostModelKind::Full.to_string(), "MikPoly");
        assert_eq!(CostModelKind::WaveOnly.to_string(), "MikPoly-Wave");
        assert_eq!(CostModelKind::PipeOnly.to_string(), "MikPoly-Pipe");
    }
}
