//! Serving reports, summaries, and telemetry emission.
//!
//! Everything observational lives here: the per-stream [`ServingReport`]
//! with its disposition/latency/SLO summaries, per-tenant aggregation,
//! the exact-percentile helper, and the span/metric/flight-recorder
//! emission shared by the solo and batched dispatchers.

use mikpoly_telemetry::{
    ChainRecord, Clock, Histogram, Lane, LatencyStats, SloEngine, SloObservation, SloPolicy,
    SloReport, SpanRecord, Telemetry,
};

use super::request::{
    chain_disposition, record_error_label, request_shape_key, Disposition, Request, RequestRecord,
    TenantId, NO_SLOT,
};
use crate::cache::CacheStats;

/// Per-worker accounting over one [`ServingRuntime::serve`] call.
///
/// [`ServingRuntime::serve`]: crate::serving::ServingRuntime::serve
#[derive(Debug, Clone, Copy)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Requests this worker served.
    pub requests: usize,
    /// Virtual busy time, ns: compile + device on the solo path, compile
    /// only under continuous batching (the worker is released at
    /// compile-done and the device wave proceeds without it).
    pub busy_ns: f64,
    /// `busy_ns` over the stream's makespan.
    pub utilization: f64,
}

/// How many requests ended in each [`Disposition`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispositionCounts {
    /// Served with a fully-searched program.
    pub completed: usize,
    /// Served with a degraded program.
    pub degraded: usize,
    /// Rejected by admission control.
    pub shed: usize,
    /// Admitted but not served.
    pub failed: usize,
}

impl DispositionCounts {
    /// Total requests across all dispositions.
    pub fn total(&self) -> usize {
        self.completed + self.degraded + self.shed + self.failed
    }

    /// Requests that produced an answer (completed + degraded).
    pub fn served(&self) -> usize {
        self.completed + self.degraded
    }
}

/// One tenant's slice of a serving report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantStats {
    /// The tenant.
    pub tenant: TenantId,
    /// Requests the tenant submitted.
    pub requests: usize,
    /// Its disposition tally.
    pub dispositions: DispositionCounts,
    /// Virtual device time its requests occupied, ns (a co-launched
    /// request counts its whole wave, as in its record).
    pub device_ns: f64,
    /// Served requests per virtual second over the stream's makespan.
    pub goodput_rps: f64,
}

/// Everything one `serve` call observed.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Per-request records, in request-id order.
    pub records: Vec<RequestRecord>,
    /// Per-worker accounting.
    pub workers: Vec<WorkerStats>,
    /// Engine program-cache counters after the stream (GEMM and conv
    /// caches merged).
    pub cache: CacheStats,
    /// Virtual time from first arrival to last completion, ns.
    pub makespan_ns: f64,
    /// Times any shape's circuit breaker opened (0 without a breaker).
    pub breaker_opens: u64,
}

impl ServingReport {
    /// Requests (of any disposition) per virtual second.
    pub fn throughput_rps(&self) -> f64 {
        self.records.len() as f64 / (self.makespan_ns / 1e9)
    }

    /// *Served* requests (completed + degraded) per virtual second — the
    /// throughput that survives shedding and failures.
    pub fn goodput_rps(&self) -> f64 {
        self.dispositions().served() as f64 / (self.makespan_ns / 1e9)
    }

    /// Tallies every record's disposition. By construction each request
    /// contributes exactly one, so `dispositions().total()` equals
    /// `records.len()`.
    pub fn dispositions(&self) -> DispositionCounts {
        let mut counts = DispositionCounts::default();
        for r in &self.records {
            tally(&mut counts, r.disposition);
        }
        counts
    }

    /// Per-tenant disposition and goodput breakdown, sorted by tenant
    /// id. Single-tenant streams yield one entry for tenant 0.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        let mut tenants: Vec<TenantStats> = Vec::new();
        for r in &self.records {
            let entry = match tenants.iter_mut().find(|t| t.tenant == r.tenant) {
                Some(entry) => entry,
                None => {
                    tenants.push(TenantStats {
                        tenant: r.tenant,
                        requests: 0,
                        dispositions: DispositionCounts::default(),
                        device_ns: 0.0,
                        goodput_rps: 0.0,
                    });
                    // The freshly pushed element, by construction.
                    match tenants.last_mut() {
                        Some(entry) => entry,
                        None => unreachable!("just pushed"),
                    }
                }
            };
            entry.requests += 1;
            tally(&mut entry.dispositions, r.disposition);
            entry.device_ns += r.device_ns;
        }
        for t in &mut tenants {
            t.goodput_rps = t.dispositions.served() as f64 / (self.makespan_ns / 1e9);
        }
        tenants.sort_by_key(|t| t.tenant);
        tenants
    }

    /// Mean co-launch wave size over executed requests (1.0 when every
    /// request ran solo; 0 when nothing executed).
    pub fn mean_batch_size(&self) -> f64 {
        let executed: Vec<usize> = self
            .records
            .iter()
            .filter(|r| r.executed())
            .map(|r| r.batch_size.max(1))
            .collect();
        if executed.is_empty() {
            return 0.0;
        }
        executed.iter().sum::<usize>() as f64 / executed.len() as f64
    }

    /// Summarizes the latency distribution and its decomposition by
    /// feeding every record through the telemetry histogram type — one
    /// clock-labelled readout per phase, so real (compile) and virtual
    /// (queue/device/total) time can never be conflated in a summary.
    /// Percentiles are log2-bucket estimates (within one bucket width of
    /// exact — see [`percentile`] for the exact sorted-slice form); counts,
    /// means, and maxima are exact.
    pub fn latency_summary(&self) -> LatencySummary {
        let total = Histogram::new(Clock::Virtual);
        let queue = Histogram::new(Clock::Virtual);
        let compile = Histogram::new(Clock::Real);
        let device = Histogram::new(Clock::Virtual);
        for r in &self.records {
            total.record_f64(r.timeline_total_ns());
            queue.record_f64(r.queue_ns);
            compile.record_f64(r.compile.real_ns());
            device.record_f64(r.device_ns);
        }
        LatencySummary {
            total: total.stats(),
            queue: queue.stats(),
            compile: compile.stats(),
            device: device.stats(),
        }
    }

    /// Evaluates the stream against `policy`: every record becomes one
    /// [`SloObservation`] (deadline verdicts only for requests that
    /// carried a deadline), and the engine's disposition tally is built
    /// from the same records as [`ServingReport::dispositions`], so the
    /// two always agree — `mikpoly health` asserts this equality.
    pub fn evaluate_slo(&self, policy: SloPolicy) -> SloReport {
        let mut engine = SloEngine::new(policy);
        for r in &self.records {
            let served = matches!(
                r.disposition,
                Disposition::Completed | Disposition::Degraded
            );
            engine.observe(SloObservation {
                finish_ns: r.finish_ns,
                disposition: chain_disposition(r.disposition),
                deadline_met: r.deadline_ns.map(|d| served && r.finish_ns <= d),
                compile_ns: r.compile.real_ns(),
            });
        }
        engine.evaluate()
    }
}

fn tally(counts: &mut DispositionCounts, disposition: Disposition) {
    match disposition {
        Disposition::Completed => counts.completed += 1,
        Disposition::Degraded => counts.degraded += 1,
        Disposition::Shed => counts.shed += 1,
        Disposition::Failed => counts.failed += 1,
    }
}

/// Per-phase latency readouts, each tagged with the clock it was measured
/// on (`total`/`queue`/`device` are virtual serving time; `compile` is
/// real host time).
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// End-to-end timeline latency (virtual clock).
    pub total: LatencyStats,
    /// Queueing component (virtual clock).
    pub queue: LatencyStats,
    /// Online-compilation component (real clock).
    pub compile: LatencyStats,
    /// Device component including dispatch (virtual clock).
    pub device: LatencyStats,
}

/// Nearest-rank percentile of an ascending-sorted slice.
///
/// The empty slice yields 0 explicitly, `p` is clamped into `[0, 1]`,
/// and debug builds assert the input really is sorted — unsorted input
/// would silently return an arbitrary element, which is how a garbage
/// p99 once made it into a results table.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile input must be ascending-sorted"
    );
    let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The counter a record's disposition increments.
pub(crate) fn disposition_counter(disposition: Disposition) -> &'static str {
    match disposition {
        Disposition::Completed => "serving.completed",
        Disposition::Degraded => "serving.degraded",
        Disposition::Shed => "serving.shed",
        Disposition::Failed => "serving.failed",
    }
}

/// Registers `# HELP` text for every serving-layer metric so Prometheus
/// snapshots are self-describing.
pub(crate) fn describe_serving_metrics(registry: &mikpoly_telemetry::Registry) {
    for (name, help) in [
        ("serving.requests", "requests entering the serving pipeline"),
        (
            "serving.completed",
            "requests served on the full compile path",
        ),
        ("serving.degraded", "requests served on the degraded path"),
        ("serving.shed", "requests rejected before execution"),
        (
            "serving.failed",
            "requests that exhausted retries or failed to compile",
        ),
        (
            "serving.retried",
            "device retry attempts across all requests",
        ),
        ("serving.workers", "serving worker threads in the run"),
        ("serving.devices", "simulated devices in the run"),
        (
            "serving.makespan_ms",
            "virtual time from first arrival to last completion",
        ),
        (
            "serving.throughput_rps",
            "requests per virtual second over the makespan",
        ),
        (
            "serving.breaker_opens",
            "circuit-breaker open transitions across all shapes",
        ),
        ("serving.queue_ns", "virtual queueing latency per request"),
        (
            "serving.compile_ns",
            "real host compile latency per request",
        ),
        ("serving.device_ns", "virtual device latency per request"),
        ("serving.total_ns", "end-to-end virtual latency per request"),
        (
            "serving.waves",
            "co-launch device waves dispatched by the batched dispatcher",
        ),
        (
            "serving.batch_size",
            "requests co-launched per device wave, per executed request",
        ),
        (
            "serving.wave_occupancy_pct",
            "per-wave resident-warp demand as a percentage of machine capacity",
        ),
        (
            "serving.drain.drained",
            "requests shed because admission was closed by a graceful drain",
        ),
        (
            "serving.drain.generation",
            "warm-state generation the drain persisted the caches under",
        ),
    ] {
        registry.describe(name, help);
    }
}

/// Builds and records the request's flight-recorder chain, returning
/// whether it was retained (retained requests get histogram exemplars,
/// so every exemplar resolves to a chain [`FlightRecorder::find`] can
/// produce).
///
/// [`FlightRecorder::find`]: mikpoly_telemetry::FlightRecorder::find
fn record_chain(telemetry: &Telemetry, request: &Request, record: &RequestRecord) -> bool {
    let cache_outcome = if record.disposition == Disposition::Shed {
        "none"
    } else if record.cache_wait_ns > 0 {
        "waited"
    } else if record.compile.real_ns() == 0.0 {
        "hit"
    } else {
        "computed"
    };
    let chain = ChainRecord {
        id: record.id as u64,
        shape_key: request_shape_key(request),
        worker: if record.worker == NO_SLOT {
            u64::MAX
        } else {
            record.worker as u64
        },
        tenant: record.tenant,
        queue_ns: record.queue_ns,
        compile_real_ns: record.compile.real_ns(),
        search_ns: record.search_ns as f64,
        cache_wait_ns: record.cache_wait_ns as f64,
        device_ns: record.device_ns,
        finish_ns: record.finish_ns,
        retries: record.retries,
        cache_outcome,
        breaker_event: record.breaker_event,
        disposition: chain_disposition(record.disposition),
        error: record_error_label(record).map(str::to_string),
    };
    telemetry.recorder().record(chain).is_some()
}

/// Dispatch-side context for one record's telemetry emission.
pub(crate) struct EmitContext {
    /// Virtual service-start instant (worker acquired).
    pub(crate) start: f64,
    /// `(ready, device_start)` when a device executed the request.
    pub(crate) exec: Option<(f64, f64)>,
    /// Interconnect dispatch latency in force, ns.
    pub(crate) dispatch_ns: f64,
    /// Whether a tenant policy is configured (gates `serving.tenant.*`).
    pub(crate) tenancy: bool,
    /// Whether the batched dispatcher produced this record.
    pub(crate) batched: bool,
}

/// Emits one request's phase spans, latency metrics, and chain.
///
/// Worker lanes carry the request timeline: the queue phases as async
/// (overlap-safe) spans, then a `serving.request` window containing the
/// `serving.compile` window, which in turn contains the per-request search
/// and coalesced-wait sub-phases (nested by time containment). The device
/// execution lands on the device's own lane when one ran (`ctx.exec`
/// carries its `(ready, device_start)` times) — as a complete span on the
/// solo path, as an overlap-safe async span under batching, where wave
/// members share the device lane. Shed requests get a zero-duration
/// `serving.shed` marker and their disposition counters only.
pub(crate) fn emit_request_telemetry(
    telemetry: &Telemetry,
    request: &Request,
    record: &RequestRecord,
    ctx: &EmitContext,
) {
    let registry = telemetry.registry();
    registry.counter("serving.requests").inc();
    registry
        .counter(disposition_counter(record.disposition))
        .inc();
    if ctx.tenancy {
        registry
            .counter(&format!("serving.tenant.{}.requests", record.tenant))
            .inc();
        let outcome = match record.disposition {
            Disposition::Completed | Disposition::Degraded => "served",
            Disposition::Shed => "shed",
            Disposition::Failed => "failed",
        };
        registry
            .counter(&format!("serving.tenant.{}.{outcome}", record.tenant))
            .inc();
    }
    if record.retries > 0 {
        registry
            .counter("serving.retried")
            .add(u64::from(record.retries));
    }
    let rid = record.id as u64;
    // Chains are recorded before the histograms so exemplar stamping can
    // be gated on retention: every stamped exemplar id is resolvable.
    let retained = record_chain(telemetry, request, record);
    if record.disposition == Disposition::Shed {
        telemetry.record_span(
            SpanRecord::async_phase(
                "serving.shed",
                Lane::HostThread(0),
                rid,
                request.arrival_ns,
                0.0,
            )
            .with_arg("request", rid),
        );
        return;
    }
    let lane = Lane::Worker(record.worker);
    telemetry.record_span(SpanRecord::async_phase(
        "serving.queue",
        lane,
        rid,
        request.arrival_ns,
        ctx.start - request.arrival_ns,
    ));
    telemetry.record_span(
        SpanRecord::complete(
            "serving.request",
            lane,
            ctx.start,
            record.finish_ns - ctx.start,
        )
        .with_arg("request", rid),
    );
    telemetry.record_span(
        SpanRecord::complete(
            "serving.compile",
            lane,
            ctx.start,
            record.compile.onto_virtual_timeline(),
        )
        .with_arg("request", rid),
    );
    // The compile window's sub-phases, placed sequentially inside it
    // (their real-clock durations sum to at most the window's).
    let mut at = ctx.start;
    if record.search_ns > 0 {
        let dur = record.search_ns as f64;
        telemetry.record_span(
            SpanRecord::complete("serving.compile.search", lane, at, dur).with_arg("request", rid),
        );
        at += dur;
    }
    if record.cache_wait_ns > 0 {
        telemetry.record_span(
            SpanRecord::complete(
                "serving.compile.wait",
                lane,
                at,
                record.cache_wait_ns as f64,
            )
            .with_arg("request", rid),
        );
    }
    if let Some((ready, device_start)) = ctx.exec {
        let device_wait = device_start - ctx.dispatch_ns - ready;
        if device_wait > 0.0 {
            telemetry.record_span(SpanRecord::async_phase(
                "serving.queue.device",
                lane,
                rid,
                ready,
                device_wait,
            ));
        }
        let device_lane = Lane::Device(record.device);
        let device_dur = record.finish_ns - device_start;
        if ctx.batched {
            // Wave members overlap on the shared device lane; async
            // spans keep the trace well-formed.
            telemetry.record_span(
                SpanRecord::async_phase(
                    "serving.device",
                    device_lane,
                    rid,
                    device_start,
                    device_dur,
                )
                .with_arg("request", rid)
                .with_arg("worker", record.worker),
            );
        } else {
            telemetry.record_span(
                SpanRecord::complete("serving.device", device_lane, device_start, device_dur)
                    .with_arg("request", rid)
                    .with_arg("worker", record.worker),
            );
        }
    }
    let observe = |name: &str, clock: Clock, value: f64| {
        let histogram = registry.histogram(name, clock);
        if retained {
            histogram.record_f64_with_exemplar(value, rid);
        } else {
            histogram.record_f64(value);
        }
    };
    observe("serving.queue_ns", Clock::Virtual, record.queue_ns);
    observe("serving.compile_ns", Clock::Real, record.compile.real_ns());
    observe("serving.device_ns", Clock::Virtual, record.device_ns);
    observe(
        "serving.total_ns",
        Clock::Virtual,
        record.timeline_total_ns(),
    );
    if ctx.batched && record.executed() {
        registry
            .histogram("serving.batch_size", Clock::Virtual)
            .record_f64(record.batch_size.max(1) as f64);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.5), 51.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
    }

    #[test]
    fn percentile_handles_empty_and_degenerate_inputs() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[42.0], 0.0), 42.0);
        assert_eq!(percentile(&[42.0], 1.0), 42.0);
        // Out-of-range ranks clamp instead of indexing out of bounds.
        assert_eq!(percentile(&[1.0, 2.0], 2.0), 2.0);
        assert_eq!(percentile(&[1.0, 2.0], -1.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0], f64::NAN), 1.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "ascending-sorted")]
    fn percentile_rejects_unsorted_input_in_debug_builds() {
        let _ = percentile(&[3.0, 1.0, 2.0], 0.5);
    }
}
