//! Multi-tenant admission control and weighted-fairness accounting.
//!
//! Admission sits in front of the dispatcher. Single-tenant streams see
//! exactly the PR 5 behaviour (deadline sheds and the bounded global
//! queue); configuring a [`TenantPolicy`] adds two mechanisms on top:
//!
//! * **waiting-slot quotas** — each tenant may hold at most
//!   [`TenantQuota::max_waiting`] slots of the wait queue. A burst from
//!   one tenant fills *its own* allowance and is shed with
//!   [`ShedReason::TenantThrottled`](crate::serving::ShedReason) before
//!   it can crowd out other tenants' share of the global queue. This is
//!   the isolation mechanism the batch-serving experiment gates on.
//! * **weighted fair ordering** — the dispatcher orders co-batched
//!   requests by each tenant's *normalized service* (virtual device time
//!   consumed divided by its weight, least first), so under capacity
//!   pressure the tenant furthest below its weighted share goes first.
//!
//! The shed-check order is fixed: deadline-at-dispatch, then tenant
//! throttle, then global queue-full — a request that is both late and
//! over-quota reports the deadline, and the throttle never masks a full
//! queue for unconfigured tenants.

use std::collections::{HashMap, VecDeque};

use super::request::TenantId;

/// One tenant's admission quota and fair-share weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// The tenant this quota applies to.
    pub tenant: TenantId,
    /// Fair-share weight for dispatch ordering (relative to the other
    /// tenants; values `<= 0` are treated as the minimum positive
    /// weight). A tenant with weight 2 is entitled to twice the device
    /// time of a weight-1 tenant before it yields its turn.
    pub weight: f64,
    /// Bound on this tenant's simultaneously waiting requests; `None`
    /// leaves the tenant limited only by the global queue capacity.
    pub max_waiting: Option<usize>,
}

impl TenantQuota {
    /// An equal-weight quota with a waiting bound.
    pub fn new(tenant: TenantId, max_waiting: usize) -> Self {
        Self {
            tenant,
            weight: 1.0,
            max_waiting: Some(max_waiting),
        }
    }

    /// Sets the fair-share weight (builder style).
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }
}

/// The multi-tenant admission policy: a list of per-tenant quotas.
/// Tenants without an entry get weight 1 and no per-tenant waiting
/// bound (the global queue still applies).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantPolicy {
    /// The configured quotas, at most one per tenant id.
    pub quotas: Vec<TenantQuota>,
}

impl TenantPolicy {
    /// A policy from explicit quotas.
    pub fn new(quotas: Vec<TenantQuota>) -> Self {
        Self { quotas }
    }

    /// The quota configured for `tenant`, if any.
    pub fn quota_for(&self, tenant: TenantId) -> Option<&TenantQuota> {
        self.quotas.iter().find(|q| q.tenant == tenant)
    }

    /// The tenant's fair-share weight (1 when unconfigured; clamped to a
    /// minimum positive value so normalized service never divides by
    /// zero).
    pub fn weight_for(&self, tenant: TenantId) -> f64 {
        self.quota_for(tenant)
            .map_or(1.0, |q| q.weight)
            .max(f64::MIN_POSITIVE)
    }

    /// The tenant's waiting-slot bound, if configured.
    pub fn max_waiting_for(&self, tenant: TenantId) -> Option<usize> {
        self.quota_for(tenant).and_then(|q| q.max_waiting)
    }
}

/// Wait-queue accounting shared by the solo and batched dispatchers.
///
/// Entries are the *service-start times* of admitted requests that had
/// to wait. Starts are monotone non-decreasing across tickets, so the
/// front entries with `start <= arrival` have begun service by the time
/// a later request arrives — expiring them yields the exact global and
/// per-tenant queue depths at that arrival instant.
#[derive(Debug, Default)]
pub(crate) struct WaitQueue {
    entries: VecDeque<(f64, TenantId)>,
    per_tenant: HashMap<TenantId, usize>,
}

impl WaitQueue {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Drops every entry whose service started at or before `now_ns`.
    pub(crate) fn expire(&mut self, now_ns: f64) {
        while self.entries.front().is_some_and(|&(s, _)| s <= now_ns) {
            if let Some((_, tenant)) = self.entries.pop_front() {
                if let Some(n) = self.per_tenant.get_mut(&tenant) {
                    *n = n.saturating_sub(1);
                }
            }
        }
    }

    /// Requests currently waiting across all tenants.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Requests currently waiting for one tenant.
    pub(crate) fn tenant_len(&self, tenant: TenantId) -> usize {
        self.per_tenant.get(&tenant).copied().unwrap_or(0)
    }

    /// Records an admitted request that waits until `start_ns`.
    pub(crate) fn push(&mut self, start_ns: f64, tenant: TenantId) {
        self.entries.push_back((start_ns, tenant));
        *self.per_tenant.entry(tenant).or_insert(0) += 1;
    }
}

/// Weighted-fairness service meter: tracks each tenant's accumulated
/// virtual device time and orders contenders by normalized service.
#[derive(Debug, Default)]
pub(crate) struct FairMeter {
    service_ns: HashMap<TenantId, f64>,
}

impl FairMeter {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// The tenant's accumulated device time divided by its weight — the
    /// quantity weighted fair queueing equalizes.
    pub(crate) fn normalized_service(&self, policy: &TenantPolicy, tenant: TenantId) -> f64 {
        self.service_ns.get(&tenant).copied().unwrap_or(0.0) / policy.weight_for(tenant)
    }

    /// Charges `ns` of device time to the tenant.
    pub(crate) fn charge(&mut self, tenant: TenantId, ns: f64) {
        *self.service_ns.entry(tenant).or_insert(0.0) += ns;
    }

    /// Stable-sorts `indices` so tenants furthest below their weighted
    /// share come first (ties keep the incoming arrival order).
    pub(crate) fn order_by_fairness<F>(
        &self,
        policy: &TenantPolicy,
        indices: &mut [usize],
        tenant_of: F,
    ) where
        F: Fn(usize) -> TenantId,
    {
        indices.sort_by(|&a, &b| {
            let na = self.normalized_service(policy, tenant_of(a));
            let nb = self.normalized_service(policy, tenant_of(b));
            f64::total_cmp(&na, &nb).then(a.cmp(&b))
        });
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn wait_queue_tracks_global_and_per_tenant_depth() {
        let mut q = WaitQueue::new();
        q.push(10.0, 0);
        q.push(20.0, 1);
        q.push(30.0, 1);
        assert_eq!(q.len(), 3);
        assert_eq!(q.tenant_len(1), 2);
        q.expire(20.0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.tenant_len(0), 0);
        assert_eq!(q.tenant_len(1), 1);
        q.expire(100.0);
        assert_eq!(q.len(), 0);
        assert_eq!(q.tenant_len(1), 0);
    }

    #[test]
    fn policy_defaults_are_weight_one_and_unbounded() {
        let policy = TenantPolicy::new(vec![TenantQuota::new(1, 4).with_weight(3.0)]);
        assert_eq!(policy.weight_for(1), 3.0);
        assert_eq!(policy.max_waiting_for(1), Some(4));
        assert_eq!(policy.weight_for(7), 1.0);
        assert_eq!(policy.max_waiting_for(7), None);
        // A degenerate weight cannot blow up normalized service.
        let degenerate = TenantPolicy::new(vec![TenantQuota::new(2, 1).with_weight(0.0)]);
        assert!(degenerate.weight_for(2) > 0.0);
    }

    #[test]
    fn fair_meter_orders_least_served_first() {
        let policy = TenantPolicy::new(vec![
            TenantQuota::new(0, 8).with_weight(1.0),
            TenantQuota::new(1, 8).with_weight(2.0),
        ]);
        let mut meter = FairMeter::new();
        meter.charge(0, 1000.0);
        meter.charge(1, 1500.0);
        // Tenant 1's normalized service (750) is below tenant 0's (1000),
        // so its members order first despite more raw device time.
        let tenants = [0u32, 1u32, 0u32, 1u32];
        let mut order: Vec<usize> = (0..tenants.len()).collect();
        meter.order_by_fairness(&policy, &mut order, |i| tenants[i]);
        assert_eq!(order, vec![1, 3, 0, 2]);
    }
}
