//! Concurrent serving runtime over a shared [`Engine`](crate::Engine).
//!
//! The paper motivates dynamic-shape compilation with model serving, where
//! requests with runtime-determined shapes arrive continuously. This
//! module closes that loop: a pool of worker threads serves a request
//! stream from one shared engine, exercising the sharded single-flight
//! program cache exactly as a real server would — concurrent first-sight
//! shapes coalesce onto one polymerization, repeats hit without blocking
//! writers.
//!
//! # Layering
//!
//! Serving is split into layers, each its own submodule:
//!
//! * [`request`] — the request/record vocabulary: [`Request`],
//!   [`RequestRecord`], [`Disposition`], [`ShedReason`], tenant ids, and
//!   the canonical shape key.
//! * [`admission`] — multi-tenant admission: per-tenant waiting-slot
//!   quotas ([`TenantQuota`]) and weighted-fairness accounting.
//! * [`batching`] — shape-bucketed continuous batching: compiled
//!   requests buffer in per-shape buckets under a bounded batch-forming
//!   delay ([`BatchingOptions`]).
//! * [`colaunch`] — the co-launch planner: flushed buckets are packed
//!   into multi-group device waves that never oversubscribe the
//!   machine's warp slots.
//! * [`worker`] — the [`ServingRuntime`] itself: the solo dispatcher
//!   (PR 5 behaviour, the default) and the batched dispatcher wiring the
//!   layers above together.
//! * [`lifecycle`] — long-lived-process concerns: graceful drain
//!   ([`Lifecycle`], [`DrainReport`]) and live warm-state snapshots
//!   ([`Snapshotter`]) taken off the lock-free cache read path.
//! * [`report`] — [`ServingReport`], latency summaries, per-tenant
//!   stats, and the telemetry emission shared by both dispatchers.
//!
//! Everything is re-exported flat from this module, so
//! `serving::ServingRuntime` et al. keep working unchanged.
//!
//! # Timing methodology
//!
//! Each request's latency decomposes into three parts measured on two
//! different clocks:
//!
//! * **compile** — *real* wall-clock nanoseconds the worker spent in
//!   online polymerization (zero on a cache hit; the coalesced-wait time
//!   when another worker was compiling the same shape). This is the
//!   overhead MikPoly actually pays on the host.
//! * **device** — *simulated* device nanoseconds from the accelerator
//!   model, plus the cluster's dispatch latency when the device pool is
//!   remote (more than one device behind an interconnect). Under
//!   batching this is the request's *wave* time: the simulated duration
//!   of the merged launch it shared with its bucket peers.
//! * **queue** — *virtual* waiting time: from arrival until a worker and
//!   a device were both free — plus, under batching, the bounded
//!   batch-forming delay between compile-done and wave dispatch.
//!   Arrivals are virtual timestamps (e.g. Poisson via
//!   [`poisson_arrivals`]); each worker advances a virtual clock
//!   `free_at`, and the device pool keeps a per-device virtual free
//!   time, so queueing behaviour is deterministic under a seed while
//!   compile times remain real measurements.
//!
//! Workers pull requests in arrival order from a shared cursor (FIFO
//! dispatch to the first idle worker), which is the M/G/m discipline the
//! tail-latency experiment models.
//!
//! The real work (compilation) runs in parallel across OS threads, but
//! the *virtual* bookkeeping — which worker slot and device a request
//! takes, and when — is applied in strict arrival order behind a ticket
//! sequencer (solo) or computed in a single-threaded dispatch replay
//! (batched). The virtual timeline is therefore a deterministic function
//! of the request stream and the measured compile durations, never of OS
//! scheduling: a starved thread cannot skew queueing, and enabling
//! telemetry cannot shift throughput.
//!
//! # Fault tolerance
//!
//! With [`ServingOptions`] the runtime becomes a fault-tolerant server:
//! every request terminates with exactly one [`Disposition`], and a
//! poisoned request can degrade *its own* answer but never wedge a worker
//! or a follower.
//!
//! * **Admission control** — a request whose [`Request::deadline_ns`]
//!   already passed at arrival is shed *before any compile work*; one
//!   whose service would start past its deadline is shed at dispatch; and
//!   when [`ServingOptions::queue_capacity`] is set, a request that would
//!   have to wait behind a full queue is shed rather than enqueued. With
//!   a [`TenantPolicy`], a tenant over its own waiting-slot quota is shed
//!   with [`ShedReason::TenantThrottled`] before it can crowd the global
//!   queue. Shed requests consume no virtual resources.
//! * **Degradation ladder** — the compile phase runs under
//!   [`ServingOptions::compile_budget`]: the staged search first yields
//!   its deadline-cut incumbent, and if the full path fails outright
//!   (typed error or panic — both isolated with `catch_unwind`), a
//!   search-free fallback compile produces a correct, slower program. Only
//!   when the fallback fails too is the request [`Disposition::Failed`].
//! * **Transient retries** — injected device faults
//!   ([`ServingOptions::fault_plan`]) are retried with exponential
//!   backoff in virtual device time per [`ServingOptions::retry`];
//!   exhausting the budget fails the request.
//! * **Circuit breaker** — [`ServingOptions::breaker`] keys a
//!   [`CircuitBreaker`](crate::CircuitBreaker) by request shape:
//!   persistently failing shapes route straight to the degraded path
//!   until a cooldown elapses and a single probe retries the full path.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod admission;
pub mod batching;
pub mod colaunch;
pub mod lifecycle;
pub mod report;
pub mod request;
pub mod worker;

pub use admission::{TenantPolicy, TenantQuota};
pub use batching::BatchingOptions;
pub use lifecycle::{DrainReport, Lifecycle, SnapshotStats, Snapshotter};
pub use report::{
    percentile, DispositionCounts, LatencySummary, ServingReport, TenantStats, WorkerStats,
};
pub use request::{
    poisson_arrivals, record_error_label, request_shape_key, Disposition, Request, RequestRecord,
    ShedReason, TenantId,
};
pub use worker::{ServingOptions, ServingRuntime};
