//! Serving lifecycle: graceful drain and live snapshotting.
//!
//! Two concerns that only matter for a *long-lived* serving process:
//!
//! * **Drain** ([`Lifecycle`]): a graceful shutdown closes admission —
//!   requests arriving after the drain point are shed with
//!   [`ShedReason::Draining`] — while everything already admitted runs
//!   to its normal disposition. Nothing is lost silently: every request
//!   still terminates with exactly one disposition and a retained
//!   flight-recorder chain, the batching windows flush (the batched
//!   dispatcher drains its buckets at stream end by construction), and
//!   [`ServingRuntime::drain`](super::ServingRuntime::drain) persists
//!   the warm caches and emits a final [`DrainReport`].
//! * **Live snapshots** ([`Snapshotter`]): a background thread that
//!   periodically persists the program caches of a *running* engine.
//!   The cache read is the lock-free published-`Arc` snapshot
//!   ([`crate::ShardedCache::snapshot`]), so serving workers never stall
//!   on the snapshotter; the write is the atomic generation commit of
//!   [`crate::Engine::save_program_caches`], so a crash mid-snapshot
//!   never tears the durable state.
//!
//! The drain point comes in two flavors. [`Lifecycle::request_drain_at`]
//! pins it to a *virtual* timestamp, making the shed set a pure function
//! of each request's `arrival_ns` — deterministic and testable.
//! [`Lifecycle::request_drain`] is the real-time trigger (a signal
//! handler, an operator command): it closes admission at whatever ticket
//! each worker grabs next, which is honest about what a live shutdown is.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use super::report::DispositionCounts;
use super::request::ShedReason;
use crate::engine::Engine;

/// Shared drain state between a [`ServingRuntime`](super::ServingRuntime)
/// and whoever asks it to shut down.
///
/// Cheap to check (two relaxed atomic loads) because every request
/// consults it at admission.
#[derive(Debug)]
pub struct Lifecycle {
    /// Real-time trigger: once set, *every* not-yet-admitted request is
    /// shed as draining.
    drain_now: AtomicBool,
    /// Virtual-time drain point (f64 bits); `INFINITY` means not set.
    drain_at_bits: AtomicU64,
}

impl Default for Lifecycle {
    fn default() -> Self {
        Self::new()
    }
}

impl Lifecycle {
    /// A lifecycle with admission open.
    pub fn new() -> Self {
        Self {
            drain_now: AtomicBool::new(false),
            drain_at_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }

    /// Closes admission now (real-time trigger). Idempotent.
    pub fn request_drain(&self) {
        self.drain_now.store(true, Ordering::SeqCst);
    }

    /// Closes admission for requests arriving at or after `virtual_ns`
    /// on the serving timeline. The shed set becomes a pure function of
    /// arrival times — the deterministic flavor of drain. An earlier
    /// point wins if called twice.
    pub fn request_drain_at(&self, virtual_ns: f64) {
        let mut current = self.drain_at_bits.load(Ordering::SeqCst);
        while virtual_ns < f64::from_bits(current) {
            match self.drain_at_bits.compare_exchange(
                current,
                virtual_ns.to_bits(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// The virtual drain point, `INFINITY` when only real-time state
    /// applies.
    pub fn drain_at_ns(&self) -> f64 {
        f64::from_bits(self.drain_at_bits.load(Ordering::SeqCst))
    }

    /// Whether any drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.drain_now.load(Ordering::SeqCst) || self.drain_at_ns().is_finite()
    }

    /// Whether a request arriving at `arrival_ns` must be shed as
    /// draining.
    pub fn draining_at(&self, arrival_ns: f64) -> bool {
        self.drain_now.load(Ordering::SeqCst) || arrival_ns >= self.drain_at_ns()
    }

    /// Reopens admission (for tests and multi-run harnesses that reuse a
    /// runtime).
    pub fn reset(&self) {
        self.drain_now.store(false, Ordering::SeqCst);
        self.drain_at_bits
            .store(f64::INFINITY.to_bits(), Ordering::SeqCst);
    }
}

/// What a completed drain looked like: the final accounting a graceful
/// shutdown reports before the process exits.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainReport {
    /// Requests shed with [`ShedReason::Draining`] — arrivals after the
    /// drain point, never admitted.
    pub drained: usize,
    /// Final dispositions across the whole run (drained sheds included);
    /// `dispositions.total()` equals the request count, the
    /// nothing-lost invariant.
    pub dispositions: DispositionCounts,
    /// Flight-recorder chains retained at drain time.
    pub chains_retained: u64,
    /// The generation the warm caches were persisted under, when a
    /// snapshot directory was given and the save committed.
    pub persisted_generation: Option<u64>,
    /// The persist failure, if the final save failed (the drain itself
    /// still completes — dispositions are never held hostage by disk).
    pub persist_error: Option<String>,
}

impl std::fmt::Display for DrainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = &self.dispositions;
        write!(
            f,
            "drain: {} requests ({} completed, {} degraded, {} shed [{} draining], {} failed), \
             {} chains retained",
            d.total(),
            d.completed,
            d.degraded,
            d.shed,
            self.drained,
            d.failed,
            self.chains_retained
        )?;
        match (&self.persisted_generation, &self.persist_error) {
            (Some(generation), _) => write!(f, ", caches persisted as generation {generation}"),
            (None, Some(e)) => write!(f, ", cache persist FAILED: {e}"),
            (None, None) => write!(f, ", caches not persisted (no snapshot dir)"),
        }
    }
}

/// Counts the draining sheds in a record set (helper shared by the
/// runtime and tests).
pub(crate) fn drained_count(records: &[super::request::RequestRecord]) -> usize {
    records
        .iter()
        .filter(|r| r.shed_reason == Some(ShedReason::Draining))
        .count()
}

/// Aggregate statistics of one snapshotter's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotStats {
    /// Successful snapshots taken (the final stop-time snapshot
    /// included).
    pub snapshots: u64,
    /// Snapshot attempts that failed with an I/O error.
    pub errors: u64,
    /// The last committed generation, if any snapshot succeeded.
    pub last_generation: Option<u64>,
}

/// A background thread that periodically persists a running engine's
/// program caches into a snapshot directory.
///
/// Reads are the caches' lock-free published-`Arc` snapshots and writes
/// are atomic generation commits, so serving is never stalled and the
/// directory is always a complete committed generation. [`Snapshotter::stop`]
/// takes one final snapshot before joining — stopping the snapshotter
/// *is* the "persist caches" step of a graceful drain.
pub struct Snapshotter {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: std::thread::JoinHandle<SnapshotStats>,
}

impl Snapshotter {
    /// Starts snapshotting `engine`'s caches into `dir` every
    /// `interval`. Failures are counted (and surfaced as
    /// `cache.snapshot.errors`), not fatal: a full disk must not take
    /// serving down.
    pub fn start(engine: Arc<Engine>, dir: PathBuf, interval: Duration) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let telemetry = Arc::clone(engine.telemetry());
            let registry = telemetry.registry();
            registry.describe(
                "cache.snapshot.count",
                "Live warm-state snapshots committed by the background snapshotter",
            );
            registry.describe(
                "cache.snapshot.errors",
                "Snapshot attempts that failed with an I/O error",
            );
            registry.describe(
                "cache.snapshot.generation",
                "Latest committed warm-state generation",
            );
            let mut stats = SnapshotStats::default();
            let (lock, condvar) = &*thread_stop;
            loop {
                let stopping = {
                    let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                    if !*stopped {
                        stopped = condvar
                            .wait_timeout(stopped, interval)
                            .unwrap_or_else(|e| e.into_inner())
                            .0;
                    }
                    *stopped
                };
                match engine.save_program_caches(&dir) {
                    Ok(generation) => {
                        stats.snapshots += 1;
                        stats.last_generation = Some(generation);
                        registry.counter("cache.snapshot.count").inc();
                        registry
                            .gauge("cache.snapshot.generation")
                            .set(generation as f64);
                    }
                    Err(e) => {
                        stats.errors += 1;
                        registry.counter("cache.snapshot.errors").inc();
                        eprintln!("snapshotter: save failed: {e}");
                    }
                }
                if stopping {
                    return stats;
                }
            }
        });
        Self { stop, handle }
    }

    /// Signals the thread, waits for its final snapshot, and returns the
    /// lifetime statistics.
    pub fn stop(self) -> SnapshotStats {
        {
            let (lock, condvar) = &*self.stop;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
            condvar.notify_all();
        }
        self.handle
            .join()
            .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
    }
}

impl std::fmt::Debug for Snapshotter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshotter").finish_non_exhaustive()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_drain_points_compose() {
        let l = Lifecycle::new();
        assert!(!l.is_draining());
        assert!(!l.draining_at(1e18));
        l.request_drain_at(500.0);
        assert!(l.is_draining());
        assert!(!l.draining_at(499.0));
        assert!(l.draining_at(500.0));
        // An earlier point wins; a later one is ignored.
        l.request_drain_at(900.0);
        assert_eq!(l.drain_at_ns(), 500.0);
        l.request_drain_at(100.0);
        assert_eq!(l.drain_at_ns(), 100.0);
        l.reset();
        assert!(!l.is_draining());
        // The real-time trigger sheds everything not yet admitted.
        l.request_drain();
        assert!(l.draining_at(0.0));
    }

    #[test]
    fn drain_report_renders_the_invariant() {
        let report = DrainReport {
            drained: 3,
            dispositions: DispositionCounts {
                completed: 5,
                degraded: 1,
                shed: 3,
                failed: 0,
            },
            chains_retained: 4,
            persisted_generation: Some(7),
            persist_error: None,
        };
        let text = report.to_string();
        assert!(text.contains("9 requests"), "{text}");
        assert!(text.contains("3 draining"), "{text}");
        assert!(text.contains("generation 7"), "{text}");
    }
}
