//! Shape-bucketed continuous batching.
//!
//! In batched mode a worker is released as soon as a request's program is
//! compiled ("ready"); the compiled request then enters the *shape
//! bucket* keyed by its canonical shape hash
//! ([`request_shape_key`](crate::serving::request_shape_key)). A bucket
//! opens when its first member arrives and flushes when either
//!
//! * the bounded batch-forming delay [`BatchingOptions::window_ns`]
//!   elapses from the open instant, or
//! * the bucket reaches [`BatchingOptions::max_batch`] members,
//!
//! whichever comes first. Flushed buckets go to the co-launch planner
//! ([`crate::serving::colaunch`]), which packs their members into device
//! waves. Bucket formation is a pure function of the ready-event stream,
//! so the batched timeline stays deterministic.

/// Continuous-batching policy. Present on
/// [`ServingOptions::batching`](crate::serving::ServingOptions::batching)
/// iff batching is enabled; the solo path is untouched otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchingOptions {
    /// Bounded batch-forming delay: a bucket flushes at most this many
    /// virtual nanoseconds after it opened, even if it is not full.
    pub window_ns: f64,
    /// Bucket capacity: a bucket flushes immediately on reaching this
    /// many members. Must be at least 1.
    pub max_batch: usize,
}

impl BatchingOptions {
    /// A policy with the given window and capacity.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero or `window_ns` is negative/NaN.
    pub fn new(window_ns: f64, max_batch: usize) -> Self {
        assert!(max_batch >= 1, "a batch must admit at least one member");
        assert!(
            window_ns >= 0.0,
            "the batch-forming window cannot be negative"
        );
        Self {
            window_ns,
            max_batch,
        }
    }
}

impl Default for BatchingOptions {
    /// 50 µs of batch-forming delay, at most 8 requests per bucket —
    /// small next to the millisecond-scale device times of the serving
    /// workloads, large enough to merge genuine bursts.
    fn default() -> Self {
        Self {
            window_ns: 50_000.0,
            max_batch: 8,
        }
    }
}

/// One compiled request waiting to be batched.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReadyEvent {
    /// Index into the dispatcher's pending-execution table.
    pub(crate) pending: usize,
    /// Request id (total tiebreak for identical ready times).
    pub(crate) id: usize,
    /// Virtual instant the request's compile finished.
    pub(crate) ready_ns: f64,
    /// Shape-bucket key.
    pub(crate) shape_key: u64,
}

/// A flushed bucket: identically-shaped members handed to the co-launch
/// planner at one virtual instant.
#[derive(Debug, Clone)]
pub(crate) struct BucketFlush {
    /// Shape-bucket key shared by every member.
    pub(crate) shape_key: u64,
    /// Virtual instant the bucket flushed (its earliest dispatch time).
    pub(crate) flush_ns: f64,
    /// Member indices into the pending-execution table, in ready order.
    pub(crate) members: Vec<usize>,
}

/// Groups ready events into bucket flushes. `events` must be sorted by
/// `(ready_ns, id)`; the returned flushes are sorted by
/// `(flush_ns, first member id)` so the dispatcher can assign devices in
/// flush order deterministically.
pub(crate) fn form_batches(events: &[ReadyEvent], options: BatchingOptions) -> Vec<BucketFlush> {
    debug_assert!(
        events
            .windows(2)
            .all(|w| (w[0].ready_ns, w[0].id) <= (w[1].ready_ns, w[1].id)),
        "ready events must be sorted by (ready_ns, id)"
    );
    struct Open {
        open_ns: f64,
        members: Vec<usize>,
    }
    let mut open: Vec<(u64, Open)> = Vec::new();
    let mut flushes: Vec<BucketFlush> = Vec::new();
    let mut flush = |key: u64, bucket: Open, at: f64| {
        flushes.push(BucketFlush {
            shape_key: key,
            flush_ns: at,
            members: bucket.members,
        });
    };
    for event in events {
        // Time has advanced to this event: any bucket whose window closed
        // at or before now flushes first (at its own close instant).
        let mut i = 0;
        while i < open.len() {
            let close = open[i].1.open_ns + options.window_ns;
            if close <= event.ready_ns && !(close == event.ready_ns && open[i].0 == event.shape_key)
            {
                let (key, bucket) = open.remove(i);
                flush(key, bucket, close);
            } else {
                i += 1;
            }
        }
        let slot = open.iter_mut().find(|(key, _)| *key == event.shape_key);
        match slot {
            Some((_, bucket)) => bucket.members.push(event.pending),
            None => open.push((
                event.shape_key,
                Open {
                    open_ns: event.ready_ns,
                    members: vec![event.pending],
                },
            )),
        }
        if let Some(at) = open
            .iter()
            .position(|(key, b)| *key == event.shape_key && b.members.len() >= options.max_batch)
        {
            let (key, bucket) = open.remove(at);
            flush(key, bucket, event.ready_ns);
        }
    }
    // The stream is closed: remaining buckets wait out their window.
    for (key, bucket) in open {
        let close = bucket.open_ns + options.window_ns;
        flush(key, bucket, close);
    }
    flushes.sort_by(|a, b| {
        f64::total_cmp(&a.flush_ns, &b.flush_ns).then(a.members.first().cmp(&b.members.first()))
    });
    flushes
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn ev(pending: usize, ready_ns: f64, shape_key: u64) -> ReadyEvent {
        ReadyEvent {
            pending,
            id: pending,
            ready_ns,
            shape_key,
        }
    }

    #[test]
    fn window_bounds_batch_forming_delay() {
        let options = BatchingOptions::new(100.0, 8);
        let events = vec![ev(0, 0.0, 7), ev(1, 50.0, 7), ev(2, 300.0, 7)];
        let flushes = form_batches(&events, options);
        assert_eq!(flushes.len(), 2);
        // First bucket opened at 0, closed at 100 with two members.
        assert_eq!(flushes[0].members, vec![0, 1]);
        assert_eq!(flushes[0].flush_ns, 100.0);
        // The straggler opens a fresh bucket and waits out its window.
        assert_eq!(flushes[1].members, vec![2]);
        assert_eq!(flushes[1].flush_ns, 400.0);
    }

    #[test]
    fn full_bucket_flushes_immediately() {
        let options = BatchingOptions::new(1e9, 2);
        let events = vec![ev(0, 0.0, 7), ev(1, 1.0, 7), ev(2, 2.0, 7)];
        let flushes = form_batches(&events, options);
        assert_eq!(flushes.len(), 2);
        assert_eq!(flushes[0].members, vec![0, 1]);
        assert_eq!(flushes[0].flush_ns, 1.0, "full at the second member");
        assert_eq!(flushes[1].members, vec![2]);
    }

    #[test]
    fn shapes_never_share_a_bucket() {
        let options = BatchingOptions::new(100.0, 8);
        let events = vec![ev(0, 0.0, 7), ev(1, 1.0, 8), ev(2, 2.0, 7)];
        let flushes = form_batches(&events, options);
        assert_eq!(flushes.len(), 2);
        let of_seven = flushes.iter().find(|f| f.shape_key == 7).unwrap();
        assert_eq!(of_seven.members, vec![0, 2]);
        let of_eight = flushes.iter().find(|f| f.shape_key == 8).unwrap();
        assert_eq!(of_eight.members, vec![1]);
    }

    #[test]
    fn flushes_are_sorted_and_deterministic() {
        let options = BatchingOptions::new(10.0, 8);
        let events = vec![ev(0, 0.0, 1), ev(1, 2.0, 2), ev(2, 4.0, 3)];
        let a = form_batches(&events, options);
        let b = form_batches(&events, options);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.members, y.members);
            assert_eq!(x.flush_ns, y.flush_ns);
        }
        assert!(a.windows(2).all(|w| w[0].flush_ns <= w[1].flush_ns));
    }

    #[test]
    fn zero_window_degenerates_to_per_request_flushes() {
        let options = BatchingOptions::new(0.0, 8);
        let events = vec![ev(0, 0.0, 7), ev(1, 5.0, 7)];
        let flushes = form_batches(&events, options);
        assert_eq!(flushes.len(), 2);
        assert!(flushes.iter().all(|f| f.members.len() == 1));
    }
}
