//! Request and record types of the serving pipeline.
//!
//! One [`Request`] flows through the layered dispatcher — admission →
//! (optional) batching/co-launch → workers — and terminates with exactly
//! one [`Disposition`], captured in a [`RequestRecord`]. Everything here
//! is plain data; the policy lives in the sibling modules.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mikpoly_telemetry::{ChainDisposition, ClockNs};
use tensor_ir::Operator;

/// Sentinel for "no worker/device slot": shed requests never occupy one.
pub(crate) const NO_SLOT: usize = usize::MAX;

/// Identifies the tenant a request bills against. Tenant `0` is the
/// default for single-tenant streams; ids are dense small integers so
/// per-tenant accounting can use flat arrays.
pub type TenantId = u32;

/// One inference request: a weighted operator list (one forward pass)
/// arriving at a virtual timestamp, billed to a tenant.
#[derive(Debug, Clone)]
pub struct Request {
    /// Stream-unique id (records are reported in id order).
    pub id: usize,
    /// Virtual arrival time, ns from stream start.
    pub arrival_ns: f64,
    /// The operators of the forward pass, each with an execution count.
    pub ops: Vec<(Operator, usize)>,
    /// Virtual deadline, ns from stream start: the request is shed unless
    /// its service can *start* by this time. `None` means no deadline.
    pub deadline_ns: Option<f64>,
    /// The tenant this request bills against (0 for single-tenant
    /// streams; see [`crate::serving::TenantPolicy`]).
    pub tenant: TenantId,
}

impl Request {
    /// A single-operator request with no deadline, billed to tenant 0.
    pub fn single(id: usize, arrival_ns: f64, operator: Operator) -> Self {
        Self {
            id,
            arrival_ns,
            ops: vec![(operator, 1)],
            deadline_ns: None,
            tenant: 0,
        }
    }

    /// Sets the virtual deadline (builder style).
    #[must_use]
    pub fn with_deadline(mut self, deadline_ns: f64) -> Self {
        self.deadline_ns = Some(deadline_ns);
        self
    }

    /// Sets the billing tenant (builder style).
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }
}

/// How a request's service terminated. Every request gets exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Served with a fully-searched program.
    Completed,
    /// Served correctly but with a degraded program (deadline-cut search
    /// incumbent, search-free fallback, or an open breaker's detour).
    Degraded,
    /// Rejected by admission control before consuming virtual resources
    /// (see [`RequestRecord::shed_reason`]).
    Shed,
    /// Admitted but not served: both compile paths failed, or device
    /// retries were exhausted.
    Failed,
}

/// Why admission control rejected a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The deadline had already passed when the request arrived; it was
    /// shed before any compile work.
    DeadlineAtEnqueue,
    /// Service would have started after the deadline.
    DeadlineAtDispatch,
    /// The bounded wait queue was full at enqueue time.
    QueueFull,
    /// The request's tenant had exhausted its waiting-slot quota; other
    /// tenants' capacity is untouched (the isolation mechanism).
    TenantThrottled,
    /// The runtime was draining: admission was closed by a graceful
    /// shutdown (see [`crate::serving::Lifecycle`]). The request still
    /// gets a disposition and a retained chain — a drain loses nothing
    /// silently.
    Draining,
}

impl ShedReason {
    /// Stable lowercase label, used as the flight-recorder chain's error
    /// string for shed requests.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::DeadlineAtEnqueue => "deadline-at-enqueue",
            ShedReason::DeadlineAtDispatch => "deadline-at-dispatch",
            ShedReason::QueueFull => "queue-full",
            ShedReason::TenantThrottled => "tenant-throttled",
            ShedReason::Draining => "draining",
        }
    }
}

/// Per-request latency decomposition (see the module docs for which parts
/// are real versus virtual time).
#[derive(Debug, Clone, Copy)]
pub struct RequestRecord {
    /// The request's id.
    pub id: usize,
    /// The tenant the request billed against.
    pub tenant: TenantId,
    /// Worker slot that served it (`usize::MAX` for shed requests,
    /// which never occupy one — see [`RequestRecord::executed`]).
    pub worker: usize,
    /// Device that executed it (`usize::MAX` when none did).
    pub device: usize,
    /// Virtual wait for a worker plus a device, ns.
    pub queue_ns: f64,
    /// Online-compilation wall clock, explicitly labelled as **real**
    /// time (zero when fully cache-hit) — the clock tag is what keeps it
    /// from being summed into virtual durations unannotated.
    pub compile: ClockNs,
    /// Portion of the compile window the polymerization search took
    /// (real ns; fresh compilations only).
    pub search_ns: u128,
    /// Portion of the compile window spent blocked on another worker's
    /// in-flight compilation of the same shape (real ns).
    pub cache_wait_ns: u128,
    /// Simulated device time including dispatch and any fault retries
    /// with their backoffs, ns. For a co-launched request this is its
    /// *wave's* duration — the time the request actually occupied the
    /// device timeline.
    pub device_ns: f64,
    /// Virtual completion time, ns from stream start (arrival time for
    /// shed requests).
    pub finish_ns: f64,
    /// How service terminated.
    pub disposition: Disposition,
    /// Set iff `disposition` is [`Disposition::Shed`].
    pub shed_reason: Option<ShedReason>,
    /// Device-fault retries this request paid for (in backoff + re-run
    /// virtual time).
    pub retries: u32,
    /// The request's deadline, copied through so SLO evaluation can
    /// compute deadline-hit rates from records alone.
    pub deadline_ns: Option<f64>,
    /// Circuit-breaker transition observed while serving this request:
    /// `"opened"` (this request's failure tripped the breaker),
    /// `"closed"` (its probe succeeded), or `"short-circuit"` (an open
    /// breaker routed it straight to the degraded path).
    pub breaker_event: Option<&'static str>,
    /// Requests co-launched in this request's device wave, including
    /// itself: 1 for solo execution, 0 when no device ran.
    pub batch_size: usize,
}

impl RequestRecord {
    /// End-to-end latency on the serving timeline: queueing + the compile
    /// window (a real-clock measurement explicitly projected onto the
    /// virtual timeline, 1:1 — the worker really is occupied that long
    /// while virtual arrivals accumulate) + device, ns.
    pub fn timeline_total_ns(&self) -> f64 {
        self.queue_ns + self.compile.onto_virtual_timeline() + self.device_ns
    }

    /// Whether the request ran on a device (shed requests and
    /// compile-failed requests did not).
    pub fn executed(&self) -> bool {
        self.device != NO_SLOT
    }
}

/// The record for a request rejected by admission control: sentinel
/// worker/device slots, zero resource use, finish at arrival.
pub(crate) fn shed_record(request: &Request, reason: ShedReason) -> RequestRecord {
    RequestRecord {
        id: request.id,
        tenant: request.tenant,
        worker: NO_SLOT,
        device: NO_SLOT,
        queue_ns: 0.0,
        compile: ClockNs::real(0.0),
        search_ns: 0,
        cache_wait_ns: 0,
        device_ns: 0.0,
        finish_ns: request.arrival_ns,
        disposition: Disposition::Shed,
        shed_reason: Some(reason),
        retries: 0,
        deadline_ns: request.deadline_ns,
        breaker_event: None,
        batch_size: 0,
    }
}

/// The shape-bucket (and breaker) key for a request: a hash of its full
/// operator list, so a poisoned shape cannot trip healthy traffic's
/// breaker and only identically-shaped requests share a batch bucket.
pub fn request_shape_key(request: &Request) -> u64 {
    let mut hasher = DefaultHasher::new();
    for (op, count) in &request.ops {
        op.hash(&mut hasher);
        count.hash(&mut hasher);
    }
    hasher.finish()
}

/// The terminal error label a record's chain carries (`None` for served
/// requests). The chaos suite asserts every `Failed`/`Shed` record's
/// retained chain reproduces exactly this string.
pub fn record_error_label(record: &RequestRecord) -> Option<&'static str> {
    match record.disposition {
        Disposition::Shed => record.shed_reason.map(ShedReason::label),
        Disposition::Failed => Some(if record.executed() {
            "device-retries-exhausted"
        } else {
            "compile-failed"
        }),
        Disposition::Completed | Disposition::Degraded => None,
    }
}

/// Maps a serving disposition onto the telemetry crate's mirror enum.
pub(crate) fn chain_disposition(disposition: Disposition) -> ChainDisposition {
    match disposition {
        Disposition::Completed => ChainDisposition::Completed,
        Disposition::Degraded => ChainDisposition::Degraded,
        Disposition::Shed => ChainDisposition::Shed,
        Disposition::Failed => ChainDisposition::Failed,
    }
}

/// Virtual Poisson arrival times: `count` timestamps with exponential
/// inter-arrival gaps of mean `mean_gap_ns`, deterministic under `seed`.
pub fn poisson_arrivals(count: usize, mean_gap_ns: f64, seed: u64) -> Vec<f64> {
    assert!(mean_gap_ns > 0.0, "mean gap must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..count)
        .map(|_| {
            let u: f64 = rng.gen();
            // Inverse-CDF exponential; clamp away u == 1 to keep ln finite.
            t += -mean_gap_ns * (1.0 - u).max(1e-12).ln();
            t
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use tensor_ir::GemmShape;

    #[test]
    fn poisson_arrivals_are_deterministic_and_increasing() {
        let a = poisson_arrivals(100, 1000.0, 42);
        let b = poisson_arrivals(100, 1000.0, 42);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        let mean_gap = a.last().unwrap() / 100.0;
        assert!(mean_gap > 300.0 && mean_gap < 3000.0, "mean gap {mean_gap}");
    }

    #[test]
    fn shape_key_separates_shapes_and_ignores_identity() {
        let a = Request::single(0, 0.0, Operator::gemm(GemmShape::new(64, 64, 64)));
        let b = Request::single(9, 5.0, Operator::gemm(GemmShape::new(64, 64, 64))).with_tenant(3);
        let c = Request::single(1, 0.0, Operator::gemm(GemmShape::new(64, 64, 128)));
        assert_eq!(request_shape_key(&a), request_shape_key(&b));
        assert_ne!(request_shape_key(&a), request_shape_key(&c));
    }

    #[test]
    fn builders_set_tenant_and_deadline() {
        let r = Request::single(7, 1.0, Operator::gemm(GemmShape::new(8, 8, 8)))
            .with_tenant(2)
            .with_deadline(99.0);
        assert_eq!(r.tenant, 2);
        assert_eq!(r.deadline_ns, Some(99.0));
        let shed = shed_record(&r, ShedReason::TenantThrottled);
        assert_eq!(shed.tenant, 2);
        assert_eq!(shed.batch_size, 0);
        assert_eq!(record_error_label(&shed), Some("tenant-throttled"));
    }
}
