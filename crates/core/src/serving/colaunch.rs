//! The co-launch planner: merging polymerized programs into shared
//! device waves.
//!
//! The paper's §7 extension observes that small dynamic-shape kernels
//! leave PEs idle, and that several polymerized programs can be merged
//! into one multi-group [`Launch`] — each program keeps its own
//! micro-kernels, the groups simply compete for PEs concurrently. The
//! `ext-colaunch` experiment reproduces that offline; this module is the
//! shared planner both that experiment and the serving dispatcher use,
//! so offline and online co-launch cannot drift apart.
//!
//! Planning is a resource-fit problem, not a scheduling problem: a wave
//! must never *oversubscribe* the machine, meaning its combined resident
//! warp demand must fit the machine's warp slots
//! ([`warp_capacity`]). Members are packed greedily in the order given
//! (the dispatcher orders them by weighted fairness first): each member
//! joins the first wave with room, or opens a new one. A member whose
//! lone demand already exceeds capacity still gets a singleton wave —
//! the simulator time-multiplexes it, exactly as solo execution would.

use accel_sim::{try_simulate_launches, Launch, MachineModel, TimingMode};

use crate::engine::OpPlan;

/// Total warp slots a launch asks for if every task were resident at
/// once — the planner's (deliberately conservative) demand metric.
pub fn warp_slots(launch: &Launch) -> u64 {
    launch
        .groups
        .iter()
        .map(|g| (g.count * g.spec.warps) as u64)
        .sum()
}

/// The machine's total warp slots: PEs times per-PE warp capacity.
pub fn warp_capacity(machine: &MachineModel) -> u64 {
    (machine.num_pes * machine.warp_cap_per_pe) as u64
}

/// A compiled request's resident-warp demand: the widest of its
/// operators' launches (ops run sequentially, so the widest bounds the
/// concurrent footprint).
pub fn plan_demand(ops: &[OpPlan]) -> u64 {
    ops.iter()
        .map(|op| warp_slots(&op.launch))
        .max()
        .unwrap_or(0)
}

/// Packs members (given by their warp demands) into waves such that no
/// wave's combined demand exceeds `capacity`, except that a member too
/// large for an empty wave still gets a singleton. Greedy first-fit in
/// the given order; returns waves of member indices, each wave non-empty,
/// every index appearing exactly once.
pub fn plan_waves(demands: &[u64], capacity: u64) -> Vec<Vec<usize>> {
    let mut waves: Vec<(u64, Vec<usize>)> = Vec::new();
    for (index, &demand) in demands.iter().enumerate() {
        match waves
            .iter_mut()
            .find(|(load, _)| load.saturating_add(demand) <= capacity)
        {
            Some((load, members)) => {
                *load += demand;
                members.push(index);
            }
            None => waves.push((demand, vec![index])),
        }
    }
    waves.into_iter().map(|(_, members)| members).collect()
}

/// Merges several launches into one multi-group wave launch: group lists
/// are concatenated, so every member's tasks compete for PEs
/// concurrently. Static per-task PE assignments are preserved verbatim
/// (tasks mapped to the same PE simply queue on it).
pub fn merge_launches<'a>(launches: impl IntoIterator<Item = &'a Launch>) -> Launch {
    let mut groups = Vec::new();
    for launch in launches {
        groups.extend(launch.groups.iter().cloned());
    }
    Launch::from_groups(groups)
}

/// `count` copies of one launch merged into a single wave (the common
/// case in serving: a shape bucket's members run identical programs).
pub fn repeat_launch(launch: &Launch, count: usize) -> Launch {
    merge_launches(std::iter::repeat_n(launch, count))
}

/// Simulated device time of a wave of `count` identical members, each
/// executing `ops`: per operator, the members' launches merge into one
/// wave launch (split-K reductions likewise merge and chain after it, as
/// on the solo path), and operators run sequentially with their graph
/// weights. Falls back to `count` solo executions if the simulator
/// rejects a merged launch, so a malformed wave can never do better than
/// solo — or panic the dispatcher.
pub fn wave_device_ns(machine: &MachineModel, ops: &[OpPlan], count: usize) -> f64 {
    let mut total = 0.0;
    for op in ops {
        let mut sequence = vec![repeat_launch(&op.launch, count)];
        if let Some(reduction) = &op.reduction {
            sequence.push(repeat_launch(reduction, count));
        }
        let merged_ns = try_simulate_launches(machine, &sequence, TimingMode::Evaluate)
            .map_or(op.solo_ns * count as f64, |report| report.time_ns);
        total += merged_ns * op.count as f64;
    }
    total
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use accel_sim::{TaskShape, TaskSpec};

    fn small_launch(warps: usize, count: usize) -> Launch {
        Launch::grid(
            TaskSpec::new(TaskShape::gemm_tile_f16(64, 64, 32), warps, 4),
            count,
        )
    }

    #[test]
    fn warp_slots_sum_groups() {
        let launch = merge_launches([&small_launch(4, 10), &small_launch(2, 3)]);
        assert_eq!(warp_slots(&launch), 4 * 10 + 2 * 3);
        assert_eq!(launch.grid_size(), 13);
    }

    #[test]
    fn capacity_is_pes_times_warp_cap() {
        let machine = MachineModel::a100();
        assert_eq!(
            warp_capacity(&machine),
            (machine.num_pes * machine.warp_cap_per_pe) as u64
        );
    }

    #[test]
    fn plan_waves_never_oversubscribes_and_covers_every_member() {
        let demands = vec![60, 60, 30, 10, 90, 5];
        let waves = plan_waves(&demands, 100);
        let mut seen = vec![false; demands.len()];
        for wave in &waves {
            assert!(!wave.is_empty());
            let load: u64 = wave.iter().map(|&i| demands[i]).sum();
            assert!(load <= 100, "wave {wave:?} oversubscribed at {load}");
            for &i in wave {
                assert!(!seen[i], "member {i} planned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "member dropped by the planner");
    }

    #[test]
    fn oversized_member_gets_a_singleton_wave() {
        let waves = plan_waves(&[500, 10], 100);
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[0], vec![0]);
        assert_eq!(waves[1], vec![1]);
    }

    #[test]
    fn empty_input_plans_no_waves() {
        assert!(plan_waves(&[], 100).is_empty());
    }

    #[test]
    fn repeat_launch_scales_grid_and_flops() {
        let launch = small_launch(4, 10);
        let tripled = repeat_launch(&launch, 3);
        assert_eq!(tripled.grid_size(), 30);
        assert!((tripled.total_flops() - 3.0 * launch.total_flops()).abs() < 1e-6);
    }

    #[test]
    fn merged_wave_beats_back_to_back_solo_time() {
        // Two small co-launched grids must finish no later than running
        // them back to back: merging can only recover idle PEs.
        let machine = MachineModel::a100();
        let launch = small_launch(4, machine.num_pes / 4);
        let op = OpPlan {
            solo_ns: accel_sim::try_simulate(&machine, &launch, TimingMode::Evaluate)
                .expect("valid launch")
                .time_ns,
            launch,
            reduction: None,
            count: 1,
        };
        let merged = wave_device_ns(&machine, std::slice::from_ref(&op), 2);
        assert!(merged > 0.0);
        assert!(
            merged <= 2.0 * op.solo_ns * 1.001,
            "merged {merged} vs 2x solo {}",
            2.0 * op.solo_ns
        );
    }
}
