//! The serving runtime: worker pools, the solo dispatcher, and the
//! batched/co-launch dispatcher.
//!
//! Both dispatchers share admission semantics, the compile phase
//! ([`ServingRuntime::compile_request`]: breaker check, panic-isolated
//! budgeted compile, degraded fallback, deterministic device-fault retry
//! schedule), and the reporting tail. They differ in what happens after
//! a request's program is ready:
//!
//! * **solo** (default) — the worker holds the request through device
//!   execution; virtual bookkeeping runs in strict arrival order behind
//!   a ticket [`Sequencer`] while real compile work overlaps across OS
//!   threads (PR 5 behaviour, bit-for-bit).
//! * **batched** ([`ServingOptions::batching`]) — the worker is released
//!   at compile-done; ready requests enter shape buckets
//!   ([`super::batching`]) and flushed buckets are packed into co-launch
//!   waves ([`super::colaunch`]) that share one device launch. Compiles
//!   still run in parallel (phase A); the dispatch timeline is then
//!   computed single-threaded (phase B), which is deterministic by
//!   construction — no sequencer needed.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use accel_sim::{Cluster, FaultPlan};
use mikpoly_telemetry::{Clock, ClockNs, Telemetry};

use super::admission::{FairMeter, TenantPolicy, WaitQueue};
use super::batching::{form_batches, BatchingOptions, ReadyEvent};
use super::colaunch::{plan_demand, plan_waves, warp_capacity, wave_device_ns};
use super::lifecycle::{drained_count, DrainReport, Lifecycle};
use super::report::{
    describe_serving_metrics, emit_request_telemetry, EmitContext, ServingReport, WorkerStats,
};
use super::request::{
    request_shape_key, shed_record, Disposition, Request, RequestRecord, ShedReason, NO_SLOT,
};
use crate::compiler::CompileBudget;
use crate::engine::{Engine, GraphPlan};
use crate::resilience::{BreakerDecision, BreakerPolicy, CircuitBreaker, RetryPolicy};

/// Fault-tolerance and dispatch policy for one [`ServingRuntime`]. The
/// default is the fault-free solo fast path: no deadlines enforced beyond
/// the requests' own, unbounded queue, no breaker, no injected faults,
/// no batching, no tenant quotas.
#[derive(Debug, Clone, Default)]
pub struct ServingOptions {
    /// Bound on requests admitted but waiting for a worker; `None` is
    /// unbounded. A request that would wait behind a full queue is shed.
    pub queue_capacity: Option<usize>,
    /// Per-request real-time compile budget. The staged search degrades
    /// to its incumbent (and then to the search-free fallback) rather
    /// than overrun it.
    pub compile_budget: Option<Duration>,
    /// Retry schedule for transient device faults.
    pub retry: RetryPolicy,
    /// Per-shape circuit breaker for persistent compile failures.
    pub breaker: Option<BreakerPolicy>,
    /// Deterministic fault-injection plan, installed into the engine's
    /// compilers for the duration of each [`ServingRuntime::serve`] call.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Continuous batching + co-launch. `None` (default) keeps the solo
    /// dispatcher.
    pub batching: Option<BatchingOptions>,
    /// Per-tenant quotas and fair-share weights. `None` (default) treats
    /// the stream as single-tenant.
    pub tenancy: Option<TenantPolicy>,
}

/// What the parallel (pre-dispatch) compile phase produced.
struct CompileOutcome {
    /// The compiled forward pass with its retained launches; `None` when
    /// both the full path and the degraded fallback failed.
    plan: Option<GraphPlan>,
    /// Real wall-clock of the whole compile phase, ns (the graph's own
    /// measurement on the clean path; the measured window including the
    /// failed attempt when the fallback ran).
    compile_ns: u128,
    /// Device-fault retries the request will pay for.
    retries: u32,
    /// All retries faulted too: the request fails after occupying the
    /// device for every attempt.
    device_failed: bool,
    /// Total virtual device time across attempts and backoffs, ns.
    total_device_ns: f64,
    /// Breaker transition this compile triggered or rode, if any.
    breaker_event: Option<&'static str>,
}

/// A compiled request awaiting batching in the phase-B dispatcher.
struct Pending<'a> {
    request: &'a Request,
    /// Index into the arrival-ordered record table.
    slot: usize,
    worker: usize,
    start_ns: f64,
    ready_ns: f64,
    compile: ClockNs,
    plan: GraphPlan,
    retries: u32,
    device_failed: bool,
    /// Virtual device time beyond one clean execution (fault backoffs
    /// plus solo re-runs), charged to the member's record but not to the
    /// shared wave.
    retry_extra_ns: f64,
    breaker_event: Option<&'static str>,
}

/// A multi-worker request executor over a shared engine and a simulated
/// device pool.
pub struct ServingRuntime {
    engine: Arc<Engine>,
    cluster: Cluster,
    workers: usize,
    telemetry: Arc<Telemetry>,
    options: ServingOptions,
    breaker: Option<CircuitBreaker>,
    lifecycle: Arc<Lifecycle>,
}

impl ServingRuntime {
    /// Creates a runtime with `workers` threads over `cluster`'s devices.
    /// Telemetry defaults to the engine's handle (so an engine built with
    /// [`Engine::offline_with_telemetry`] gets serving spans for free).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or the cluster's device model differs
    /// from the engine's machine (programs would be timed on the wrong
    /// accelerator).
    pub fn new(engine: Arc<Engine>, cluster: Cluster, workers: usize) -> Self {
        assert!(workers > 0, "serving needs at least one worker");
        assert_eq!(
            cluster.machine.name,
            engine.machine().name,
            "device pool and engine must model the same machine"
        );
        let telemetry = Arc::clone(engine.telemetry());
        Self {
            engine,
            cluster,
            workers,
            telemetry,
            options: ServingOptions::default(),
            breaker: None,
            lifecycle: Arc::new(Lifecycle::new()),
        }
    }

    /// Replaces the telemetry handle (builder style).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets the fault-tolerance and dispatch policy (builder style).
    /// Creates the per-shape circuit breaker when the options ask for
    /// one.
    #[must_use]
    pub fn with_options(mut self, options: ServingOptions) -> Self {
        self.breaker = options.breaker.map(CircuitBreaker::new);
        self.options = options;
        self
    }

    /// The telemetry handle serving spans and metrics are recorded into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The fault-tolerance policy in force.
    pub fn options(&self) -> &ServingOptions {
        &self.options
    }

    /// The per-shape circuit breaker, when enabled.
    pub fn breaker(&self) -> Option<&CircuitBreaker> {
        self.breaker.as_ref()
    }

    /// The drain handle. Clone it out to trigger a graceful shutdown
    /// from another thread ([`Lifecycle::request_drain`]) or pin a
    /// deterministic virtual drain point before serving
    /// ([`Lifecycle::request_drain_at`]); requests arriving past the
    /// drain point are shed as [`ShedReason::Draining`].
    pub fn lifecycle(&self) -> &Arc<Lifecycle> {
        &self.lifecycle
    }

    /// Finalizes a graceful drain after [`ServingRuntime::serve`]
    /// returns: closes admission for good, persists the warm program
    /// caches into `snapshot_dir` (atomic generation commit) when one is
    /// given, and accounts for the run — every admitted request's
    /// disposition, the draining sheds, and the retained
    /// flight-recorder chains. A persist failure is reported in the
    /// [`DrainReport`], never panicked on: dispositions are not held
    /// hostage by disk.
    pub fn drain(
        &self,
        report: &ServingReport,
        snapshot_dir: Option<&std::path::Path>,
    ) -> DrainReport {
        self.lifecycle.request_drain();
        let dispositions = report.dispositions();
        let drained = drained_count(&report.records);
        let (persisted_generation, persist_error) = match snapshot_dir {
            Some(dir) => match self.engine.save_program_caches(dir) {
                Ok(generation) => (Some(generation), None),
                Err(e) => (None, Some(e.to_string())),
            },
            None => (None, None),
        };
        let chains_retained = self.telemetry.recorder().retained();
        if self.telemetry.is_enabled() {
            let registry = self.telemetry.registry();
            registry.describe(
                "serving.drain.drained",
                "Requests shed because admission was closed by a graceful drain",
            );
            registry.describe(
                "serving.drain.generation",
                "Warm-state generation committed by the drain's final persist",
            );
            registry
                .counter("serving.drain.drained")
                .add(drained as u64);
            if let Some(generation) = persisted_generation {
                registry
                    .gauge("serving.drain.generation")
                    .set(generation as f64);
            }
        }
        DrainReport {
            drained,
            dispositions,
            chains_retained,
            persisted_generation,
            persist_error,
        }
    }

    /// Whether a tenant policy is configured (gates per-tenant metrics).
    fn tenancy(&self) -> bool {
        self.options.tenancy.is_some()
    }

    /// The tenant's waiting-slot bound under the configured policy.
    fn tenant_waiting_cap(&self, request: &Request) -> Option<usize> {
        self.options
            .tenancy
            .as_ref()
            .and_then(|p| p.max_waiting_for(request.tenant))
    }

    /// The parallel compile phase for one admitted request: breaker check,
    /// panic-isolated full compile under the budget, degraded fallback,
    /// and the deterministic device-fault retry schedule.
    fn compile_request(&self, request: &Request) -> CompileOutcome {
        let key = request_shape_key(request);
        let breaker = self.breaker.as_ref();
        let decision = breaker.map_or(BreakerDecision::Allow, |b| b.check(key, request.arrival_ns));
        let degrade_only = decision == BreakerDecision::Degrade;
        let compile_start = Instant::now();
        let budget = CompileBudget {
            deadline: self
                .options
                .compile_budget
                .map(|limit| compile_start + limit),
            degrade_only,
        };
        let run = |budget: CompileBudget| {
            catch_unwind(AssertUnwindSafe(|| {
                self.engine
                    .try_plan_graph(request.ops.iter().map(|(op, count)| (op, *count)), budget)
            }))
        };
        // Breaker transitions are recorded onto the request's chain: a
        // `Degrade` decision short-circuits, a tripping failure opens,
        // and a successful half-open probe closes.
        let mut breaker_event = degrade_only.then_some("short-circuit");
        let (plan, fell_back) = match run(budget) {
            Ok(Ok(plan)) => {
                if !degrade_only {
                    if let Some(b) = breaker {
                        if b.record_success(key) {
                            breaker_event = Some("closed");
                        }
                    }
                }
                (Some(plan), false)
            }
            // Typed failure or panic: both feed the breaker and fall
            // through to the search-free fallback, itself panic-isolated
            // so a poisoned shape cannot kill the worker.
            Ok(Err(_)) | Err(_) => {
                if !degrade_only {
                    if let Some(b) = breaker {
                        if b.record_failure(key, request.arrival_ns) {
                            breaker_event = Some("opened");
                        }
                    }
                }
                let fallback = CompileBudget {
                    deadline: None,
                    degrade_only: true,
                };
                match run(fallback) {
                    Ok(Ok(plan)) => (Some(plan), true),
                    Ok(Err(_)) | Err(_) => (None, true),
                }
            }
        };
        let compile_ns = match (&plan, fell_back) {
            (Some(plan), false) => plan.run.compile_ns,
            _ => compile_start.elapsed().as_nanos(),
        };
        // Device faults are a pure function of (plan, request id, attempt),
        // so the whole retry schedule — and its virtual cost — is known
        // before the request reaches the dispatch section.
        let mut retries = 0u32;
        let mut device_failed = false;
        let mut total_device_ns = plan.as_ref().map_or(0.0, |p| p.run.device_ns);
        if let (Some(plan), Some(fault_plan)) = (&plan, self.options.fault_plan.as_deref()) {
            let retry = self.options.retry;
            let mut attempt = 0u32;
            while fault_plan.device_fault(request.id as u64, attempt) {
                if attempt >= retry.max_retries {
                    device_failed = true;
                    break;
                }
                total_device_ns += retry.backoff_for(attempt) + plan.run.device_ns;
                retries += 1;
                attempt += 1;
            }
        }
        CompileOutcome {
            plan,
            compile_ns,
            retries,
            device_failed,
            total_device_ns,
            breaker_event,
        }
    }

    /// Serves `requests` (any order; they are dispatched by arrival time)
    /// to completion and reports per-request latency decompositions plus
    /// worker and cache counters. Every request terminates with exactly
    /// one [`Disposition`]. Routes to the batched dispatcher when
    /// [`ServingOptions::batching`] is set, the solo dispatcher
    /// otherwise.
    pub fn serve(&self, requests: &[Request]) -> ServingReport {
        if let Some(plan) = &self.options.fault_plan {
            self.engine.set_fault_plan(Some(Arc::clone(plan)));
        }
        match self.options.batching {
            Some(batching) => self.serve_batched(requests, batching),
            None => self.serve_solo(requests),
        }
    }

    /// The solo dispatcher: each worker holds its request end to end.
    fn serve_solo(&self, requests: &[Request]) -> ServingReport {
        let mut ordered: Vec<&Request> = requests.iter().collect();
        ordered.sort_by(|a, b| f64::total_cmp(&a.arrival_ns, &b.arrival_ns));
        let cursor = AtomicUsize::new(0);
        let sequencer = Sequencer::new();
        // Virtual free time per worker slot and per device. A request is
        // assigned (in arrival order) to the earliest-free worker slot,
        // then takes the earliest-free device once its compilation is
        // done. Slots are virtual-time identities, deliberately decoupled
        // from the OS threads doing the real compile work, so the
        // timeline cannot be skewed by thread starvation.
        let worker_pool = Mutex::new(vec![0.0f64; self.workers]);
        let device_pool = Mutex::new(vec![0.0f64; self.cluster.devices]);
        let waiting = Mutex::new(WaitQueue::new());
        // Dispatch over the interconnect only when the pool is remote.
        let dispatch_ns = if self.cluster.devices > 1 {
            self.cluster.interconnect.latency_ns
        } else {
            0.0
        };
        let tenancy = self.tenancy();

        let telemetry = &self.telemetry;
        let per_thread: Vec<Vec<RequestRecord>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|_| {
                    let ordered = &ordered;
                    let cursor = &cursor;
                    let sequencer = &sequencer;
                    let worker_pool = &worker_pool;
                    let device_pool = &device_pool;
                    let waiting = &waiting;
                    scope.spawn(move || {
                        let mut records = Vec::new();
                        loop {
                            let ticket = cursor.fetch_add(1, Ordering::SeqCst);
                            let Some(request) = ordered.get(ticket) else {
                                break;
                            };
                            // Pre-admission shed: a drain point the request
                            // arrived past, or a deadline that passed
                            // before arrival, means the request is never
                            // compiled at all — it only takes (and
                            // immediately passes) its sequencer turn.
                            let pre_shed = if self.lifecycle.draining_at(request.arrival_ns) {
                                Some(ShedReason::Draining)
                            } else if request.deadline_ns.is_some_and(|d| d <= request.arrival_ns) {
                                Some(ShedReason::DeadlineAtEnqueue)
                            } else {
                                None
                            };
                            if let Some(reason) = pre_shed {
                                sequencer.wait_for(ticket);
                                sequencer.advance();
                                let record = shed_record(request, reason);
                                if telemetry.is_enabled() {
                                    emit_request_telemetry(
                                        telemetry,
                                        request,
                                        &record,
                                        &EmitContext {
                                            start: request.arrival_ns,
                                            exec: None,
                                            dispatch_ns,
                                            tenancy,
                                            batched: false,
                                        },
                                    );
                                }
                                records.push(record);
                                continue;
                            }
                            // Real wall-clock compile (0 on cache hits),
                            // simulated device time — the expensive part,
                            // running in parallel across threads and
                            // panic-isolated inside `compile_request`.
                            let outcome = self.compile_request(request);
                            // The worker is genuinely occupied for the real
                            // compile wall-clock while virtual arrivals keep
                            // accumulating — the one sanctioned projection
                            // of real time onto the serving timeline.
                            let compile = ClockNs::real(outcome.compile_ns as f64);

                            // Virtual bookkeeping in strict arrival order.
                            // Everything from here to `advance` must be
                            // panic-free: a panic would strand every later
                            // ticket on the sequencer.
                            sequencer.wait_for(ticket);
                            let mut waiting_q = waiting.lock();
                            waiting_q.expire(request.arrival_ns);
                            let (worker, worker_free) = earliest_free(&worker_pool.lock());
                            let start = request.arrival_ns.max(worker_free);
                            let shed = if request.deadline_ns.is_some_and(|d| start > d) {
                                Some(ShedReason::DeadlineAtDispatch)
                            } else if start > request.arrival_ns
                                && self
                                    .tenant_waiting_cap(request)
                                    .is_some_and(|cap| waiting_q.tenant_len(request.tenant) >= cap)
                            {
                                Some(ShedReason::TenantThrottled)
                            } else if start > request.arrival_ns
                                && self
                                    .options
                                    .queue_capacity
                                    .is_some_and(|cap| waiting_q.len() >= cap)
                            {
                                Some(ShedReason::QueueFull)
                            } else {
                                if start > request.arrival_ns {
                                    waiting_q.push(start, request.tenant);
                                }
                                None
                            };
                            drop(waiting_q);

                            let (record, exec) = if let Some(reason) = shed {
                                // Shed: no virtual resources consumed.
                                (shed_record(request, reason), None)
                            } else if let Some(plan) = &outcome.plan {
                                let ready = start + compile.onto_virtual_timeline();
                                let (device, device_start) = {
                                    let mut pool = device_pool.lock();
                                    let (device, device_free) = earliest_free(&pool);
                                    let device_start = ready.max(device_free) + dispatch_ns;
                                    pool[device] = device_start + outcome.total_device_ns;
                                    (device, device_start)
                                };
                                let finish = device_start + outcome.total_device_ns;
                                worker_pool.lock()[worker] = finish;
                                let disposition = if outcome.device_failed {
                                    Disposition::Failed
                                } else if plan.run.degraded > 0 {
                                    Disposition::Degraded
                                } else {
                                    Disposition::Completed
                                };
                                (
                                    RequestRecord {
                                        id: request.id,
                                        tenant: request.tenant,
                                        worker,
                                        device,
                                        queue_ns: (start - request.arrival_ns)
                                            + (device_start - dispatch_ns - ready),
                                        compile,
                                        search_ns: plan.run.search_ns,
                                        cache_wait_ns: plan.run.cache_wait_ns,
                                        device_ns: outcome.total_device_ns + dispatch_ns,
                                        finish_ns: finish,
                                        disposition,
                                        shed_reason: None,
                                        retries: outcome.retries,
                                        deadline_ns: request.deadline_ns,
                                        breaker_event: outcome.breaker_event,
                                        batch_size: 1,
                                    },
                                    Some((ready, device_start)),
                                )
                            } else {
                                // Both compile paths failed: the worker was
                                // occupied for the compile window, but no
                                // device was ever dispatched.
                                let finish = start + compile.onto_virtual_timeline();
                                worker_pool.lock()[worker] = finish;
                                (
                                    RequestRecord {
                                        id: request.id,
                                        tenant: request.tenant,
                                        worker,
                                        device: NO_SLOT,
                                        queue_ns: start - request.arrival_ns,
                                        compile,
                                        search_ns: 0,
                                        cache_wait_ns: 0,
                                        device_ns: 0.0,
                                        finish_ns: finish,
                                        disposition: Disposition::Failed,
                                        shed_reason: None,
                                        retries: outcome.retries,
                                        deadline_ns: request.deadline_ns,
                                        breaker_event: outcome.breaker_event,
                                        batch_size: 0,
                                    },
                                    None,
                                )
                            };
                            sequencer.advance();

                            if telemetry.is_enabled() {
                                emit_request_telemetry(
                                    telemetry,
                                    request,
                                    &record,
                                    &EmitContext {
                                        start,
                                        exec,
                                        dispatch_ns,
                                        tenancy,
                                        batched: false,
                                    },
                                );
                            }
                            records.push(record);
                        }
                        records
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    // The per-ticket body is panic-isolated; if a worker
                    // dies anyway, surface the panic rather than silently
                    // dropping its records.
                    h.join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                })
                .collect()
        });

        let first_arrival = ordered.first().map_or(0.0, |r| r.arrival_ns);
        let records: Vec<RequestRecord> = per_thread.into_iter().flatten().collect();
        self.build_report(records, first_arrival, true)
    }

    /// The batched dispatcher: phase A compiles every admissible request
    /// in parallel; phase B replays the virtual timeline single-threaded —
    /// admission and worker placement in arrival order, then shape-bucket
    /// formation over compile-ready events, then co-launch waves onto the
    /// device pool in flush order.
    fn serve_batched(&self, requests: &[Request], batching: BatchingOptions) -> ServingReport {
        let mut ordered: Vec<&Request> = requests.iter().collect();
        ordered.sort_by(|a, b| f64::total_cmp(&a.arrival_ns, &b.arrival_ns));
        let n = ordered.len();
        let tenancy = self.tenancy();
        let policy = self.options.tenancy.clone().unwrap_or_default();
        let dispatch_ns = if self.cluster.devices > 1 {
            self.cluster.interconnect.latency_ns
        } else {
            0.0
        };
        let telemetry = &self.telemetry;

        // Phase A: parallel compile across the worker threads. Requests
        // already expired at arrival are never compiled (the enqueue-shed
        // guarantee the solo path makes).
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CompileOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|_| {
                    let ordered = &ordered;
                    let cursor = &cursor;
                    let slots = &slots;
                    scope.spawn(move || loop {
                        let i = cursor.fetch_add(1, Ordering::SeqCst);
                        let Some(request) = ordered.get(i) else {
                            break;
                        };
                        if request.deadline_ns.is_some_and(|d| d <= request.arrival_ns)
                            || self.lifecycle.draining_at(request.arrival_ns)
                        {
                            continue;
                        }
                        *slots[i].lock() = Some(self.compile_request(request));
                    })
                })
                .collect();
            for h in handles {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            }
        });
        let mut outcomes: Vec<Option<CompileOutcome>> =
            slots.into_iter().map(Mutex::into_inner).collect();

        // Phase B step 1: admission and worker placement in arrival
        // order. Workers are released at compile-done — the defining move
        // of continuous batching — so `worker_pool` tracks compile
        // occupancy only.
        let mut worker_pool = vec![0.0f64; self.workers];
        let mut device_pool = vec![0.0f64; self.cluster.devices];
        let mut waiting = WaitQueue::new();
        let mut records: Vec<Option<RequestRecord>> = vec![None; n];
        let mut pending: Vec<Pending<'_>> = Vec::new();
        for (slot, request) in ordered.iter().enumerate() {
            let pre_shed = if self.lifecycle.draining_at(request.arrival_ns) {
                Some(ShedReason::Draining)
            } else if request.deadline_ns.is_some_and(|d| d <= request.arrival_ns) {
                Some(ShedReason::DeadlineAtEnqueue)
            } else {
                None
            };
            if let Some(reason) = pre_shed {
                let record = shed_record(request, reason);
                if telemetry.is_enabled() {
                    emit_request_telemetry(
                        telemetry,
                        request,
                        &record,
                        &EmitContext {
                            start: request.arrival_ns,
                            exec: None,
                            dispatch_ns,
                            tenancy,
                            batched: true,
                        },
                    );
                }
                records[slot] = Some(record);
                continue;
            }
            let Some(outcome) = outcomes[slot].take() else {
                // Unreachable: phase A compiled every non-expired request.
                records[slot] = Some(shed_record(request, ShedReason::DeadlineAtEnqueue));
                continue;
            };
            let compile = ClockNs::real(outcome.compile_ns as f64);
            waiting.expire(request.arrival_ns);
            let (worker, worker_free) = earliest_free(&worker_pool);
            let start = request.arrival_ns.max(worker_free);
            let shed = if request.deadline_ns.is_some_and(|d| start > d) {
                Some(ShedReason::DeadlineAtDispatch)
            } else if start > request.arrival_ns
                && self
                    .tenant_waiting_cap(request)
                    .is_some_and(|cap| waiting.tenant_len(request.tenant) >= cap)
            {
                Some(ShedReason::TenantThrottled)
            } else if start > request.arrival_ns
                && self
                    .options
                    .queue_capacity
                    .is_some_and(|cap| waiting.len() >= cap)
            {
                Some(ShedReason::QueueFull)
            } else {
                if start > request.arrival_ns {
                    waiting.push(start, request.tenant);
                }
                None
            };
            if let Some(reason) = shed {
                let record = shed_record(request, reason);
                if telemetry.is_enabled() {
                    emit_request_telemetry(
                        telemetry,
                        request,
                        &record,
                        &EmitContext {
                            start: request.arrival_ns,
                            exec: None,
                            dispatch_ns,
                            tenancy,
                            batched: true,
                        },
                    );
                }
                records[slot] = Some(record);
                continue;
            }
            let Some(plan) = outcome.plan else {
                // Both compile paths failed: the worker was occupied for
                // the compile window; no device is ever dispatched.
                let finish = start + compile.onto_virtual_timeline();
                worker_pool[worker] = finish;
                let record = RequestRecord {
                    id: request.id,
                    tenant: request.tenant,
                    worker,
                    device: NO_SLOT,
                    queue_ns: start - request.arrival_ns,
                    compile,
                    search_ns: 0,
                    cache_wait_ns: 0,
                    device_ns: 0.0,
                    finish_ns: finish,
                    disposition: Disposition::Failed,
                    shed_reason: None,
                    retries: outcome.retries,
                    deadline_ns: request.deadline_ns,
                    breaker_event: outcome.breaker_event,
                    batch_size: 0,
                };
                if telemetry.is_enabled() {
                    emit_request_telemetry(
                        telemetry,
                        request,
                        &record,
                        &EmitContext {
                            start,
                            exec: None,
                            dispatch_ns,
                            tenancy,
                            batched: true,
                        },
                    );
                }
                records[slot] = Some(record);
                continue;
            };
            let ready = start + compile.onto_virtual_timeline();
            worker_pool[worker] = ready;
            let retry_extra_ns = outcome.total_device_ns - plan.run.device_ns;
            pending.push(Pending {
                request,
                slot,
                worker,
                start_ns: start,
                ready_ns: ready,
                compile,
                plan,
                retries: outcome.retries,
                device_failed: outcome.device_failed,
                retry_extra_ns,
                breaker_event: outcome.breaker_event,
            });
        }

        // Phase B step 2: shape-bucket formation over ready events.
        let mut events: Vec<ReadyEvent> = pending
            .iter()
            .enumerate()
            .map(|(index, p)| ReadyEvent {
                pending: index,
                id: p.request.id,
                ready_ns: p.ready_ns,
                shape_key: request_shape_key(p.request),
            })
            .collect();
        events.sort_by(|a, b| f64::total_cmp(&a.ready_ns, &b.ready_ns).then(a.id.cmp(&b.id)));
        let flushes = form_batches(&events, batching);

        // Phase B step 3: co-launch waves onto the device pool in flush
        // order. Bucket members run identical programs, so a wave of k
        // members is k merged copies of one launch sequence; its
        // simulated duration is cached per (shape, k).
        let capacity = warp_capacity(&self.cluster.machine);
        let mut meter = FairMeter::new();
        let mut wave_cache: HashMap<(u64, usize), f64> = HashMap::new();
        for flush in flushes {
            let mut members = flush.members;
            meter.order_by_fairness(&policy, &mut members, |index| pending[index].request.tenant);
            let demands: Vec<u64> = members
                .iter()
                .map(|&index| plan_demand(&pending[index].plan.ops))
                .collect();
            for wave in plan_waves(&demands, capacity) {
                let k = wave.len();
                let lead = &pending[members[wave[0]]];
                let wave_ns = *wave_cache
                    .entry((flush.shape_key, k))
                    .or_insert_with(|| wave_device_ns(&self.cluster.machine, &lead.plan.ops, k));
                let (device, device_free) = earliest_free(&device_pool);
                let wave_start = flush.flush_ns.max(device_free) + dispatch_ns;
                device_pool[device] = wave_start + wave_ns;
                if telemetry.is_enabled() {
                    let registry = telemetry.registry();
                    registry.counter("serving.waves").inc();
                    let load: u64 = wave.iter().map(|&w| demands[w]).sum();
                    registry
                        .histogram("serving.wave_occupancy_pct", Clock::Virtual)
                        .record_f64(100.0 * load as f64 / capacity.max(1) as f64);
                }
                for &w in &wave {
                    let p = &pending[members[w]];
                    let finish = wave_start + wave_ns + p.retry_extra_ns;
                    let disposition = if p.device_failed {
                        Disposition::Failed
                    } else if p.plan.run.degraded > 0 {
                        Disposition::Degraded
                    } else {
                        Disposition::Completed
                    };
                    let record = RequestRecord {
                        id: p.request.id,
                        tenant: p.request.tenant,
                        worker: p.worker,
                        device,
                        queue_ns: (p.start_ns - p.request.arrival_ns)
                            + (wave_start - dispatch_ns - p.ready_ns),
                        compile: p.compile,
                        search_ns: p.plan.run.search_ns,
                        cache_wait_ns: p.plan.run.cache_wait_ns,
                        device_ns: wave_ns + dispatch_ns + p.retry_extra_ns,
                        finish_ns: finish,
                        disposition,
                        shed_reason: None,
                        retries: p.retries,
                        deadline_ns: p.request.deadline_ns,
                        breaker_event: p.breaker_event,
                        batch_size: k,
                    };
                    meter.charge(p.request.tenant, wave_ns / k as f64);
                    if telemetry.is_enabled() {
                        emit_request_telemetry(
                            telemetry,
                            p.request,
                            &record,
                            &EmitContext {
                                start: p.start_ns,
                                exec: Some((p.ready_ns, wave_start)),
                                dispatch_ns,
                                tenancy,
                                batched: true,
                            },
                        );
                    }
                    records[p.slot] = Some(record);
                }
            }
        }

        let first_arrival = ordered.first().map_or(0.0, |r| r.arrival_ns);
        let records: Vec<RequestRecord> = records.into_iter().flatten().collect();
        debug_assert_eq!(records.len(), n, "every request gets exactly one record");
        self.build_report(records, first_arrival, false)
    }

    /// The shared reporting tail: makespan, per-worker accounting, cache
    /// counters, and the collector-style metric export.
    ///
    /// `device_on_worker` states whether workers held their requests
    /// through device execution (solo) or only through compile (batched);
    /// worker busy time follows.
    fn build_report(
        &self,
        mut records: Vec<RequestRecord>,
        first_arrival: f64,
        device_on_worker: bool,
    ) -> ServingReport {
        let last_finish = records
            .iter()
            .map(|r| r.finish_ns)
            .fold(first_arrival, f64::max);
        let makespan_ns = (last_finish - first_arrival).max(f64::MIN_POSITIVE);
        records.sort_by_key(|r| r.id);
        let workers = (0..self.workers)
            .map(|worker| {
                let mine = records.iter().filter(|r| r.worker == worker);
                let busy_ns = mine
                    .clone()
                    .map(|r| {
                        let device = if device_on_worker { r.device_ns } else { 0.0 };
                        r.compile.onto_virtual_timeline() + device
                    })
                    .sum::<f64>();
                WorkerStats {
                    worker,
                    requests: mine.count(),
                    busy_ns,
                    utilization: busy_ns / makespan_ns,
                }
            })
            .collect();
        let cache = self
            .engine
            .gemm_compiler()
            .cache_stats()
            .merged(self.engine.conv_compiler().cache_stats());
        let breaker_opens = self.breaker.as_ref().map_or(0, CircuitBreaker::opens);
        if self.telemetry.is_enabled() {
            let registry = self.telemetry.registry();
            // Collector-style export: the registry's cache.* counters are
            // overwritten with the caches' own (authoritative) atomics, so
            // a metrics snapshot taken now exactly equals `cache`.
            cache.export_to(registry);
            registry.gauge("serving.workers").set(self.workers as f64);
            registry
                .gauge("serving.devices")
                .set(self.cluster.devices as f64);
            registry.gauge("serving.makespan_ms").set(makespan_ns / 1e6);
            registry
                .gauge("serving.throughput_rps")
                .set(records.len() as f64 / (makespan_ns / 1e9));
            registry
                .gauge("serving.breaker_opens")
                .set(breaker_opens as f64);
            describe_serving_metrics(registry);
            self.telemetry.export_health();
        }
        ServingReport {
            records,
            workers,
            cache,
            makespan_ns,
            breaker_opens,
        }
    }
}

/// Hands out turns in ticket order: real compile work overlaps freely
/// across threads, but each request's virtual bookkeeping runs alone, in
/// arrival order, so the timeline is scheduling-independent.
struct Sequencer {
    turn: Mutex<usize>,
    ready: Condvar,
}

impl Sequencer {
    fn new() -> Self {
        Self {
            turn: Mutex::new(0),
            ready: Condvar::new(),
        }
    }

    /// Blocks until it is `ticket`'s turn.
    fn wait_for(&self, ticket: usize) {
        let mut turn = self.turn.lock();
        while *turn != ticket {
            self.ready.wait(&mut turn);
        }
    }

    /// Passes the turn to the next ticket.
    fn advance(&self) {
        *self.turn.lock() += 1;
        self.ready.notify_all();
    }
}

/// The index and virtual free time of the earliest-free pool slot.
/// Panic-free (it runs inside the sequenced section): an empty pool —
/// excluded by the constructor asserts — would return the infinity
/// sentinel rather than panicking.
fn earliest_free(pool: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (slot, &free_at) in pool.iter().enumerate() {
        if free_at <= best.1 {
            best = (slot, free_at);
        }
    }
    best
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::super::admission::TenantQuota;
    use super::super::request::poisson_arrivals;
    use super::*;
    use crate::offline::OfflineOptions;
    use accel_sim::{Interconnect, MachineModel};
    use tensor_ir::{GemmShape, Operator};

    fn engine() -> Arc<Engine> {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        Arc::new(Engine::offline(MachineModel::a100(), &o))
    }

    fn local_cluster(engine: &Engine) -> Cluster {
        Cluster::new(engine.machine().clone(), 1, Interconnect::nvlink3())
    }

    fn stream(n: usize, gap: f64) -> Vec<Request> {
        let shapes = [(256, 256, 256), (777, 512, 256), (64, 64, 64)];
        poisson_arrivals(n, gap, 7)
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let (m, nn, k) = shapes[i % shapes.len()];
                Request::single(i, t, Operator::gemm(GemmShape::new(m, nn, k)))
            })
            .collect()
    }

    #[test]
    fn decomposition_adds_up_and_all_requests_complete() {
        let engine = engine();
        let cluster = local_cluster(&engine);
        let telemetry = mikpoly_telemetry::Telemetry::enabled();
        let runtime =
            ServingRuntime::new(engine, cluster, 2).with_telemetry(Arc::clone(&telemetry));
        let requests = stream(24, 50_000.0);
        let report = runtime.serve(&requests);
        assert_eq!(report.records.len(), 24);
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.id, i);
            assert!(r.queue_ns >= -1e-6, "negative queue: {r:?}");
            assert!(r.device_ns > 0.0);
            assert_eq!(r.compile.clock(), Clock::Real);
            assert_eq!(r.disposition, Disposition::Completed);
            assert!(r.executed());
            assert_eq!(r.batch_size, 1, "solo records are singleton waves");
            assert!((r.timeline_total_ns() - (r.finish_ns - requests[i].arrival_ns)).abs() < 1e-3);
        }
        // 3 unique shapes → 3 polymerizations, regardless of worker count.
        assert_eq!(report.cache.computations, 3);
        assert_eq!(report.workers.len(), 2);
        assert_eq!(report.workers.iter().map(|w| w.requests).sum::<usize>(), 24);
        let counts = report.dispositions();
        assert_eq!(counts.completed, 24);
        assert_eq!(counts.total(), 24);
        assert_eq!(report.breaker_opens, 0);
        // Telemetry: every request got queue/request/compile/device spans,
        // and the exported cache counters equal the report's snapshot.
        let spans = telemetry.drain_spans();
        for name in [
            "serving.queue",
            "serving.request",
            "serving.compile",
            "serving.device",
        ] {
            let count = spans.iter().filter(|s| s.name == name).count();
            assert_eq!(count, 24, "{name}: {count} spans");
        }
        let snap = telemetry.registry().snapshot();
        assert_eq!(snap.counter("cache.hits"), Some(report.cache.hits));
        assert_eq!(
            snap.counter("cache.computations"),
            Some(report.cache.computations)
        );
        assert_eq!(
            snap.counter("cache.coalesced_waits"),
            Some(report.cache.coalesced_waits)
        );
        assert_eq!(snap.counter("serving.requests"), Some(24));
        assert_eq!(snap.counter("serving.completed"), Some(24));
        // Single-tenant stream without a policy: no per-tenant counters.
        assert_eq!(snap.counter("serving.tenant.0.requests"), None);
        let summary = report.latency_summary();
        assert_eq!(summary.total.count, 24);
        assert_eq!(summary.compile.clock, Clock::Real);
        assert_eq!(summary.total.clock, Clock::Virtual);
    }

    #[test]
    fn more_workers_do_not_reduce_saturated_throughput() {
        // Near-zero inter-arrival gap = saturating load: service is the
        // bottleneck, so throughput must improve with workers.
        // The device pool stays fixed while the worker count varies, so
        // the comparison isolates host-side parallelism; the cache is
        // warmed first so real compile wall-clock (identical work, but
        // paid once per engine) does not blur the virtual-time comparison.
        let requests = stream(48, 1.0);
        let mut last = 0.0;
        for workers in [1usize, 2, 4] {
            let engine = engine();
            for request in &requests {
                for (op, _) in &request.ops {
                    engine.run_operator(op);
                }
            }
            let cluster = Cluster::new(engine.machine().clone(), 4, Interconnect::nvlink3());
            let report = ServingRuntime::new(engine, cluster, workers).serve(&requests);
            let rps = report.throughput_rps();
            assert!(
                rps >= last * 0.99,
                "{workers} workers: {rps} rps after {last}"
            );
            last = rps;
        }
    }

    #[test]
    fn expired_deadline_requests_are_shed_without_compiling() {
        let engine = engine();
        let cluster = local_cluster(&engine);
        let runtime = ServingRuntime::new(engine, cluster, 2);
        let requests: Vec<Request> = (0..6)
            .map(|i| {
                let arrival = i as f64 * 10_000.0;
                Request::single(i, arrival, Operator::gemm(GemmShape::new(256, 256, 256)))
                    .with_deadline(arrival - 1.0)
            })
            .collect();
        let report = runtime.serve(&requests);
        assert_eq!(report.records.len(), 6);
        for r in &report.records {
            assert_eq!(r.disposition, Disposition::Shed);
            assert_eq!(r.shed_reason, Some(ShedReason::DeadlineAtEnqueue));
            assert!(!r.executed());
            assert_eq!(r.compile.real_ns(), 0.0);
        }
        // The whole point: a request shed at enqueue is never compiled.
        assert_eq!(report.cache.computations, 0);
        assert_eq!(report.dispositions().shed, 6);
        assert_eq!(report.goodput_rps(), 0.0);
    }

    #[test]
    fn bounded_queue_sheds_bursts_and_late_starts_shed_on_deadline() {
        let engine = engine();
        let cluster = local_cluster(&engine);
        let runtime = ServingRuntime::new(engine, cluster, 1).with_options(ServingOptions {
            queue_capacity: Some(2),
            ..ServingOptions::default()
        });
        let op = || Operator::gemm(GemmShape::new(256, 256, 256));
        // A burst of 8 simultaneous arrivals against 1 worker and a
        // 2-deep queue: the first starts immediately, two wait, the rest
        // overflow. A ninth, slightly later request has a deadline far
        // tighter than the backlog, so it sheds at dispatch (the deadline
        // check dominates the queue check).
        let mut requests: Vec<Request> = (0..8).map(|i| Request::single(i, 0.0, op())).collect();
        requests.push(Request::single(8, 1.0, op()).with_deadline(2.0));
        let report = runtime.serve(&requests);
        let counts = report.dispositions();
        assert_eq!(counts.completed, 3, "{counts:?}");
        assert_eq!(counts.shed, 6, "{counts:?}");
        assert_eq!(counts.total(), 9);
        let queue_full = report
            .records
            .iter()
            .filter(|r| r.shed_reason == Some(ShedReason::QueueFull))
            .count();
        assert_eq!(queue_full, 5);
        assert_eq!(
            report.records[8].shed_reason,
            Some(ShedReason::DeadlineAtDispatch)
        );
        // Shed requests never occupy a worker slot.
        assert!(report
            .records
            .iter()
            .filter(|r| r.disposition == Disposition::Shed)
            .all(|r| r.worker == usize::MAX && !r.executed()));
    }

    #[test]
    fn breaker_opens_probes_and_recovers() {
        let engine = engine();
        let cluster = local_cluster(&engine);
        // Compilation of the (single) shape panics on its first 5
        // attempts, then heals. Threshold 2 and a cooldown shorter than
        // the arrival gap give a fully deterministic single-worker
        // timeline: fail, fail-and-open, three failed probes (re-opens),
        // a successful probe that closes, then cache hits.
        let plan = FaultPlan {
            seed: 11,
            compile_panic_rate: 1.0,
            panic_attempts: 5,
            ..FaultPlan::none()
        };
        let runtime = ServingRuntime::new(engine, cluster, 1).with_options(ServingOptions {
            breaker: Some(BreakerPolicy {
                failure_threshold: 2,
                cooldown_ns: 5_000.0,
            }),
            fault_plan: Some(Arc::new(plan)),
            ..ServingOptions::default()
        });
        let requests: Vec<Request> = (0..8)
            .map(|i| {
                Request::single(
                    i,
                    i as f64 * 10_000.0,
                    Operator::gemm(GemmShape::new(256, 256, 256)),
                )
            })
            .collect();
        let report = runtime.serve(&requests);
        let counts = report.dispositions();
        assert_eq!(counts.degraded, 5, "{counts:?}");
        assert_eq!(counts.completed, 3, "{counts:?}");
        assert_eq!(counts.failed, 0, "{counts:?}");
        // Open on the second failure, then three failed probes re-open.
        assert_eq!(report.breaker_opens, 4);
        for r in &report.records[..5] {
            assert_eq!(r.disposition, Disposition::Degraded, "{r:?}");
            assert!(r.executed(), "degraded requests still run: {r:?}");
        }
        for r in &report.records[5..] {
            assert_eq!(r.disposition, Disposition::Completed, "{r:?}");
        }
    }

    #[test]
    fn batched_dispatcher_preserves_invariants_and_forms_waves() {
        let engine = engine();
        let cluster = local_cluster(&engine);
        let telemetry = mikpoly_telemetry::Telemetry::enabled();
        let runtime = ServingRuntime::new(engine, cluster, 4)
            .with_telemetry(Arc::clone(&telemetry))
            .with_options(ServingOptions {
                batching: Some(BatchingOptions::new(200_000.0, 8)),
                ..ServingOptions::default()
            });
        // A tight burst of one small shape: the whole burst should share
        // waves instead of running 16 solo launches.
        let requests: Vec<Request> = (0..16)
            .map(|i| {
                Request::single(
                    i,
                    i as f64 * 100.0,
                    Operator::gemm(GemmShape::new(64, 64, 64)),
                )
            })
            .collect();
        let report = runtime.serve(&requests);
        assert_eq!(report.records.len(), 16);
        let counts = report.dispositions();
        assert_eq!(counts.completed, 16, "{counts:?}");
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.id, i);
            assert!(r.executed());
            assert!(r.batch_size >= 1);
            assert!(r.queue_ns >= -1e-6, "negative queue: {r:?}");
            // The timeline identity holds under batching too: queueing
            // (including batch-forming delay) + compile + wave device
            // time equals end-to-end latency.
            assert!(
                (r.timeline_total_ns() - (r.finish_ns - requests[i].arrival_ns)).abs() < 1e-3,
                "identity broken: {r:?}"
            );
        }
        assert!(
            report.mean_batch_size() > 1.0,
            "burst formed no waves: mean batch {}",
            report.mean_batch_size()
        );
        let snap = telemetry.registry().snapshot();
        let waves = snap.counter("serving.waves").unwrap_or(0);
        assert!(waves >= 1, "no waves counted");
        assert!(
            (waves as usize) < 16,
            "every request launched solo: {waves} waves"
        );
        assert_eq!(snap.counter("serving.requests"), Some(16));
    }

    #[test]
    fn virtual_drain_point_sheds_exactly_the_late_arrivals() {
        let engine = engine();
        let cluster = local_cluster(&engine);
        let telemetry = mikpoly_telemetry::Telemetry::enabled();
        let runtime =
            ServingRuntime::new(engine, cluster, 2).with_telemetry(Arc::clone(&telemetry));
        let requests = stream(16, 50_000.0);
        // Pin the drain point to request 10's arrival: the shed set is a
        // pure function of arrival times, so exactly requests 10..16 are
        // shed as draining and everything earlier runs to completion.
        runtime
            .lifecycle()
            .request_drain_at(requests[10].arrival_ns);
        let report = runtime.serve(&requests);
        assert_eq!(report.records.len(), 16);
        for r in &report.records[..10] {
            assert_eq!(r.disposition, Disposition::Completed, "{r:?}");
        }
        for r in &report.records[10..] {
            assert_eq!(r.disposition, Disposition::Shed, "{r:?}");
            assert_eq!(r.shed_reason, Some(ShedReason::Draining));
            assert!(!r.executed(), "drained requests consume no device");
        }
        let dir = std::env::temp_dir().join(format!("mikpoly-drain-solo-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let drain = runtime.drain(&report, Some(&dir));
        // The nothing-lost invariant: every request has a disposition,
        // the draining sheds are counted, and the caches committed.
        assert_eq!(drain.dispositions.total(), 16);
        assert_eq!(drain.drained, 6);
        assert_eq!(drain.dispositions.shed, 6);
        assert_eq!(drain.persisted_generation, Some(1));
        assert!(drain.persist_error.is_none());
        assert!(
            drain.chains_retained >= 6,
            "every shed request retains a chain: {drain:?}"
        );
        assert!(runtime.lifecycle().is_draining());
        // Admission stays closed after the drain: a fresh serve sheds
        // everything.
        let after = runtime.serve(&stream(4, 50_000.0));
        assert!(after
            .records
            .iter()
            .all(|r| r.shed_reason == Some(ShedReason::Draining)));
        let snap = telemetry.registry().snapshot();
        assert_eq!(snap.counter("serving.drain.drained"), Some(6));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_drain_keeps_the_disposition_invariant() {
        let engine = engine();
        let cluster = local_cluster(&engine);
        let runtime = ServingRuntime::new(engine, cluster, 4).with_options(ServingOptions {
            batching: Some(BatchingOptions::new(200_000.0, 8)),
            ..ServingOptions::default()
        });
        let requests: Vec<Request> = (0..16)
            .map(|i| {
                Request::single(
                    i,
                    i as f64 * 100.0,
                    Operator::gemm(GemmShape::new(64, 64, 64)),
                )
            })
            .collect();
        runtime
            .lifecycle()
            .request_drain_at(requests[12].arrival_ns);
        let report = runtime.serve(&requests);
        let drain = runtime.drain(&report, None);
        assert_eq!(drain.dispositions.total(), 16);
        assert_eq!(drain.drained, 4);
        assert_eq!(drain.dispositions.completed, 12);
        assert_eq!(drain.persisted_generation, None);
        assert!(drain.persist_error.is_none());
        for r in &report.records[12..] {
            assert_eq!(r.shed_reason, Some(ShedReason::Draining), "{r:?}");
            assert_eq!(r.batch_size, 0, "drained requests join no wave");
        }
        // Deterministic replay: the same stream and drain point produce
        // the same shed set on a fresh runtime.
        let fresh = self::engine();
        let cluster = local_cluster(&fresh);
        let rerun = ServingRuntime::new(fresh, cluster, 4).with_options(ServingOptions {
            batching: Some(BatchingOptions::new(200_000.0, 8)),
            ..ServingOptions::default()
        });
        rerun.lifecycle().request_drain_at(requests[12].arrival_ns);
        let rerun_report = rerun.serve(&requests);
        let sheds: Vec<usize> = rerun_report
            .records
            .iter()
            .filter(|r| r.shed_reason == Some(ShedReason::Draining))
            .map(|r| r.id)
            .collect();
        assert_eq!(sheds, vec![12, 13, 14, 15]);
    }

    #[test]
    fn batched_waves_beat_solo_execution_on_a_homogeneous_burst() {
        // The co-launch claim itself: for a burst of identical small
        // kernels, merged waves recover idle PEs, so batched serving
        // finishes the burst no later than solo serving. Compile cost is
        // excluded by warming the cache first (both runtimes share one
        // engine).
        let engine = engine();
        let shape = GemmShape::new(64, 64, 64);
        engine.run_operator(&Operator::gemm(shape));
        let requests: Vec<Request> = (0..24)
            .map(|i| Request::single(i, i as f64, Operator::gemm(shape)))
            .collect();
        let solo =
            ServingRuntime::new(Arc::clone(&engine), local_cluster(&engine), 4).serve(&requests);
        let batched = ServingRuntime::new(Arc::clone(&engine), local_cluster(&engine), 4)
            .with_options(ServingOptions {
                batching: Some(BatchingOptions::new(100_000.0, 8)),
                ..ServingOptions::default()
            })
            .serve(&requests);
        assert_eq!(batched.dispositions().completed, 24);
        assert!(
            batched.makespan_ns <= solo.makespan_ns * 1.001,
            "batched {} ns vs solo {} ns",
            batched.makespan_ns,
            solo.makespan_ns
        );
        assert!(batched.mean_batch_size() > 1.0);
    }

    #[test]
    fn tenant_quota_isolates_a_flooding_tenant() {
        let engine = engine();
        let cluster = local_cluster(&engine);
        let telemetry = mikpoly_telemetry::Telemetry::enabled();
        let runtime = ServingRuntime::new(engine, cluster, 1)
            .with_telemetry(Arc::clone(&telemetry))
            .with_options(ServingOptions {
                queue_capacity: Some(8),
                tenancy: Some(TenantPolicy::new(vec![
                    TenantQuota::new(1, 2),
                    TenantQuota::new(2, 8).with_weight(2.0),
                ])),
                ..ServingOptions::default()
            });
        let op = || Operator::gemm(GemmShape::new(256, 256, 256));
        // Tenant 1 floods 12 simultaneous requests; tenant 2 sends 4
        // well-spaced ones afterward. The flood saturates its own
        // 2-waiting-slot quota, not the global queue, so every tenant-2
        // request is served.
        let mut requests: Vec<Request> = (0..12)
            .map(|i| Request::single(i, 0.0, op()).with_tenant(1))
            .collect();
        for i in 0..4 {
            requests.push(Request::single(12 + i, 1e9 + i as f64 * 1e9, op()).with_tenant(2));
        }
        let report = runtime.serve(&requests);
        let throttled = report
            .records
            .iter()
            .filter(|r| r.shed_reason == Some(ShedReason::TenantThrottled))
            .count();
        assert_eq!(throttled, 9, "flood beyond the quota is throttled");
        let tenants = report.tenant_stats();
        let t1 = tenants.iter().find(|t| t.tenant == 1).unwrap();
        let t2 = tenants.iter().find(|t| t.tenant == 2).unwrap();
        assert_eq!(t1.dispositions.served(), 3, "{t1:?}");
        assert_eq!(
            t2.dispositions.served(),
            4,
            "victim tenant fully served: {t2:?}"
        );
        assert_eq!(t2.dispositions.shed, 0);
        // Per-tenant counters are live once a policy is configured, and
        // throttled chains land in the flight recorder with their tenant.
        let snap = telemetry.registry().snapshot();
        assert_eq!(snap.counter("serving.tenant.1.requests"), Some(12));
        assert_eq!(snap.counter("serving.tenant.2.requests"), Some(4));
        assert_eq!(snap.counter("serving.tenant.2.served"), Some(4));
        assert_eq!(snap.counter("serving.tenant.1.shed"), Some(9));
        let shed_id = report
            .records
            .iter()
            .find(|r| r.shed_reason == Some(ShedReason::TenantThrottled))
            .unwrap()
            .id;
        let chain = telemetry.recorder().find(shed_id as u64).unwrap();
        assert_eq!(chain.chain.tenant, 1);
        assert_eq!(chain.chain.error.as_deref(), Some("tenant-throttled"));
    }
}
