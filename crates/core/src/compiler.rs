//! The `MikPoly` facade: two-stage compilation end to end.
//!
//! Fault tolerance: [`MikPoly::try_compile`] is the budgeted, fallible
//! entry point — it honors a per-request compile deadline (falling back to
//! the degraded single-kernel plan when the search cannot finish in time),
//! validates cache entries when a [`FaultPlan`] is active (evicting and
//! recompiling poisoned entries), and reports every failure as a typed
//! [`MikPolyError`]. The infallible [`MikPoly::compile`] / [`MikPoly::run`]
//! remain for deadline-free, fault-free callers.

// Online hot path: failures must surface as typed errors, not panics.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use accel_sim::{FaultPlan, Launch, MachineModel, SimReport, TimingMode};
use mikpoly_telemetry::{span, Clock, Telemetry};
use tensor_ir::Operator;

use crate::cache::{CacheOutcome, CacheStats, ShardedCache};
use crate::cost::CostModelKind;
use crate::error::MikPolyError;
use crate::offline::{MicroKernelLibrary, OfflineOptions};
use crate::pattern::{default_patterns, Pattern};
use crate::plan::{CompiledProgram, Region};
use crate::search::{polymerize_degraded, try_polymerize_traced, SearchPolicy};

/// Options of the online (polymerization) stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineOptions {
    /// Cost model driving strategy selection.
    pub cost_model: CostModelKind,
    /// Pattern set; `None` selects the machine default (I–II on GPUs,
    /// I–IX on NPUs).
    pub patterns: Option<Vec<Pattern>>,
    /// Branch-and-bound pruning of the strategy space (Algorithm 1's
    /// heuristic). Disable only for overhead ablations.
    pub prune: bool,
    /// Cache compiled programs by operator (repeated shapes in model
    /// inference compile once).
    pub cache: bool,
    /// Enable the split-K post-pass (extension; off by default so the
    /// reproduction matches the paper's pattern set).
    pub split_k: bool,
    /// Bound on the number of cached compiled programs; `None` (the
    /// default) keeps every program. With a bound, a segmented-LRU policy
    /// evicts unreferenced programs in insertion order while shapes that
    /// were hit while resident are promoted and survive churn — a
    /// deployment knob for serving fleets whose shape universe outgrows
    /// memory.
    #[serde(default)]
    pub cache_capacity: Option<usize>,
    /// Knobs of the staged polymerization search (shortlist size, node
    /// budget, prune margin, selection refinement, escalation). One policy
    /// flows to the compiler, the serving runtime, the conformance gate,
    /// and the bench ablations alike.
    #[serde(default)]
    pub search: SearchPolicy,
}

impl Default for OnlineOptions {
    fn default() -> Self {
        Self {
            cost_model: CostModelKind::Full,
            patterns: None,
            prune: true,
            cache: true,
            split_k: false,
            cache_capacity: None,
            search: SearchPolicy::default(),
        }
    }
}

/// Per-request constraints on one online compilation.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileBudget {
    /// Hard wall-clock deadline for the compile. The search itself aborts
    /// at a *soft* deadline (80% of the remaining time) so the degraded
    /// fallback still fits inside the hard one.
    pub deadline: Option<Instant>,
    /// Skip the full search entirely and take the degraded path — the
    /// circuit breaker's open-state routing.
    pub degrade_only: bool,
}

impl CompileBudget {
    /// A budget of `limit` from now, full path allowed.
    pub fn within(limit: Duration) -> Self {
        Self {
            deadline: Some(Instant::now() + limit),
            degrade_only: false,
        }
    }
}

/// Which rung of the degradation ladder produced a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileGrade {
    /// The full staged search ran to its normal termination.
    Full,
    /// The deadline cut the search (incumbent returned), or the degraded
    /// single-kernel fallback ran. The program is numerically identical to
    /// a full-grade one — only its predicted performance may be worse.
    Degraded,
}

/// Outcome of one budgeted compilation.
#[derive(Debug, Clone)]
pub struct CompileReply {
    /// The compiled program (always coverage-complete).
    pub program: Arc<CompiledProgram>,
    /// How the program cache answered.
    pub outcome: CacheOutcome,
    /// Which rung of the degradation ladder answered.
    pub grade: CompileGrade,
    /// Poisoned cache entries evicted and recompiled on the way (only
    /// non-zero under an active fault plan).
    pub poison_retries: u32,
}

/// One operator execution: the compiled program, the device timing, and the
/// online compilation overhead MikPoly paid for it.
#[derive(Debug, Clone)]
pub struct OperatorRun {
    /// The program that ran.
    pub program: Arc<CompiledProgram>,
    /// Simulated device timing.
    pub report: SimReport,
    /// Online polymerization time for this call (0 on a cache hit).
    pub compile_ns: u128,
    /// How the program cache answered this call: `compile_ns` is fresh
    /// polymerization work on `Computed` but a coalesced wait on another
    /// thread's flight on `Waited`.
    pub outcome: CacheOutcome,
    /// Which rung of the degradation ladder compiled the program.
    pub grade: CompileGrade,
}

impl OperatorRun {
    /// End-to-end latency: device time plus the polymerization overhead, as
    /// the paper reports for MikPoly ("the end-to-end model inference
    /// latency for MikPoly encompasses both the operator execution time ...
    /// and the runtime overhead attributed to MikPoly's cost model").
    pub fn total_ns(&self) -> f64 {
        self.report.time_ns + self.compile_ns as f64
    }
}

/// Result of an Oracle search (exhaustive simulation, Fig. 12(b)).
#[derive(Debug, Clone)]
pub struct OracleResult {
    /// The best program found.
    pub program: CompiledProgram,
    /// Number of candidate strategies simulated.
    pub candidates: usize,
    /// Whether the enumeration hit the candidate cap before exhausting
    /// the strategy space (always `false` for [`MikPoly::compile_oracle`]).
    pub truncated: bool,
    /// Wall-clock time the exhaustive search took.
    pub search: std::time::Duration,
}

/// The MikPoly dynamic-shape tensor compiler.
///
/// Construction runs (or receives) the offline stage; [`MikPoly::compile`]
/// performs on-the-fly micro-kernel polymerization for a runtime shape;
/// [`MikPoly::run`] also executes the program on the simulated device.
///
/// # Example
///
/// ```
/// use accel_sim::MachineModel;
/// use mikpoly::{MikPoly, OfflineOptions};
/// use tensor_ir::{GemmShape, Operator};
///
/// let mut options = OfflineOptions::fast();
/// options.n_gen = 4; // tiny library for the example
/// let compiler = MikPoly::offline(MachineModel::a100(), &options);
/// let run = compiler.run(&Operator::gemm(GemmShape::new(1234, 512, 768)));
/// assert!(run.report.time_ns > 0.0);
/// assert!(run.program.verify_coverage().is_ok());
/// ```
#[derive(Debug)]
pub struct MikPoly {
    machine: MachineModel,
    library: Arc<MicroKernelLibrary>,
    options: OnlineOptions,
    cache: ShardedCache<Operator, CompiledProgram>,
    /// Programs from the degraded fallback path, cached separately: a
    /// degraded plan must never shadow (or be shadowed by) the full
    /// search's plan for the same shape.
    degraded: ShardedCache<Operator, CompiledProgram>,
    /// Deterministic fault-injection schedule; `None` (production) makes
    /// every fault hook a no-op.
    fault_plan: RwLock<Option<Arc<FaultPlan>>>,
    /// Per-shape compile-attempt counters driving the fault schedule's
    /// `attempt` dimension (transient faults clear on retry).
    fault_attempts: Mutex<HashMap<u64, u32>>,
    telemetry: Arc<Telemetry>,
}

/// The stable per-shape key used by the fault plan, the circuit breaker,
/// and the attempt counters.
pub fn shape_key(operator: &Operator) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    operator.hash(&mut hasher);
    hasher.finish()
}

impl MikPoly {
    /// Runs the offline stage on `machine` and wraps the result.
    pub fn offline(machine: MachineModel, offline: &OfflineOptions) -> Self {
        Self::offline_with_telemetry(machine, offline, Telemetry::disabled())
    }

    /// Like [`MikPoly::offline`], but the offline tuning and every later
    /// online compilation record spans and metrics into `telemetry`.
    pub fn offline_with_telemetry(
        machine: MachineModel,
        offline: &OfflineOptions,
        telemetry: Arc<Telemetry>,
    ) -> Self {
        let library = MicroKernelLibrary::generate_with_telemetry(&machine, offline, &telemetry);
        Self::with_library(machine, library).with_telemetry(telemetry)
    }

    /// Uses a pre-generated (e.g. cached-on-disk) micro-kernel library.
    pub fn with_library(machine: MachineModel, library: MicroKernelLibrary) -> Self {
        Self {
            machine,
            library: Arc::new(library),
            options: OnlineOptions::default(),
            cache: ShardedCache::new(),
            degraded: ShardedCache::new(),
            fault_plan: RwLock::new(None),
            fault_attempts: Mutex::new(HashMap::new()),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Replaces the online options (builder style). Clears the program
    /// cache.
    #[must_use]
    pub fn with_options(mut self, options: OnlineOptions) -> Self {
        self.cache = match options.cache_capacity {
            Some(capacity) => ShardedCache::bounded(capacity),
            None => ShardedCache::new(),
        };
        self.degraded = ShardedCache::new();
        self.options = options;
        self
    }

    /// Installs (or clears, with `None`) the deterministic fault-injection
    /// schedule. Clears the per-shape attempt counters so a fresh plan
    /// replays its schedule from attempt zero.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.fault_plan.write() = plan;
        self.fault_attempts.lock().clear();
    }

    /// The active fault-injection schedule, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault_plan.read().clone()
    }

    /// Returns the current compile-attempt number for `key` and advances
    /// the counter (0-based; the fault schedule is indexed by attempt).
    fn next_attempt(&self, key: u64) -> u32 {
        let mut attempts = self.fault_attempts.lock();
        let slot = attempts.entry(key).or_insert(0);
        let current = *slot;
        *slot += 1;
        current
    }

    /// Attaches a telemetry handle (builder style): online compilations
    /// record `online.compile` / `online.search` spans and the
    /// `search.*` / `online.*` metrics into it.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        if telemetry.is_enabled() {
            let registry = telemetry.registry();
            for (name, help) in [
                (
                    "online.compile_ns",
                    "real wall-clock per fresh polymerization",
                ),
                (
                    "cache.wait_ns",
                    "real wall-clock spent coalesced behind an in-flight compile",
                ),
                (
                    "compile.degraded",
                    "requests answered by the degraded compile path",
                ),
                ("cache.poisoned", "poisoned cache entries retried past"),
                ("oracle.searches", "exhaustive oracle searches run"),
                (
                    "oracle.candidates",
                    "candidate strategies the oracle simulated",
                ),
                (
                    "oracle.truncated",
                    "oracle searches cut short by the candidate cap",
                ),
            ] {
                registry.describe(name, help);
            }
        }
        self.telemetry = telemetry;
        self
    }

    /// The telemetry handle this compiler records into (the shared no-op
    /// handle unless one was attached).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The machine this compiler targets.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// The offline micro-kernel library.
    pub fn library(&self) -> &MicroKernelLibrary {
        &self.library
    }

    /// The active online options.
    pub fn options(&self) -> &OnlineOptions {
        &self.options
    }

    fn patterns(&self) -> Vec<Pattern> {
        self.options
            .patterns
            .clone()
            .unwrap_or_else(|| default_patterns(&self.machine))
    }

    /// On-the-fly polymerization for a runtime shape (Algorithm 1, lines
    /// 7–15). Cached per operator when [`OnlineOptions::cache`] is set.
    pub fn compile(&self, operator: &Operator) -> Arc<CompiledProgram> {
        self.compile_with_outcome(operator).0
    }

    /// Like [`MikPoly::compile`], but also reports how the cache answered:
    /// a hit, a fresh polymerization, or a wait coalesced onto another
    /// thread's in-flight polymerization of the same shape. Concurrent
    /// misses on one operator compile exactly once (single flight).
    pub fn compile_with_outcome(
        &self,
        operator: &Operator,
    ) -> (Arc<CompiledProgram>, CacheOutcome) {
        match self.try_compile(operator, CompileBudget::default()) {
            Ok(reply) => (reply.program, reply.outcome),
            // With no deadline and no fault plan every failure is the
            // logic bug the infallible contract documents as a panic.
            Err(err) => panic!("infallible compilation failed: {err}"),
        }
    }

    /// Budgeted, fallible compilation — the serving runtime's entry point.
    ///
    /// The degradation ladder, top to bottom:
    ///
    /// 1. full staged search (possibly cut at the deadline, returning the
    ///    incumbent — still [`CompileGrade::Degraded`] for *this* request,
    ///    though the cached program serves later hits at full grade);
    /// 2. the search-free single-kernel fallback, when the deadline left
    ///    no room for any search or `degrade_only` routed here directly.
    ///
    /// Under an active [`FaultPlan`], returned programs are validated and
    /// poisoned cache entries are evicted ([`CacheStats::invalidations`])
    /// and recompiled, bounded by an internal retry cap.
    ///
    /// # Errors
    ///
    /// [`MikPolyError::NoFeasibleStrategy`] when the library has no usable
    /// kernel, [`MikPolyError::CachePoisoned`] when recompiles keep
    /// producing invalid programs. A deadline that cuts even the fallback
    /// is *not* an error: the fallback is search-free, so it always
    /// completes. Injected compile panics propagate as panics — isolation
    /// is the caller's `catch_unwind` at the worker boundary.
    pub fn try_compile(
        &self,
        operator: &Operator,
        budget: CompileBudget,
    ) -> Result<CompileReply, MikPolyError> {
        if budget.degrade_only {
            return self.degraded_reply(operator, 0);
        }
        match self.try_compile_full(operator, budget.deadline) {
            Ok(reply) => Ok(reply),
            // The search ran out of time before costing any strategy:
            // drop to the bottom rung.
            Err(MikPolyError::DeadlineExceeded { .. }) => self.degraded_reply(operator, 0),
            Err(other) => Err(other),
        }
    }

    /// The full-search rung: cached, single-flight, deadline-aware, with
    /// poisoned-entry validation under an active fault plan.
    fn try_compile_full(
        &self,
        operator: &Operator,
        deadline: Option<Instant>,
    ) -> Result<CompileReply, MikPolyError> {
        // Validation is only meaningful when faults can corrupt programs;
        // clean builds skip the coverage re-check on every hit.
        let validate = self.fault_plan().is_some_and(|p| p.is_active());
        const MAX_POISON_RETRIES: u32 = 2;
        let mut poison_retries = 0u32;
        loop {
            let deadline_cut = Cell::new(false);
            let attempt = if self.options.cache {
                self.cache.try_get_or_compute(operator, || {
                    self.try_compile_uncached(operator, deadline, &deadline_cut)
                })
            } else {
                self.try_compile_uncached(operator, deadline, &deadline_cut)
                    .map(|p| (Arc::new(p), CacheOutcome::Computed))
            };
            let (program, outcome) = attempt?;
            if validate && program.verify_coverage().is_err() {
                // Poisoned entry: evict and recompile. The fault schedule
                // corrupts only a shape's first compile, so the retry
                // normally comes back clean; the cap bounds the pathological
                // always-corrupt schedule.
                self.cache.remove(operator);
                poison_retries += 1;
                if poison_retries > MAX_POISON_RETRIES {
                    return Err(MikPolyError::CachePoisoned {
                        operator: *operator,
                        attempts: poison_retries,
                    });
                }
                continue;
            }
            let grade = if deadline_cut.get() {
                CompileGrade::Degraded
            } else {
                CompileGrade::Full
            };
            return Ok(CompileReply {
                program,
                outcome,
                grade,
                poison_retries,
            });
        }
    }

    /// The bottom rung: the search-free single-kernel plan, cached in the
    /// dedicated degraded cache.
    fn degraded_reply(
        &self,
        operator: &Operator,
        poison_retries: u32,
    ) -> Result<CompileReply, MikPolyError> {
        let (program, outcome) = self.degraded.try_get_or_compute(operator, || {
            polymerize_degraded(
                &self.machine,
                &self.library,
                &operator.gemm_view(),
                *operator,
            )
        })?;
        Ok(CompileReply {
            program,
            outcome,
            grade: CompileGrade::Degraded,
            poison_retries,
        })
    }

    /// Counter snapshot of the program cache (hits, polymerizations,
    /// coalesced waits, …).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Compiles a batch of operators, in parallel across OS threads, and
    /// warms the program cache — ahead-of-time preparation for a known
    /// shape set (model warm-up, serving with a published shape menu).
    /// Returns the programs in input order; duplicates compile once.
    pub fn compile_many(&self, operators: &[Operator]) -> Vec<Arc<CompiledProgram>> {
        // Deduplicate first so each worker thread gets distinct shapes;
        // single flight in the cache makes any residual overlap (a shape
        // another thread is already compiling) coalesce rather than race.
        let mut unique: Vec<Operator> = Vec::new();
        {
            let mut seen = std::collections::HashSet::new();
            for op in operators {
                if seen.insert(*op) {
                    unique.push(*op);
                }
            }
        }
        let threads = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(16);
        let chunk = unique.len().div_ceil(threads).max(1);
        let compiled: std::collections::HashMap<Operator, Arc<CompiledProgram>> =
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for part in unique.chunks(chunk) {
                    handles.push(scope.spawn(move || {
                        part.iter()
                            .map(|op| (*op, self.compile(op)))
                            .collect::<Vec<_>>()
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| match h.join() {
                        Ok(pairs) => pairs,
                        // `compile` takes no budget and no faults reach
                        // this path, so a panic here is a logic bug —
                        // resume the unwind rather than mask it.
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            });
        operators
            .iter()
            .map(|op| Arc::clone(&compiled[op]))
            .collect()
    }

    /// Persists every cached compiled program to a binary bundle — an
    /// ahead-of-time bundle for deployments with a known shape menu
    /// (compile once with [`MikPoly::compile_many`], ship the bundle,
    /// [`MikPoly::load_program_cache`] at startup). The format is the
    /// length-prefixed record layout of [`crate::persist`]
    /// (magic `MPAC`, versioned); [`MikPoly::save_program_cache_json`]
    /// still writes the legacy JSON format, and
    /// [`MikPoly::load_program_cache`] reads both.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn save_program_cache(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        // The write goes through the temp-file + fsync + rename protocol,
        // so a crash mid-save can never tear the bundle under `path`.
        crate::persist::write_bytes_atomic(path.as_ref(), &self.encode_program_cache())
    }

    /// Serializes the current program cache as a checksummed binary
    /// bundle in memory — the byte image [`MikPoly::save_program_cache`]
    /// writes. Snapshots Arc clones shard by shard, so concurrent
    /// compiles proceed during encoding (no cache lock is held).
    pub fn encode_program_cache(&self) -> Vec<u8> {
        let programs: Vec<Arc<CompiledProgram>> = self.cache.snapshot();
        crate::persist::encode_bundle(programs.iter().map(|p| &**p))
    }

    /// Persists the program cache in the legacy (version 1) JSON format —
    /// for tooling that still parses bundles as JSON. New deployments
    /// should prefer [`MikPoly::save_program_cache`]: the binary format
    /// loads an order of magnitude faster.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from serializing or writing the file.
    pub fn save_program_cache_json(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<()> {
        let programs: Vec<Arc<CompiledProgram>> = self.cache.snapshot();
        let refs: Vec<&CompiledProgram> = programs.iter().map(|p| &**p).collect();
        let json = serde_json::to_string(&refs).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads an ahead-of-time program bundle into the cache. The format is
    /// sniffed from the first bytes: the `MPAC` magic routes to the binary
    /// decoder, a leading `[` to the legacy JSON decoder, so bundles saved
    /// by any prior version keep loading. Programs whose kernels are not
    /// in this compiler's library are rejected (a bundle from a different
    /// machine or library version), and the batch is inserted through the
    /// cache's bulk path — one snapshot republish per shard, which is what
    /// keeps restart-to-warm fast for large bundles.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be read or parsed, or an
    /// [`std::io::ErrorKind::InvalidData`] error if the format is
    /// unrecognized or a program references unknown kernels.
    pub fn load_program_cache(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
        let bytes = std::fs::read(path)?;
        self.load_program_cache_bytes(&bytes)
    }

    /// The in-memory half of [`MikPoly::load_program_cache`]: sniffs,
    /// decodes, validates, and bulk-inserts a bundle already read into
    /// memory. The recovery path uses this directly so a strict failure
    /// can fall back to salvage without re-reading the file.
    ///
    /// # Errors
    ///
    /// As [`MikPoly::load_program_cache`], minus the file read.
    pub fn load_program_cache_bytes(&self, bytes: &[u8]) -> std::io::Result<usize> {
        let programs: Vec<CompiledProgram> = if crate::persist::is_binary_bundle(bytes) {
            crate::persist::decode_bundle(bytes)?
        } else if crate::persist::is_legacy_json_bundle(bytes) {
            // The vendored JSON parser is superlinear in input size; a
            // huge (or hostile) legacy file must not wedge startup.
            if bytes.len() > crate::persist::LEGACY_JSON_MAX_BYTES {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "legacy JSON bundle is {} bytes, over the {} byte parse cap — \
                         re-save it in the binary format (see docs/cache.md)",
                        bytes.len(),
                        crate::persist::LEGACY_JSON_MAX_BYTES
                    ),
                ));
            }
            eprintln!(
                "mikpoly: loading a legacy JSON bundle ({} bytes); \
                 re-save in the binary format for checksums and fast loads",
                bytes.len()
            );
            let json = std::str::from_utf8(bytes)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            serde_json::from_str(json).map_err(std::io::Error::other)?
        } else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "not a program bundle: neither MPAC binary nor legacy JSON",
            ));
        };
        for p in &programs {
            self.validate_restored_program(p)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        }
        let count = programs.len();
        // Validation done; the bulk insert republishes each shard once.
        self.cache
            .insert_many(programs.into_iter().map(|p| (p.operator, Arc::new(p))));
        Ok(count)
    }

    /// Checks that a restored program's kernels all exist in this
    /// compiler's library — the guard against adopting a bundle from a
    /// different machine or library version.
    pub(crate) fn validate_restored_program(&self, p: &CompiledProgram) -> Result<(), String> {
        for r in &p.regions {
            if self.library.get(r.kernel.id).map(|t| t.kernel) != Some(r.kernel) {
                return Err(format!(
                    "program for {} references {} absent from this library",
                    p.operator, r.kernel
                ));
            }
        }
        Ok(())
    }

    /// Bulk-inserts already-validated restored programs through the
    /// cache's one-republish-per-shard path. Used by the salvage loader.
    pub(crate) fn adopt_restored_programs(&self, programs: Vec<CompiledProgram>) -> usize {
        let count = programs.len();
        self.cache
            .insert_many(programs.into_iter().map(|p| (p.operator, Arc::new(p))));
        count
    }

    /// One fresh polymerization with the fault hooks applied, in schedule
    /// order: injected panic → injected search stall → deadline-aware
    /// search → injected program corruption. `deadline_cut` reports (via
    /// the captured cell — the closure runs inside the cache's single
    /// flight, so a plain return channel is unavailable) whether the
    /// deadline cut the search for *this* computation.
    fn try_compile_uncached(
        &self,
        operator: &Operator,
        deadline: Option<Instant>,
        deadline_cut: &Cell<bool>,
    ) -> Result<CompiledProgram, MikPolyError> {
        let plan = self.fault_plan();
        let key = shape_key(operator);
        let attempt = match plan.as_ref() {
            Some(p) if p.is_active() => self.next_attempt(key),
            _ => 0,
        };
        if let Some(plan) = plan.as_ref() {
            if plan.compile_panics(key, attempt) {
                panic!("injected compile fault for {operator}");
            }
            if let Some(stall_ns) = plan.search_stall(key) {
                self.stall(operator, stall_ns, deadline)?;
            }
        }
        let view = operator.gemm_view();
        let soft = deadline.map(soft_deadline);
        let run = try_polymerize_traced(
            &self.machine,
            &self.library,
            &view,
            *operator,
            &self.patterns(),
            self.options.cost_model,
            self.options.prune,
            &self.options.search,
            soft,
            &self.telemetry,
        )?;
        deadline_cut.set(run.deadline_cut);
        let mut program = run.program;
        if self.options.split_k
            && self.options.cost_model == CostModelKind::Full
            && !run.deadline_cut
        {
            program =
                crate::search::improve_with_split_k(&self.machine, &self.library, &view, program);
        }
        if plan
            .as_ref()
            .is_some_and(|p| p.corrupts_program(key, attempt))
        {
            // Drop a region so `verify_coverage` fails: the poisoned
            // program is structurally plausible but provably incomplete.
            program.regions.pop();
        }
        Ok(program)
    }

    /// Sleeps out an injected search stall, honoring the deadline: a stall
    /// that cannot finish before the *soft* deadline burns only the time
    /// up to it and reports [`MikPolyError::DeadlineExceeded`] so the
    /// caller can still fall back within the hard deadline.
    fn stall(
        &self,
        operator: &Operator,
        stall_ns: u64,
        deadline: Option<Instant>,
    ) -> Result<(), MikPolyError> {
        let stall = Duration::from_nanos(stall_ns);
        match deadline {
            None => {
                std::thread::sleep(stall);
                Ok(())
            }
            Some(hard) => {
                let soft = soft_deadline(hard);
                let now = Instant::now();
                if now + stall < soft {
                    std::thread::sleep(stall);
                    Ok(())
                } else {
                    std::thread::sleep(soft.saturating_duration_since(now));
                    Err(MikPolyError::DeadlineExceeded {
                        operator: *operator,
                    })
                }
            }
        }
    }

    /// The device launch for a compiled program, with static placement
    /// (via the library's performance models and the max-min allocator) on
    /// machines that require it.
    pub fn launch_for(&self, program: &CompiledProgram) -> Launch {
        match self.machine.allocation {
            accel_sim::AllocationPolicy::DynamicHardware => program.launch_dynamic(),
            accel_sim::AllocationPolicy::StaticCompilerAssigned => {
                let k = program.view.shape.k;
                let durations: Vec<f64> = program
                    .regions
                    .iter()
                    .map(|r| self.predict_task_ns(r, k))
                    .collect();
                program.launch_static(&self.machine, &durations)
            }
        }
    }

    fn predict_task_ns(&self, region: &Region, k: usize) -> f64 {
        self.library
            .get(region.kernel.id)
            .map(|t| t.perf.predict(region.instances(k)))
            .unwrap_or_else(|| {
                accel_sim::pipelined_task_ns(
                    &self.machine,
                    &region
                        .kernel
                        .task_spec(&region_view(region), region.instances(k)),
                )
            })
    }

    /// Simulates a compiled program on the target (noise-free evaluation
    /// mode), including the split-K reduction pass when present.
    ///
    /// # Panics
    ///
    /// Panics when the program's launch is malformed; the serving path
    /// goes through [`MikPoly::try_simulate`] instead.
    pub fn simulate(&self, program: &CompiledProgram) -> SimReport {
        self.try_simulate(program).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`MikPoly::simulate`]: a launch the simulator
    /// rejects surfaces as [`MikPolyError::MalformedLaunch`] so a bad
    /// program reaching a serving worker is a disposition, not a crash.
    ///
    /// # Errors
    ///
    /// [`MikPolyError::MalformedLaunch`] carrying the simulator's typed
    /// rejection.
    pub fn try_simulate(&self, program: &CompiledProgram) -> Result<SimReport, MikPolyError> {
        match program.reduction_launch() {
            None => accel_sim::try_simulate(
                &self.machine,
                &self.launch_for(program),
                TimingMode::Evaluate,
            ),
            Some(reduction) => accel_sim::try_simulate_launches(
                &self.machine,
                &[self.launch_for(program), reduction],
                TimingMode::Evaluate,
            ),
        }
        .map_err(|source| MikPolyError::MalformedLaunch { source })
    }

    /// Compiles and simulates an operator in one call.
    pub fn run(&self, operator: &Operator) -> OperatorRun {
        match self.try_run(operator, CompileBudget::default()) {
            Ok(run) => run,
            // With no deadline and no fault plan every failure is the
            // logic bug the infallible contract documents as a panic.
            Err(err) => panic!("infallible run failed: {err}"),
        }
    }

    /// Budgeted compile-and-simulate: [`MikPoly::try_compile`] followed by
    /// device simulation, with the `online.compile` span, the
    /// `online.compile_ns` / `cache.wait_ns` histograms, and the
    /// `compile.degraded` / `cache.poisoned` fault counters recorded.
    ///
    /// # Errors
    ///
    /// Those of [`MikPoly::try_compile`], plus
    /// [`MikPolyError::MalformedLaunch`] when the compiled program's
    /// device launch is rejected by the simulator.
    pub fn try_run(
        &self,
        operator: &Operator,
        budget: CompileBudget,
    ) -> Result<OperatorRun, MikPolyError> {
        let start = Instant::now();
        let reply = {
            let mut span = span!(self.telemetry, "online.compile", op = operator.to_string());
            let reply = self.try_compile(operator, budget)?;
            span.arg(
                "outcome",
                match reply.outcome {
                    CacheOutcome::Hit => "hit",
                    CacheOutcome::Computed => "computed",
                    CacheOutcome::Waited => "waited",
                },
            );
            if reply.grade == CompileGrade::Degraded {
                span.arg("grade", "degraded");
            }
            reply
        };
        let compile_ns = match reply.outcome {
            CacheOutcome::Hit => 0,
            // Both a fresh polymerization and a coalesced wait spend real
            // wall-clock on the request path.
            CacheOutcome::Computed | CacheOutcome::Waited => start.elapsed().as_nanos(),
        };
        if self.telemetry.is_enabled() {
            let registry = self.telemetry.registry();
            let clamped = compile_ns.min(u128::from(u64::MAX)) as u64;
            match reply.outcome {
                CacheOutcome::Hit => {}
                CacheOutcome::Computed => registry
                    .histogram("online.compile_ns", Clock::Real)
                    .record(clamped),
                CacheOutcome::Waited => registry
                    .histogram("cache.wait_ns", Clock::Real)
                    .record(clamped),
            }
            if reply.grade == CompileGrade::Degraded {
                registry.counter("compile.degraded").inc();
            }
            if reply.poison_retries > 0 {
                registry
                    .counter("cache.poisoned")
                    .add(u64::from(reply.poison_retries));
            }
        }
        let report = self.try_simulate(&reply.program)?;
        Ok(OperatorRun {
            program: reply.program,
            report,
            compile_ns,
            outcome: reply.outcome,
            grade: reply.grade,
        })
    }

    /// The Oracle of Fig. 12(b): exhaustively simulates every strategy and
    /// returns the truly best program, together with how expensive that
    /// was. `MikPoly-Oracle` "takes about 1.6 seconds to find the best
    /// polymerization solution, whereas MikPoly accomplishes the same task
    /// in just about 2 microseconds".
    pub fn compile_oracle(&self, operator: &Operator) -> OracleResult {
        self.compile_oracle_capped(operator, usize::MAX)
    }

    /// Like [`MikPoly::compile_oracle`], but the enumeration visits at
    /// most `cap` candidate descents — the conformance subsystem's bounded
    /// oracle. Kernels are ranked, so a truncated search still simulates
    /// the plausible candidates first; `truncated` reports whether the cap
    /// cut the space. When telemetry is attached, records the
    /// `oracle.searches` / `oracle.candidates` / `oracle.truncated`
    /// counters.
    pub fn compile_oracle_capped(&self, operator: &Operator, cap: usize) -> OracleResult {
        let start = Instant::now();
        let view = operator.gemm_view();
        let mut candidates = 0usize;
        let mut best: Option<(f64, CompiledProgram)> = None;
        let truncated = crate::search::enumerate_strategies_capped(
            &self.machine,
            &self.library,
            &view,
            &self.patterns(),
            cap.max(1),
            |pattern, regions| {
                candidates += 1;
                let prog = CompiledProgram {
                    operator: *operator,
                    view,
                    pattern,
                    regions: regions.to_vec(),
                    split_k: 1,
                    predicted_ns: f64::NAN,
                    stats: Default::default(),
                };
                let ns = self.simulate(&prog).time_ns;
                if best.as_ref().is_none_or(|(b, _)| ns < *b) {
                    best = Some((ns, prog));
                }
            },
        );
        if self.telemetry.is_enabled() {
            let registry = self.telemetry.registry();
            registry.counter("oracle.searches").inc();
            registry.counter("oracle.candidates").add(candidates as u64);
            if truncated {
                registry.counter("oracle.truncated").inc();
            }
        }
        let Some((ns, mut program)) = best else {
            // `cap.max(1)` admits at least pattern I's first strategy.
            unreachable!("enumeration visits at least one strategy");
        };
        program.predicted_ns = ns;
        OracleResult {
            program,
            candidates,
            truncated,
            search: start.elapsed(),
        }
    }
}

/// The search's soft deadline: 80% of the time remaining to the hard
/// deadline, reserving the tail for the degraded fallback so the hard
/// deadline holds even when the search uses its whole allowance.
fn soft_deadline(hard: Instant) -> Instant {
    let now = Instant::now();
    match hard.checked_duration_since(now) {
        Some(remaining) => now + remaining.mul_f64(0.8),
        // Already past: the search gets no time at all.
        None => hard,
    }
}

fn region_view(region: &Region) -> tensor_ir::GemmView {
    tensor_ir::GemmView {
        shape: tensor_ir::GemmShape::new(region.rows().max(1), region.cols().max(1), 1),
        dtype: tensor_ir::DType::F16,
        load_scale: 1.0,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use tensor_ir::GemmShape;

    fn compiler() -> MikPoly {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        MikPoly::offline(MachineModel::a100(), &o)
    }

    #[test]
    fn run_produces_time_and_coverage() {
        let c = compiler();
        let run = c.run(&Operator::gemm(GemmShape::new(4096, 1024, 4096)));
        assert!(run.report.time_ns > 0.0);
        assert!(run.program.verify_coverage().is_ok());
        assert!(run.total_ns() >= run.report.time_ns);
    }

    #[test]
    fn cache_hits_skip_compilation() {
        let c = compiler();
        let op = Operator::gemm(GemmShape::new(777, 512, 256));
        let first = c.run(&op);
        let second = c.run(&op);
        assert!(first.compile_ns > 0);
        assert_eq!(second.compile_ns, 0);
        assert!(Arc::ptr_eq(&first.program, &second.program));
    }

    #[test]
    fn concurrent_compiles_coalesce_to_one_polymerization() {
        let c = compiler();
        let op = Operator::gemm(GemmShape::new(640, 320, 160));
        let programs: Vec<Arc<CompiledProgram>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8).map(|_| scope.spawn(|| c.compile(&op))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for p in &programs[1..] {
            assert!(Arc::ptr_eq(&programs[0], p));
        }
        let stats = c.cache_stats();
        assert_eq!(stats.computations, 1, "stampede: {stats:?}");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.coalesced_waits, 7);
    }

    #[test]
    fn disabling_cache_recompiles() {
        let c = compiler().with_options(OnlineOptions {
            cache: false,
            ..OnlineOptions::default()
        });
        let op = Operator::gemm(GemmShape::new(300, 300, 300));
        let a = c.run(&op);
        let b = c.run(&op);
        assert!(a.compile_ns > 0 && b.compile_ns > 0);
    }

    #[test]
    fn oracle_never_worse_than_cost_model_choice() {
        let c = compiler();
        let op = Operator::gemm(GemmShape::new(1090, 512, 512));
        let model_run = c.run(&op);
        let oracle = c.compile_oracle(&op);
        assert!(oracle.candidates >= 1);
        let oracle_ns = c.simulate(&oracle.program).time_ns;
        assert!(oracle_ns <= model_run.report.time_ns + 1e-6);
    }

    #[test]
    fn npu_compiler_uses_static_placement() {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        let c = MikPoly::offline(MachineModel::ascend910a(), &o);
        let run = c.run(&Operator::gemm(GemmShape::new(2048, 1024, 512)));
        assert!(run.report.time_ns > 0.0);
        // All nine patterns are in play on the NPU.
        assert_eq!(run.program.stats.patterns_tried, 9);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod fault_tests {
    use super::*;
    use tensor_ir::GemmShape;

    fn compiler() -> MikPoly {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        MikPoly::offline(MachineModel::a100(), &o)
    }

    #[test]
    fn degrade_only_budget_takes_the_fallback_path() {
        let c = compiler();
        let op = Operator::gemm(GemmShape::new(1024, 512, 256));
        let reply = c
            .try_compile(
                &op,
                CompileBudget {
                    deadline: None,
                    degrade_only: true,
                },
            )
            .expect("degraded path cannot fail on a generated library");
        assert_eq!(reply.grade, CompileGrade::Degraded);
        assert!(reply.program.stats.degraded);
        assert_eq!(reply.program.regions.len(), 1);
        reply.program.verify_coverage().expect("coverage");
        // The degraded cache is separate: a later full compile still
        // searches and the full program shadows nothing.
        let full = c
            .try_compile(&op, CompileBudget::default())
            .expect("full path");
        assert_eq!(full.grade, CompileGrade::Full);
        assert!(!full.program.stats.degraded);
        // And the degraded plan is now a hit in its own cache.
        let again = c
            .try_compile(
                &op,
                CompileBudget {
                    deadline: None,
                    degrade_only: true,
                },
            )
            .expect("degraded path");
        assert_eq!(again.outcome, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&again.program, &reply.program));
    }

    #[test]
    fn injected_compile_panic_fires_then_clears() {
        let c = compiler();
        let op = Operator::gemm(GemmShape::new(640, 320, 160));
        c.set_fault_plan(Some(Arc::new(FaultPlan {
            compile_panic_rate: 1.0,
            panic_attempts: 1,
            ..FaultPlan::none()
        })));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.try_compile(&op, CompileBudget::default())
        }));
        assert!(caught.is_err(), "attempt 0 must panic");
        // Attempt 1: the transient fault has cleared and (crucially) the
        // panicked flight did not wedge the cache.
        let reply = c
            .try_compile(&op, CompileBudget::default())
            .expect("attempt 1 compiles");
        assert_eq!(reply.grade, CompileGrade::Full);
        reply.program.verify_coverage().expect("coverage");
    }

    #[test]
    fn corrupted_cache_entry_is_evicted_and_recompiled() {
        let c = compiler();
        let op = Operator::gemm(GemmShape::new(777, 512, 256));
        c.set_fault_plan(Some(Arc::new(FaultPlan {
            cache_corrupt_rate: 1.0,
            ..FaultPlan::none()
        })));
        let reply = c
            .try_compile(&op, CompileBudget::default())
            .expect("poison retry must recover");
        assert!(reply.poison_retries > 0, "attempt 0 was corrupted");
        reply.program.verify_coverage().expect("recompile is clean");
        assert!(c.cache_stats().invalidations > 0);
        // Clearing the plan restores the fast path: no more validation.
        c.set_fault_plan(None);
        let hit = c.try_compile(&op, CompileBudget::default()).expect("hit");
        assert_eq!(hit.outcome, CacheOutcome::Hit);
        assert_eq!(hit.poison_retries, 0);
    }

    #[test]
    fn search_stall_degrades_within_the_deadline() {
        let c = compiler();
        let op = Operator::gemm(GemmShape::new(1111, 999, 512));
        // A 50 ms stall against a 5 ms budget: the full path cannot finish,
        // so the compile must degrade — and stay within the hard deadline.
        c.set_fault_plan(Some(Arc::new(FaultPlan {
            search_stall_rate: 1.0,
            search_stall_ns: 50_000_000,
            ..FaultPlan::none()
        })));
        let budget = Duration::from_millis(5);
        let start = Instant::now();
        let reply = c
            .try_compile(&op, CompileBudget::within(budget))
            .expect("must degrade, not fail");
        let elapsed = start.elapsed();
        assert_eq!(reply.grade, CompileGrade::Degraded);
        assert!(reply.program.stats.degraded, "fallback plan expected");
        reply.program.verify_coverage().expect("coverage");
        assert!(
            elapsed < budget + Duration::from_millis(20),
            "compile took {elapsed:?} against a {budget:?} budget"
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod aot_bundle_tests {
    use super::*;
    use tensor_ir::GemmShape;

    #[test]
    fn bundle_round_trips_and_restores_cache_hits() {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        let machine = MachineModel::a100();
        let a = MikPoly::offline(machine.clone(), &o);
        let ops: Vec<Operator> = [(64, 64, 64), (1000, 300, 200)]
            .into_iter()
            .map(|(m, n, k)| Operator::gemm(GemmShape::new(m, n, k)))
            .collect();
        a.compile_many(&ops);
        let path = std::env::temp_dir().join("mikpoly-aot-test.json");
        a.save_program_cache(&path).expect("save");

        let b = MikPoly::with_library(machine, a.library().clone());
        assert_eq!(b.load_program_cache(&path).expect("load"), 2);
        for op in &ops {
            let run = b.run(op);
            assert_eq!(run.compile_ns, 0, "bundle must pre-warm the cache");
            assert_eq!(run.program.regions, a.compile(op).regions);
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn legacy_json_bundle_still_loads() {
        // Bundles saved before the binary format existed start with `[`
        // (a serde_json array); the loader must keep reading them.
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        let machine = MachineModel::a100();
        let a = MikPoly::offline(machine.clone(), &o);
        let ops: Vec<Operator> = [(64, 64, 64), (320, 192, 128)]
            .into_iter()
            .map(|(m, n, k)| Operator::gemm(GemmShape::new(m, n, k)))
            .collect();
        a.compile_many(&ops);
        let path = std::env::temp_dir().join("mikpoly-aot-legacy.json");
        a.save_program_cache_json(&path).expect("save legacy");
        let raw = std::fs::read(&path).expect("read back");
        assert_eq!(raw.first(), Some(&b'['), "legacy format is a JSON array");

        let b = MikPoly::with_library(machine, a.library().clone());
        assert_eq!(b.load_program_cache(&path).expect("load legacy"), 2);
        for op in &ops {
            assert_eq!(b.run(op).compile_ns, 0, "legacy bundle pre-warms");
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn unrecognized_bundle_format_is_rejected() {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        let a = MikPoly::offline(MachineModel::a100(), &o);
        let path = std::env::temp_dir().join("mikpoly-aot-garbage.bin");
        std::fs::write(&path, b"not a bundle at all").expect("write");
        let err = a.load_program_cache(&path).expect_err("must reject");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bundle_from_foreign_library_is_rejected() {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        let a = MikPoly::offline(MachineModel::a100(), &o);
        let op = Operator::gemm(GemmShape::new(128, 128, 128));
        let _ = a.compile(&op);
        let path = std::env::temp_dir().join("mikpoly-aot-foreign.json");
        a.save_program_cache(&path).expect("save");

        // A different machine's library has different tuned kernels (NPU
        // kernels are single-warp), so the bundle must be rejected.
        let mut other_options = OfflineOptions::fast();
        other_options.n_gen = 4;
        let b = MikPoly::offline(MachineModel::ascend910a(), &other_options);
        let err = b.load_program_cache(&path).expect_err("must reject");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(path);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod compile_many_tests {
    use super::*;
    use tensor_ir::GemmShape;

    #[test]
    fn batch_compilation_matches_sequential() {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        let c = MikPoly::offline(MachineModel::a100(), &o);
        let ops: Vec<Operator> = [
            (100, 200, 50),
            (4096, 1024, 4096),
            (100, 200, 50),
            (7, 9, 11),
        ]
        .into_iter()
        .map(|(m, n, k)| Operator::gemm(GemmShape::new(m, n, k)))
        .collect();
        let batch = c.compile_many(&ops);
        assert_eq!(batch.len(), ops.len());
        // Duplicates share a program through the cache.
        assert!(Arc::ptr_eq(&batch[0], &batch[2]));
        // Results equal what sequential compilation would have produced.
        let fresh = MikPoly::with_library(c.machine().clone(), c.library().clone());
        for (op, program) in ops.iter().zip(&batch) {
            let seq = fresh.compile(op);
            assert_eq!(program.regions, seq.regions);
            assert_eq!(program.pattern, seq.pattern);
        }
        // Every shape is now a cache hit.
        for op in &ops {
            assert_eq!(c.run(op).compile_ns, 0);
        }
    }
}
