//! The `MikPoly` facade: two-stage compilation end to end.

use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use accel_sim::{simulate, Launch, MachineModel, SimReport, TimingMode};
use mikpoly_telemetry::{span, Clock, Telemetry};
use tensor_ir::Operator;

use crate::cache::{CacheOutcome, CacheStats, ShardedCache};
use crate::cost::CostModelKind;
use crate::offline::{MicroKernelLibrary, OfflineOptions};
use crate::pattern::{default_patterns, Pattern};
use crate::plan::{CompiledProgram, Region};
use crate::search::{polymerize_traced, SearchPolicy};

/// Options of the online (polymerization) stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineOptions {
    /// Cost model driving strategy selection.
    pub cost_model: CostModelKind,
    /// Pattern set; `None` selects the machine default (I–II on GPUs,
    /// I–IX on NPUs).
    pub patterns: Option<Vec<Pattern>>,
    /// Branch-and-bound pruning of the strategy space (Algorithm 1's
    /// heuristic). Disable only for overhead ablations.
    pub prune: bool,
    /// Cache compiled programs by operator (repeated shapes in model
    /// inference compile once).
    pub cache: bool,
    /// Enable the split-K post-pass (extension; off by default so the
    /// reproduction matches the paper's pattern set).
    pub split_k: bool,
    /// Bound on the number of cached compiled programs; `None` (the
    /// default) keeps every program. With a bound, the least recently
    /// inserted program is evicted first — a deployment knob for serving
    /// fleets whose shape universe outgrows memory.
    #[serde(default)]
    pub cache_capacity: Option<usize>,
    /// Knobs of the staged polymerization search (shortlist size, node
    /// budget, prune margin, selection refinement, escalation). One policy
    /// flows to the compiler, the serving runtime, the conformance gate,
    /// and the bench ablations alike.
    #[serde(default)]
    pub search: SearchPolicy,
}

impl Default for OnlineOptions {
    fn default() -> Self {
        Self {
            cost_model: CostModelKind::Full,
            patterns: None,
            prune: true,
            cache: true,
            split_k: false,
            cache_capacity: None,
            search: SearchPolicy::default(),
        }
    }
}

/// One operator execution: the compiled program, the device timing, and the
/// online compilation overhead MikPoly paid for it.
#[derive(Debug, Clone)]
pub struct OperatorRun {
    /// The program that ran.
    pub program: Arc<CompiledProgram>,
    /// Simulated device timing.
    pub report: SimReport,
    /// Online polymerization time for this call (0 on a cache hit).
    pub compile_ns: u128,
    /// How the program cache answered this call: `compile_ns` is fresh
    /// polymerization work on `Computed` but a coalesced wait on another
    /// thread's flight on `Waited`.
    pub outcome: CacheOutcome,
}

impl OperatorRun {
    /// End-to-end latency: device time plus the polymerization overhead, as
    /// the paper reports for MikPoly ("the end-to-end model inference
    /// latency for MikPoly encompasses both the operator execution time ...
    /// and the runtime overhead attributed to MikPoly's cost model").
    pub fn total_ns(&self) -> f64 {
        self.report.time_ns + self.compile_ns as f64
    }
}

/// Result of an Oracle search (exhaustive simulation, Fig. 12(b)).
#[derive(Debug, Clone)]
pub struct OracleResult {
    /// The best program found.
    pub program: CompiledProgram,
    /// Number of candidate strategies simulated.
    pub candidates: usize,
    /// Whether the enumeration hit the candidate cap before exhausting
    /// the strategy space (always `false` for [`MikPoly::compile_oracle`]).
    pub truncated: bool,
    /// Wall-clock time the exhaustive search took.
    pub search: std::time::Duration,
}

/// The MikPoly dynamic-shape tensor compiler.
///
/// Construction runs (or receives) the offline stage; [`MikPoly::compile`]
/// performs on-the-fly micro-kernel polymerization for a runtime shape;
/// [`MikPoly::run`] also executes the program on the simulated device.
///
/// # Example
///
/// ```
/// use accel_sim::MachineModel;
/// use mikpoly::{MikPoly, OfflineOptions};
/// use tensor_ir::{GemmShape, Operator};
///
/// let mut options = OfflineOptions::fast();
/// options.n_gen = 4; // tiny library for the example
/// let compiler = MikPoly::offline(MachineModel::a100(), &options);
/// let run = compiler.run(&Operator::gemm(GemmShape::new(1234, 512, 768)));
/// assert!(run.report.time_ns > 0.0);
/// assert!(run.program.verify_coverage().is_ok());
/// ```
#[derive(Debug)]
pub struct MikPoly {
    machine: MachineModel,
    library: Arc<MicroKernelLibrary>,
    options: OnlineOptions,
    cache: ShardedCache<Operator, CompiledProgram>,
    telemetry: Arc<Telemetry>,
}

impl MikPoly {
    /// Runs the offline stage on `machine` and wraps the result.
    pub fn offline(machine: MachineModel, offline: &OfflineOptions) -> Self {
        Self::offline_with_telemetry(machine, offline, Telemetry::disabled())
    }

    /// Like [`MikPoly::offline`], but the offline tuning and every later
    /// online compilation record spans and metrics into `telemetry`.
    pub fn offline_with_telemetry(
        machine: MachineModel,
        offline: &OfflineOptions,
        telemetry: Arc<Telemetry>,
    ) -> Self {
        let library = MicroKernelLibrary::generate_with_telemetry(&machine, offline, &telemetry);
        Self::with_library(machine, library).with_telemetry(telemetry)
    }

    /// Uses a pre-generated (e.g. cached-on-disk) micro-kernel library.
    pub fn with_library(machine: MachineModel, library: MicroKernelLibrary) -> Self {
        Self {
            machine,
            library: Arc::new(library),
            options: OnlineOptions::default(),
            cache: ShardedCache::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Replaces the online options (builder style). Clears the program
    /// cache.
    #[must_use]
    pub fn with_options(mut self, options: OnlineOptions) -> Self {
        self.cache = match options.cache_capacity {
            Some(capacity) => ShardedCache::bounded(capacity),
            None => ShardedCache::new(),
        };
        self.options = options;
        self
    }

    /// Attaches a telemetry handle (builder style): online compilations
    /// record `online.compile` / `online.search` spans and the
    /// `search.*` / `online.*` metrics into it.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The telemetry handle this compiler records into (the shared no-op
    /// handle unless one was attached).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The machine this compiler targets.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// The offline micro-kernel library.
    pub fn library(&self) -> &MicroKernelLibrary {
        &self.library
    }

    /// The active online options.
    pub fn options(&self) -> &OnlineOptions {
        &self.options
    }

    fn patterns(&self) -> Vec<Pattern> {
        self.options
            .patterns
            .clone()
            .unwrap_or_else(|| default_patterns(&self.machine))
    }

    /// On-the-fly polymerization for a runtime shape (Algorithm 1, lines
    /// 7–15). Cached per operator when [`OnlineOptions::cache`] is set.
    pub fn compile(&self, operator: &Operator) -> Arc<CompiledProgram> {
        self.compile_with_outcome(operator).0
    }

    /// Like [`MikPoly::compile`], but also reports how the cache answered:
    /// a hit, a fresh polymerization, or a wait coalesced onto another
    /// thread's in-flight polymerization of the same shape. Concurrent
    /// misses on one operator compile exactly once (single flight).
    pub fn compile_with_outcome(
        &self,
        operator: &Operator,
    ) -> (Arc<CompiledProgram>, CacheOutcome) {
        if !self.options.cache {
            return (
                Arc::new(self.compile_uncached(operator)),
                CacheOutcome::Computed,
            );
        }
        self.cache
            .get_or_compute(operator, || self.compile_uncached(operator))
    }

    /// Counter snapshot of the program cache (hits, polymerizations,
    /// coalesced waits, …).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Compiles a batch of operators, in parallel across OS threads, and
    /// warms the program cache — ahead-of-time preparation for a known
    /// shape set (model warm-up, serving with a published shape menu).
    /// Returns the programs in input order; duplicates compile once.
    pub fn compile_many(&self, operators: &[Operator]) -> Vec<Arc<CompiledProgram>> {
        // Deduplicate first so each worker thread gets distinct shapes;
        // single flight in the cache makes any residual overlap (a shape
        // another thread is already compiling) coalesce rather than race.
        let mut unique: Vec<Operator> = Vec::new();
        {
            let mut seen = std::collections::HashSet::new();
            for op in operators {
                if seen.insert(*op) {
                    unique.push(*op);
                }
            }
        }
        let threads = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(16);
        let chunk = unique.len().div_ceil(threads).max(1);
        let compiled: std::collections::HashMap<Operator, Arc<CompiledProgram>> =
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for part in unique.chunks(chunk) {
                    handles.push(scope.spawn(move || {
                        part.iter()
                            .map(|op| (*op, self.compile(op)))
                            .collect::<Vec<_>>()
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("compile thread panicked"))
                    .collect()
            });
        operators
            .iter()
            .map(|op| Arc::clone(&compiled[op]))
            .collect()
    }

    /// Persists every cached compiled program to a JSON file — an
    /// ahead-of-time bundle for deployments with a known shape menu
    /// (compile once with [`MikPoly::compile_many`], ship the bundle,
    /// [`MikPoly::load_program_cache`] at startup).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn save_program_cache(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        // Snapshot Arc clones shard by shard, then serialize and write with
        // no cache lock held — concurrent compiles proceed during the I/O.
        let programs: Vec<Arc<CompiledProgram>> = self.cache.snapshot();
        let refs: Vec<&CompiledProgram> = programs.iter().map(|p| &**p).collect();
        let json = serde_json::to_string(&refs).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads an ahead-of-time program bundle into the cache. Programs whose
    /// kernels are not in this compiler's library are rejected (a bundle
    /// from a different machine or library version).
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be read or parsed, or an
    /// [`std::io::ErrorKind::InvalidData`] error if a program references
    /// unknown kernels.
    pub fn load_program_cache(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
        let json = std::fs::read_to_string(path)?;
        let programs: Vec<CompiledProgram> =
            serde_json::from_str(&json).map_err(std::io::Error::other)?;
        for p in &programs {
            for r in &p.regions {
                if self.library.get(r.kernel.id).map(|t| t.kernel) != Some(r.kernel) {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "program for {} references {} absent from this library",
                            p.operator, r.kernel
                        ),
                    ));
                }
            }
        }
        let count = programs.len();
        // Validation done; inserts take each shard's write lock briefly.
        for p in programs {
            self.cache.insert(p.operator, Arc::new(p));
        }
        Ok(count)
    }

    fn compile_uncached(&self, operator: &Operator) -> CompiledProgram {
        let view = operator.gemm_view();
        let program = polymerize_traced(
            &self.machine,
            &self.library,
            &view,
            *operator,
            &self.patterns(),
            self.options.cost_model,
            self.options.prune,
            &self.options.search,
            &self.telemetry,
        );
        if self.options.split_k && self.options.cost_model == CostModelKind::Full {
            crate::search::improve_with_split_k(&self.machine, &self.library, &view, program)
        } else {
            program
        }
    }

    /// The device launch for a compiled program, with static placement
    /// (via the library's performance models and the max-min allocator) on
    /// machines that require it.
    pub fn launch_for(&self, program: &CompiledProgram) -> Launch {
        match self.machine.allocation {
            accel_sim::AllocationPolicy::DynamicHardware => program.launch_dynamic(),
            accel_sim::AllocationPolicy::StaticCompilerAssigned => {
                let k = program.view.shape.k;
                let durations: Vec<f64> = program
                    .regions
                    .iter()
                    .map(|r| self.predict_task_ns(r, k))
                    .collect();
                program.launch_static(&self.machine, &durations)
            }
        }
    }

    fn predict_task_ns(&self, region: &Region, k: usize) -> f64 {
        self.library
            .get(region.kernel.id)
            .map(|t| t.perf.predict(region.instances(k)))
            .unwrap_or_else(|| {
                accel_sim::pipelined_task_ns(
                    &self.machine,
                    &region
                        .kernel
                        .task_spec(&region_view(region), region.instances(k)),
                )
            })
    }

    /// Simulates a compiled program on the target (noise-free evaluation
    /// mode), including the split-K reduction pass when present.
    pub fn simulate(&self, program: &CompiledProgram) -> SimReport {
        match program.reduction_launch() {
            None => simulate(
                &self.machine,
                &self.launch_for(program),
                TimingMode::Evaluate,
            ),
            Some(reduction) => accel_sim::simulate_launches(
                &self.machine,
                &[self.launch_for(program), reduction],
                TimingMode::Evaluate,
            ),
        }
    }

    /// Compiles and simulates an operator in one call.
    pub fn run(&self, operator: &Operator) -> OperatorRun {
        let start = Instant::now();
        let (program, outcome) = {
            let mut span = span!(self.telemetry, "online.compile", op = operator.to_string());
            let (program, outcome) = self.compile_with_outcome(operator);
            span.arg(
                "outcome",
                match outcome {
                    CacheOutcome::Hit => "hit",
                    CacheOutcome::Computed => "computed",
                    CacheOutcome::Waited => "waited",
                },
            );
            (program, outcome)
        };
        let compile_ns = match outcome {
            CacheOutcome::Hit => 0,
            // Both a fresh polymerization and a coalesced wait spend real
            // wall-clock on the request path.
            CacheOutcome::Computed | CacheOutcome::Waited => start.elapsed().as_nanos(),
        };
        if self.telemetry.is_enabled() {
            let registry = self.telemetry.registry();
            let clamped = compile_ns.min(u128::from(u64::MAX)) as u64;
            match outcome {
                CacheOutcome::Hit => {}
                CacheOutcome::Computed => registry
                    .histogram("online.compile_ns", Clock::Real)
                    .record(clamped),
                CacheOutcome::Waited => registry
                    .histogram("cache.wait_ns", Clock::Real)
                    .record(clamped),
            }
        }
        let report = self.simulate(&program);
        OperatorRun {
            program,
            report,
            compile_ns,
            outcome,
        }
    }

    /// The Oracle of Fig. 12(b): exhaustively simulates every strategy and
    /// returns the truly best program, together with how expensive that
    /// was. `MikPoly-Oracle` "takes about 1.6 seconds to find the best
    /// polymerization solution, whereas MikPoly accomplishes the same task
    /// in just about 2 microseconds".
    pub fn compile_oracle(&self, operator: &Operator) -> OracleResult {
        self.compile_oracle_capped(operator, usize::MAX)
    }

    /// Like [`MikPoly::compile_oracle`], but the enumeration visits at
    /// most `cap` candidate descents — the conformance subsystem's bounded
    /// oracle. Kernels are ranked, so a truncated search still simulates
    /// the plausible candidates first; `truncated` reports whether the cap
    /// cut the space. When telemetry is attached, records the
    /// `oracle.searches` / `oracle.candidates` / `oracle.truncated`
    /// counters.
    pub fn compile_oracle_capped(&self, operator: &Operator, cap: usize) -> OracleResult {
        let start = Instant::now();
        let view = operator.gemm_view();
        let mut candidates = 0usize;
        let mut best: Option<(f64, CompiledProgram)> = None;
        let truncated = crate::search::enumerate_strategies_capped(
            &self.machine,
            &self.library,
            &view,
            &self.patterns(),
            cap.max(1),
            |pattern, regions| {
                candidates += 1;
                let prog = CompiledProgram {
                    operator: *operator,
                    view,
                    pattern,
                    regions: regions.to_vec(),
                    split_k: 1,
                    predicted_ns: f64::NAN,
                    stats: Default::default(),
                };
                let ns = self.simulate(&prog).time_ns;
                if best.as_ref().is_none_or(|(b, _)| ns < *b) {
                    best = Some((ns, prog));
                }
            },
        );
        if self.telemetry.is_enabled() {
            let registry = self.telemetry.registry();
            registry.counter("oracle.searches").inc();
            registry.counter("oracle.candidates").add(candidates as u64);
            if truncated {
                registry.counter("oracle.truncated").inc();
            }
        }
        let (ns, mut program) = best.expect("at least one strategy exists");
        program.predicted_ns = ns;
        OracleResult {
            program,
            candidates,
            truncated,
            search: start.elapsed(),
        }
    }
}

fn region_view(region: &Region) -> tensor_ir::GemmView {
    tensor_ir::GemmView {
        shape: tensor_ir::GemmShape::new(region.rows().max(1), region.cols().max(1), 1),
        dtype: tensor_ir::DType::F16,
        load_scale: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::GemmShape;

    fn compiler() -> MikPoly {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        MikPoly::offline(MachineModel::a100(), &o)
    }

    #[test]
    fn run_produces_time_and_coverage() {
        let c = compiler();
        let run = c.run(&Operator::gemm(GemmShape::new(4096, 1024, 4096)));
        assert!(run.report.time_ns > 0.0);
        assert!(run.program.verify_coverage().is_ok());
        assert!(run.total_ns() >= run.report.time_ns);
    }

    #[test]
    fn cache_hits_skip_compilation() {
        let c = compiler();
        let op = Operator::gemm(GemmShape::new(777, 512, 256));
        let first = c.run(&op);
        let second = c.run(&op);
        assert!(first.compile_ns > 0);
        assert_eq!(second.compile_ns, 0);
        assert!(Arc::ptr_eq(&first.program, &second.program));
    }

    #[test]
    fn concurrent_compiles_coalesce_to_one_polymerization() {
        let c = compiler();
        let op = Operator::gemm(GemmShape::new(640, 320, 160));
        let programs: Vec<Arc<CompiledProgram>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8).map(|_| scope.spawn(|| c.compile(&op))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for p in &programs[1..] {
            assert!(Arc::ptr_eq(&programs[0], p));
        }
        let stats = c.cache_stats();
        assert_eq!(stats.computations, 1, "stampede: {stats:?}");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.coalesced_waits, 7);
    }

    #[test]
    fn disabling_cache_recompiles() {
        let c = compiler().with_options(OnlineOptions {
            cache: false,
            ..OnlineOptions::default()
        });
        let op = Operator::gemm(GemmShape::new(300, 300, 300));
        let a = c.run(&op);
        let b = c.run(&op);
        assert!(a.compile_ns > 0 && b.compile_ns > 0);
    }

    #[test]
    fn oracle_never_worse_than_cost_model_choice() {
        let c = compiler();
        let op = Operator::gemm(GemmShape::new(1090, 512, 512));
        let model_run = c.run(&op);
        let oracle = c.compile_oracle(&op);
        assert!(oracle.candidates >= 1);
        let oracle_ns = c.simulate(&oracle.program).time_ns;
        assert!(oracle_ns <= model_run.report.time_ns + 1e-6);
    }

    #[test]
    fn npu_compiler_uses_static_placement() {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        let c = MikPoly::offline(MachineModel::ascend910a(), &o);
        let run = c.run(&Operator::gemm(GemmShape::new(2048, 1024, 512)));
        assert!(run.report.time_ns > 0.0);
        // All nine patterns are in play on the NPU.
        assert_eq!(run.program.stats.patterns_tried, 9);
    }
}

#[cfg(test)]
mod aot_bundle_tests {
    use super::*;
    use tensor_ir::GemmShape;

    #[test]
    fn bundle_round_trips_and_restores_cache_hits() {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        let machine = MachineModel::a100();
        let a = MikPoly::offline(machine.clone(), &o);
        let ops: Vec<Operator> = [(64, 64, 64), (1000, 300, 200)]
            .into_iter()
            .map(|(m, n, k)| Operator::gemm(GemmShape::new(m, n, k)))
            .collect();
        a.compile_many(&ops);
        let path = std::env::temp_dir().join("mikpoly-aot-test.json");
        a.save_program_cache(&path).expect("save");

        let b = MikPoly::with_library(machine, a.library().clone());
        assert_eq!(b.load_program_cache(&path).expect("load"), 2);
        for op in &ops {
            let run = b.run(op);
            assert_eq!(run.compile_ns, 0, "bundle must pre-warm the cache");
            assert_eq!(run.program.regions, a.compile(op).regions);
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bundle_from_foreign_library_is_rejected() {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        let a = MikPoly::offline(MachineModel::a100(), &o);
        let op = Operator::gemm(GemmShape::new(128, 128, 128));
        let _ = a.compile(&op);
        let path = std::env::temp_dir().join("mikpoly-aot-foreign.json");
        a.save_program_cache(&path).expect("save");

        // A different machine's library has different tuned kernels (NPU
        // kernels are single-warp), so the bundle must be rejected.
        let mut other_options = OfflineOptions::fast();
        other_options.n_gen = 4;
        let b = MikPoly::offline(MachineModel::ascend910a(), &other_options);
        let err = b.load_program_cache(&path).expect_err("must reject");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(path);
    }
}

#[cfg(test)]
mod compile_many_tests {
    use super::*;
    use tensor_ir::GemmShape;

    #[test]
    fn batch_compilation_matches_sequential() {
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        let c = MikPoly::offline(MachineModel::a100(), &o);
        let ops: Vec<Operator> = [
            (100, 200, 50),
            (4096, 1024, 4096),
            (100, 200, 50),
            (7, 9, 11),
        ]
        .into_iter()
        .map(|(m, n, k)| Operator::gemm(GemmShape::new(m, n, k)))
        .collect();
        let batch = c.compile_many(&ops);
        assert_eq!(batch.len(), ops.len());
        // Duplicates share a program through the cache.
        assert!(Arc::ptr_eq(&batch[0], &batch[2]));
        // Results equal what sequential compilation would have produced.
        let fresh = MikPoly::with_library(c.machine().clone(), c.library().clone());
        for (op, program) in ops.iter().zip(&batch) {
            let seq = fresh.compile(op);
            assert_eq!(program.regions, seq.regions);
            assert_eq!(program.pattern, seq.pattern);
        }
        // Every shape is now a cache hit.
        for op in &ops {
            assert_eq!(c.run(op).compile_ns, 0);
        }
    }
}
