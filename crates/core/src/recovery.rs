//! Crash-consistent restore of durable warm state.
//!
//! [`crate::persist`] makes a *single* bundle file atomic and
//! checksummed; this module makes a *directory* of bundles crash-safe
//! and a damaged directory recoverable:
//!
//! * **Generation manifest**: a multi-bundle save writes each bundle
//!   under a generation-numbered name (`gemm.mpac.7`), fsyncs them, then
//!   atomically renames a [`Manifest`] file carrying the generation
//!   number plus every bundle's length and CRC32. Readers trust only the
//!   manifest, so a crash between bundle writes can never mix
//!   generations — the directory is always exactly the last committed
//!   generation (or, before the first commit, the legacy flat files).
//! * **Salvage and quarantine**: a bundle that fails its checksums is
//!   recovered up to its longest valid record prefix
//!   ([`crate::persist::salvage_bundle`]) and the damaged file is moved
//!   into a `quarantine/` subdirectory — never deleted — so the evidence
//!   survives for a post-mortem.
//! * **Typed outcomes**: every restore produces a [`RestoreReport`]
//!   distinguishing clean, salvaged, quarantined, and absent per bundle,
//!   exportable as `cache.restore.*` telemetry — "no warm state" and
//!   "the warm state was damaged" are different answers, not both `0`.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::io;
use std::path::{Path, PathBuf};

use mikpoly_telemetry::Registry;

use crate::persist::{crc32, write_bytes_atomic};

/// File name of the generation manifest inside a bundle directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Subdirectory damaged files are moved into (never deleted).
pub const QUARANTINE_DIR: &str = "quarantine";

/// First line of every manifest file.
const MANIFEST_HEADER: &str = "MPAC-MANIFEST v1";

/// The committed state of a bundle directory: one generation of bundle
/// files with their sizes and checksums.
///
/// Rendered as a small hand-parsed text file with a trailing self-CRC,
/// flipped into place atomically — the manifest *is* the commit point of
/// a multi-bundle save.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic save generation; each successful save increments it.
    pub generation: u64,
    /// `(file name, byte length, crc32)` for every bundle in the
    /// generation, in save order.
    pub bundles: Vec<(String, u64, u32)>,
}

impl Manifest {
    /// Serializes the manifest, self-CRC line included.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(MANIFEST_HEADER);
        out.push('\n');
        out.push_str(&format!("generation {}\n", self.generation));
        for (name, len, crc) in &self.bundles {
            out.push_str(&format!("bundle {name} {len} {crc:08x}\n"));
        }
        out.push_str(&format!("crc {:08x}\n", crc32(out.as_bytes())));
        out
    }

    /// Parses a manifest, verifying the trailing self-CRC.
    ///
    /// # Errors
    ///
    /// [`std::io::ErrorKind::InvalidData`] on any malformed line, an
    /// unknown header, or a self-CRC mismatch.
    pub fn parse(text: &str) -> io::Result<Self> {
        let bad =
            |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("manifest: {msg}"));
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(bad("unknown header"));
        }
        let generation = lines
            .next()
            .and_then(|l| l.strip_prefix("generation "))
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| bad("missing or malformed generation line"))?;
        let mut bundles = Vec::new();
        let mut stored_crc = None;
        for line in lines {
            if let Some(rest) = line.strip_prefix("bundle ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().ok_or_else(|| bad("bundle line: name"))?;
                // Manifest names are plain file names inside the bundle
                // directory; a path separator would escape it.
                if name.contains('/') || name.contains('\\') || name == ".." {
                    return Err(bad("bundle name is not a plain file name"));
                }
                let len = parts
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or_else(|| bad("bundle line: length"))?;
                let crc = parts
                    .next()
                    .and_then(|v| u32::from_str_radix(v, 16).ok())
                    .ok_or_else(|| bad("bundle line: crc"))?;
                if parts.next().is_some() {
                    return Err(bad("bundle line: trailing fields"));
                }
                bundles.push((name.to_string(), len, crc));
            } else if let Some(rest) = line.strip_prefix("crc ") {
                stored_crc = Some(
                    u32::from_str_radix(rest.trim(), 16).map_err(|_| bad("crc line: malformed"))?,
                );
                break;
            } else {
                return Err(bad("unrecognized line"));
            }
        }
        let stored = stored_crc.ok_or_else(|| bad("missing self-crc line"))?;
        let covered = text
            .rfind("\ncrc ")
            .map(|i| i + 1)
            .ok_or_else(|| bad("missing self-crc line"))?;
        if crc32(&text.as_bytes()[..covered]) != stored {
            return Err(bad("self-crc mismatch"));
        }
        Ok(Self {
            generation,
            bundles,
        })
    }

    /// Writes the manifest atomically into `dir` — the commit point.
    ///
    /// # Errors
    ///
    /// Any I/O error from the atomic write protocol.
    pub fn commit(&self, dir: &Path) -> io::Result<()> {
        write_bytes_atomic(&dir.join(MANIFEST_NAME), self.render().as_bytes())
    }

    /// Reads and verifies the manifest in `dir`, if one exists.
    ///
    /// # Errors
    ///
    /// `Ok(None)` when absent; [`std::io::ErrorKind::InvalidData`] when
    /// present but damaged (callers quarantine it and fall back to the
    /// flat legacy names).
    pub fn read(dir: &Path) -> io::Result<Option<Self>> {
        let path = dir.join(MANIFEST_NAME);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        Self::parse(&text).map(Some)
    }
}

/// Moves `path` into the `quarantine/` subdirectory beside it, choosing
/// a non-colliding name. The file is renamed, never deleted — corrupt
/// state is evidence.
///
/// # Errors
///
/// Any I/O error from creating the quarantine directory or renaming.
pub fn quarantine_file(path: &Path) -> io::Result<PathBuf> {
    let dir = path
        .parent()
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf);
    let qdir = dir.join(QUARANTINE_DIR);
    std::fs::create_dir_all(&qdir)?;
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    for attempt in 0u32.. {
        let candidate = if attempt == 0 {
            qdir.join(&name)
        } else {
            qdir.join(format!("{name}.{attempt}"))
        };
        if candidate.exists() {
            continue;
        }
        std::fs::rename(path, &candidate)?;
        return Ok(candidate);
    }
    unreachable!("u32 attempt counter exhausted")
}

/// How one bundle came back from a restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreOutcome {
    /// Every checksum verified; the full bundle loaded.
    Clean,
    /// The bundle was damaged; its longest valid record prefix loaded
    /// and the damaged file was quarantined.
    Salvaged,
    /// The bundle was damaged beyond salvage (or failed validation
    /// against this library); nothing loaded, the file was quarantined.
    Quarantined,
    /// No bundle existed — a cold start, not a failure.
    Absent,
}

impl RestoreOutcome {
    /// Stable lowercase label, used as the `cache.restore.*` suffix.
    pub fn label(self) -> &'static str {
        match self {
            RestoreOutcome::Clean => "clean",
            RestoreOutcome::Salvaged => "salvaged",
            RestoreOutcome::Quarantined => "quarantined",
            RestoreOutcome::Absent => "absent",
        }
    }
}

/// The restore story of one bundle file.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleRestore {
    /// Logical bundle name (`gemm`, `conv`).
    pub bundle: String,
    /// What happened.
    pub outcome: RestoreOutcome,
    /// Programs actually loaded into the cache.
    pub restored: usize,
    /// Records the bundle claimed to hold, when its header was readable.
    pub claimed: Option<u64>,
    /// Where the damaged file was moved, for salvaged/quarantined.
    pub quarantined_to: Option<PathBuf>,
    /// The first damage found, when not clean.
    pub detail: Option<String>,
}

/// The typed result of [`crate::Engine::restore_program_caches`]:
/// per-bundle outcomes plus the committed generation that was read.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RestoreReport {
    /// One entry per bundle the restore looked for.
    pub bundles: Vec<BundleRestore>,
    /// The manifest generation the restore read, when one was committed.
    pub generation: Option<u64>,
}

impl RestoreReport {
    /// Total programs loaded across all bundles.
    pub fn restored(&self) -> usize {
        self.bundles.iter().map(|b| b.restored).sum()
    }

    /// Whether any bundle lost data (salvaged or quarantined).
    pub fn degraded(&self) -> bool {
        self.bundles.iter().any(|b| {
            matches!(
                b.outcome,
                RestoreOutcome::Salvaged | RestoreOutcome::Quarantined
            )
        })
    }

    /// Whether every bundle that existed restored clean.
    pub fn clean(&self) -> bool {
        !self.degraded()
    }

    /// Exports the report as `cache.restore.*` counters: one increment
    /// per bundle outcome, plus the total programs restored.
    pub fn export_to(&self, registry: &Registry) {
        registry.describe(
            "cache.restore.clean",
            "Warm-state bundles restored with every checksum verified",
        );
        registry.describe(
            "cache.restore.salvaged",
            "Damaged bundles restored up to their longest valid record prefix",
        );
        registry.describe(
            "cache.restore.quarantined",
            "Bundles damaged beyond salvage, moved aside with nothing loaded",
        );
        registry.describe(
            "cache.restore.absent",
            "Bundle slots with no file on disk (cold start)",
        );
        registry.describe(
            "cache.restore.programs",
            "Compiled programs loaded from durable warm state",
        );
        for bundle in &self.bundles {
            registry
                .counter(&format!("cache.restore.{}", bundle.outcome.label()))
                .inc();
        }
        registry
            .counter("cache.restore.programs")
            .add(self.restored() as u64);
    }
}

impl std::fmt::Display for RestoreReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.generation {
            Some(generation) => writeln!(f, "restore: generation {generation}")?,
            None => writeln!(
                f,
                "restore: no committed generation (flat or cold directory)"
            )?,
        }
        for b in &self.bundles {
            write!(
                f,
                "  {:<6} {:<11} {} programs",
                b.bundle,
                b.outcome.label(),
                b.restored
            )?;
            if let Some(claimed) = b.claimed {
                if claimed as usize != b.restored {
                    write!(f, " of {claimed} claimed")?;
                }
            }
            if let Some(q) = &b.quarantined_to {
                write!(f, " (damaged file -> {})", q.display())?;
            }
            if let Some(d) = &b.detail {
                write!(f, " [{d}]")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn manifest_round_trips_and_verifies() {
        let m = Manifest {
            generation: 12,
            bundles: vec![
                ("gemm.mpac.12".to_string(), 4096, 0xDEAD_BEEF),
                ("conv.mpac.12".to_string(), 128, 0x0000_0001),
            ],
        };
        let text = m.render();
        assert_eq!(Manifest::parse(&text).expect("round trip"), m);
    }

    #[test]
    fn manifest_rejects_tampering() {
        let m = Manifest {
            generation: 3,
            bundles: vec![("gemm.mpac.3".to_string(), 64, 7)],
        };
        let text = m.render();
        // Flip the generation digit without fixing the self-CRC.
        let tampered = text.replace("generation 3", "generation 4");
        assert!(Manifest::parse(&tampered).is_err());
        assert!(Manifest::parse("").is_err());
        assert!(Manifest::parse("MPAC-MANIFEST v1\n").is_err());
        // A path-escaping bundle name must be rejected even if checksummed.
        let evil = Manifest {
            generation: 1,
            bundles: vec![("../escape".to_string(), 1, 1)],
        };
        assert!(Manifest::parse(&evil.render()).is_err());
    }

    #[test]
    fn manifest_commit_and_read() {
        let dir = std::env::temp_dir().join(format!("mpac-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        assert_eq!(Manifest::read(&dir).expect("absent is Ok(None)"), None);
        let m = Manifest {
            generation: 1,
            bundles: vec![("gemm.mpac.1".to_string(), 10, 2)],
        };
        m.commit(&dir).expect("commit");
        assert_eq!(Manifest::read(&dir).expect("read back"), Some(m));
        // A damaged manifest is an error, not a silent None.
        std::fs::write(dir.join(MANIFEST_NAME), b"garbage").expect("overwrite");
        assert!(Manifest::read(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_moves_without_deleting() {
        let dir = std::env::temp_dir().join(format!("mpac-quarantine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let victim = dir.join("gemm.mpac");
        std::fs::write(&victim, b"damaged").expect("write");
        let moved = quarantine_file(&victim).expect("quarantine");
        assert!(!victim.exists());
        assert_eq!(std::fs::read(&moved).expect("survives"), b"damaged");
        // A second quarantine of the same name must not overwrite.
        std::fs::write(&victim, b"also damaged").expect("write again");
        let moved2 = quarantine_file(&victim).expect("quarantine again");
        assert_ne!(moved, moved2);
        assert_eq!(std::fs::read(&moved).expect("first intact"), b"damaged");
        assert_eq!(
            std::fs::read(&moved2).expect("second intact"),
            b"also damaged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn outcomes_have_stable_labels() {
        for (outcome, label) in [
            (RestoreOutcome::Clean, "clean"),
            (RestoreOutcome::Salvaged, "salvaged"),
            (RestoreOutcome::Quarantined, "quarantined"),
            (RestoreOutcome::Absent, "absent"),
        ] {
            assert_eq!(outcome.label(), label);
        }
    }
}
