//! Static task placement for NPUs.
//!
//! "To assign micro-kernels to these cores, a max-min static allocation
//! algorithm is employed" (Section 4). We implement the classic
//! longest-processing-time-first (LPT) max-min scheme: tasks are sorted by
//! decreasing estimated duration and each is placed on the currently
//! least-loaded core, minimizing the maximum core load.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Assigns tasks to `num_pes` cores with max-min (LPT) allocation.
///
/// `durations[i]` is the estimated duration of one task of group `i`, and
/// `counts[i]` is how many such tasks exist. Returns, per group, the PE
/// index of each of its tasks.
///
/// # Panics
///
/// Panics if the slices have different lengths or `num_pes` is zero.
pub fn max_min_assign(durations: &[f64], counts: &[usize], num_pes: usize) -> Vec<Vec<usize>> {
    assert_eq!(durations.len(), counts.len(), "one duration per group");
    assert!(num_pes > 0, "need at least one PE");

    // Expand to (duration, group, index-within-group), longest first.
    let mut tasks: Vec<(f64, usize, usize)> = Vec::new();
    for (g, (&d, &c)) in durations.iter().zip(counts).enumerate() {
        assert!(d >= 0.0, "durations must be non-negative");
        for i in 0..c {
            tasks.push((d, g, i));
        }
    }
    tasks.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    // Min-heap of (load, pe). OrderedFloat-style wrapper via total_cmp keyed
    // through sortable bits.
    #[derive(PartialEq)]
    struct Load(f64, usize);
    impl Eq for Load {}
    impl PartialOrd for Load {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Load {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }

    let mut heap: BinaryHeap<Reverse<Load>> =
        (0..num_pes).map(|pe| Reverse(Load(0.0, pe))).collect();
    let mut out: Vec<Vec<usize>> = counts.iter().map(|&c| vec![0usize; c]).collect();
    for (d, g, i) in tasks {
        let Reverse(Load(load, pe)) = heap.pop().expect("heap holds num_pes entries");
        out[g][i] = pe;
        heap.push(Reverse(Load(load + d, pe)));
    }
    out
}

/// The LPT (max-min) makespan of task groups on `num_pes` cores, without
/// materializing an assignment. `groups` holds `(duration, count)` pairs.
/// Used by the NPU cost model to evaluate complete strategies exactly —
/// the fractional bound `max(total/P, dmax)` misses discrete imbalance
/// (e.g. 34 equal tasks on 32 cores take 2 rounds, not 1.06).
///
/// Within a group all tasks have the same duration, so LPT (always extend
/// the least-loaded core) can be simulated at *load-level* granularity —
/// `O(groups²)` regardless of task counts — instead of per task.
///
/// # Panics
///
/// Panics if `num_pes` is zero.
pub fn lpt_makespan(groups: &[(f64, usize)], num_pes: usize) -> f64 {
    assert!(num_pes > 0, "need at least one PE");
    // Sort the (few) groups by descending duration without allocating.
    const MAX_GROUPS: usize = 8;
    let mut sorted = [(0.0f64, 0usize); MAX_GROUPS];
    let mut ng = 0usize;
    for &g in groups.iter().filter(|g| g.1 > 0) {
        assert!(
            ng < MAX_GROUPS,
            "lpt_makespan supports at most {MAX_GROUPS} groups"
        );
        let mut pos = ng;
        while pos > 0 && sorted[pos - 1].0 < g.0 {
            sorted[pos] = sorted[pos - 1];
            pos -= 1;
        }
        sorted[pos] = g;
        ng += 1;
    }

    // Distinct load levels (load, cores at it), ascending; at most one new
    // level per group plus merges, so a small fixed buffer suffices.
    let mut levels = [(0.0f64, 0usize); 2 * MAX_GROUPS + 2];
    levels[0] = (0.0, num_pes);
    let mut nl = 1usize;
    for &(d, mut c) in &sorted[..ng] {
        // Bulk-advance: while the group has far more tasks than cores,
        // every core is guaranteed at least `q` of them under LPT (the
        // per-round waterfilling below would hand them out one level at a
        // time). Exact because uniform rounds preserve the level order.
        if c > num_pes {
            let spread_rounds = ((levels[nl - 1].0 - levels[0].0) / d).ceil() as usize;
            let q = (c / num_pes).saturating_sub(spread_rounds + 1);
            if q > 0 {
                for level in levels[..nl].iter_mut() {
                    level.0 += q as f64 * d;
                }
                c -= q * num_pes;
            }
        }
        while c > 0 {
            let (l0, k0) = levels[0];
            // Whole +d rounds the bottom level absorbs before overtaking
            // the next level.
            let rounds_to_next = if nl > 1 {
                (((levels[1].0 - l0) / d).ceil() as usize).max(1)
            } else {
                usize::MAX
            };
            if c >= k0 {
                let full_rounds = rounds_to_next.min(c / k0).max(1);
                levels[0].0 = l0 + full_rounds as f64 * d;
                c -= k0 * full_rounds;
            } else {
                // Fewer tasks than bottom cores: split the level.
                levels[0].1 = k0 - c;
                levels[nl] = (l0 + d, c);
                nl += 1;
                c = 0;
            }
            // Restore ascending order (only levels[0] moved or one was
            // appended) and merge equal loads.
            levels[..nl].sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            let mut w = 0usize;
            for r in 1..nl {
                if (levels[r].0 - levels[w].0).abs() < 1e-9 {
                    levels[w].1 += levels[r].1;
                } else {
                    w += 1;
                    levels[w] = levels[r];
                }
            }
            nl = w + 1;
        }
    }
    levels[nl - 1].0
}

/// The maximum core load implied by an assignment (the static-allocation
/// makespan the NPU cost model minimizes).
pub fn makespan(durations: &[f64], assignments: &[Vec<usize>], num_pes: usize) -> f64 {
    let mut loads = vec![0.0f64; num_pes];
    for (d, a) in durations.iter().zip(assignments) {
        for &pe in a {
            loads[pe] += d;
        }
    }
    loads.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balances_equal_tasks_evenly() {
        let a = max_min_assign(&[10.0], &[32], 8);
        let mut per_pe = [0usize; 8];
        for &pe in &a[0] {
            per_pe[pe] += 1;
        }
        assert!(per_pe.iter().all(|&c| c == 4));
    }

    #[test]
    fn long_tasks_placed_first() {
        // One long task plus many short: the long task's core should get
        // fewer short tasks.
        let a = max_min_assign(&[100.0, 10.0], &[1, 19], 2);
        let long_pe = a[0][0];
        let shorts_on_long_pe = a[1].iter().filter(|&&pe| pe == long_pe).count();
        let shorts_on_other = 19 - shorts_on_long_pe;
        assert!(shorts_on_long_pe < shorts_on_other);
        let span = makespan(&[100.0, 10.0], &a, 2);
        // Perfect balance would be (100 + 190) / 2 = 145.
        assert!(span <= 150.0, "makespan {span}");
    }

    #[test]
    fn makespan_of_single_pe_is_total() {
        let a = max_min_assign(&[5.0, 7.0], &[3, 2], 1);
        assert_eq!(makespan(&[5.0, 7.0], &a, 1), 3.0 * 5.0 + 2.0 * 7.0);
    }

    #[test]
    fn lpt_is_within_four_thirds_of_optimum() {
        // Classic LPT bound: makespan <= (4/3 - 1/(3m)) * OPT. Use a known
        // adversarial-ish instance and check the bound against the trivial
        // lower bound max(total/m, max_duration).
        let durations = [7.0, 6.0, 5.0, 4.0];
        let counts = [2, 2, 2, 3];
        let m = 3;
        let a = max_min_assign(&durations, &counts, m);
        let total: f64 = durations
            .iter()
            .zip(&counts)
            .map(|(d, &c)| d * c as f64)
            .sum();
        let lower = (total / m as f64).max(7.0);
        let span = makespan(&durations, &a, m);
        assert!(
            span <= lower * (4.0 / 3.0) + 1e-9,
            "span {span} vs lower {lower}"
        );
    }

    #[test]
    fn empty_groups_allowed() {
        let a = max_min_assign(&[1.0, 2.0], &[0, 4], 2);
        assert!(a[0].is_empty());
        assert_eq!(a[1].len(), 4);
    }

    #[test]
    #[should_panic(expected = "one duration per group")]
    fn mismatched_lengths_rejected() {
        let _ = max_min_assign(&[1.0], &[1, 2], 2);
    }
}

#[cfg(test)]
mod lpt_tests {
    use super::*;

    /// Reference LPT makespan via the per-task allocator.
    fn reference(groups: &[(f64, usize)], pes: usize) -> f64 {
        let durations: Vec<f64> = groups.iter().map(|g| g.0).collect();
        let counts: Vec<usize> = groups.iter().map(|g| g.1).collect();
        let a = max_min_assign(&durations, &counts, pes);
        makespan(&durations, &a, pes)
    }

    #[test]
    fn level_lpt_matches_per_task_lpt() {
        let cases: &[(&[(f64, usize)], usize)] = &[
            (&[(10.0, 34)], 32),
            (&[(10.0, 32)], 32),
            (&[(10.0, 1)], 32),
            (&[(7.0, 5), (3.0, 11)], 4),
            (&[(9.0, 100), (2.0, 7), (5.0, 33)], 32),
            (&[(1.0, 1000)], 7),
            (&[(4.0, 3), (4.0, 3)], 5),
        ];
        for (groups, pes) in cases {
            let fast = lpt_makespan(groups, *pes);
            let slow = reference(groups, *pes);
            assert!(
                (fast - slow).abs() < 1e-6,
                "groups {groups:?} on {pes}: fast {fast} vs reference {slow}"
            );
        }
    }

    #[test]
    fn discrete_imbalance_is_captured() {
        // 34 equal tasks on 32 cores: 2 rounds, not 1.06.
        assert_eq!(lpt_makespan(&[(10.0, 34)], 32), 20.0);
    }

    #[test]
    fn empty_groups_give_zero() {
        assert_eq!(lpt_makespan(&[], 32), 0.0);
        assert_eq!(lpt_makespan(&[(5.0, 0)], 32), 0.0);
    }
}
