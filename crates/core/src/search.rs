//! On-the-fly polymerization search (Section 3.4, Algorithm 1 lines 7–15).
//!
//! Once the operator's shape is known, MikPoly tries each polymerization
//! pattern, instantiating the pattern's parameterized micro-kernels from the
//! offline library (the *polymerization strategies*), and keeps the
//! strategy with the lowest estimated cost. The search is branch-and-bound:
//! as soon as a partial strategy's accumulated cost reaches the incumbent's,
//! the subtree is skipped — the paper's "if the cost of `(R_i, K̃_i)`
//! exceeds the current best strategy's cost, related strategies are
//! skipped".
//!
//! Geometry of a strategy: bands stack top-down; a band led by kernel `a`
//! spans the largest multiple of `a.uM` that fits the remaining rows (the
//! final band absorbs the remainder with local padding); within a band,
//! column segments behave the same way along `N`.

use std::time::Instant;

use accel_sim::{AllocationPolicy, MachineModel};
use mikpoly_telemetry::{span, Clock, Registry, Telemetry};
use tensor_ir::GemmView;

use crate::alloc::lpt_makespan;
use crate::cost::CostModelKind;
use crate::offline::{MicroKernelLibrary, TunedKernel};
use crate::pattern::{Pattern, PatternId};
use crate::plan::{CompiledProgram, Region, SearchStats};

/// Result of a polymerization search before packaging into a
/// [`CompiledProgram`].
#[derive(Debug, Clone)]
struct Best {
    pattern: PatternId,
    regions: Vec<Region>,
    cost: f64,
}

/// Accumulated cost of a partial strategy.
#[derive(Debug, Clone, Copy, Default)]
struct Partial {
    /// GPU mode: Σ f_wave · f_pipe. NPU mode: Σ tasks · g_predict (total
    /// core-seconds of work).
    sum: f64,
    /// NPU mode: the longest single task (a makespan lower bound).
    dmax: f64,
}

struct Searcher<'a> {
    kernels: Vec<&'a TunedKernel>,
    /// Per-kernel `f_pipe` (Eq. 4), precomputed once per shape: every
    /// region spans the full reduction extent, so the pipelined-task cost
    /// of a kernel does not depend on the region geometry. This is what
    /// keeps the online search at microsecond scale.
    pipe: Vec<f64>,
    m: usize,
    n: usize,
    num_pes: usize,
    kind: CostModelKind,
    /// Whether the machine executes compiler-assigned static placements
    /// (NPU). The full cost model then estimates the max-min allocation
    /// makespan `max(Σ tasks·g / |P|, max g)` instead of Eq. 2's per-region
    /// wave sum — "a max-min static allocation algorithm is employed,
    /// enhancing parallel execution" (Section 4).
    static_alloc: bool,
    prune: bool,
    /// Kernels considered for the current pattern. Deep patterns (3+
    /// regions) only draw from the top-ranked kernels — the paper's
    /// search-narrowing heuristic (Algorithm 1) that keeps polymerization
    /// at microsecond scale.
    kernel_limit: usize,
    /// FLOPs per output row (2·N·K), for the remaining-work bound.
    flops_per_row: f64,
    /// The fastest per-task FLOP rate any usable kernel achieves (FLOPs per
    /// ns of `g_predict`); rows not yet covered cannot be computed faster.
    best_rate: f64,
    /// `(f_pipe, tasks)` per region of the current partial strategy,
    /// maintained alongside `regions` so leaves need no lookups.
    group_stack: Vec<(f64, usize)>,
    /// Remaining kernel-choice iterations (heuristic mode only).
    budget: usize,
    best: Option<Best>,
    stats: SearchStats,
}

/// Kernel shortlist size for patterns with three or more regions.
const DEEP_PATTERN_KERNELS: usize = 16;

/// Branch-and-bound margin: subtrees whose lower bound is within 0.5% of
/// the incumbent are skipped. The cost model's own error is several
/// percent, so chasing sub-0.5% improvements buys nothing while
/// exhaustively enumerating near-tie strategies — part of the paper's
/// "heuristics ... considerably narrowing the search space with minimal
/// runtime overhead".
const PRUNE_MARGIN: f64 = 0.995;

/// Search-effort budget for the heuristic (pruned) search, counting only
/// descents that survive the bound check (the expensive part: recursion
/// and leaf cost evaluation). When a shape's cost landscape is flat,
/// hundreds of near-tie strategies survive any admissible bound; the
/// budget makes the search anytime — the per-shape presort places a
/// near-optimal incumbent on the first descent, so exhausting the budget
/// costs at most a few percent. Keeps worst-case polymerization in the low
/// tens of microseconds, as the paper's overhead analysis requires
/// (Fig. 12(a)).
const NODE_BUDGET: usize = 600;

impl<'a> Searcher<'a> {
    /// Extends a partial cost by one region, using the per-kernel `f_pipe`
    /// cache (O(1) per call).
    fn extend(&self, partial: Partial, region: &Region, kernel_idx: usize) -> Partial {
        let pipe = self.pipe[kernel_idx];
        if self.static_alloc && self.kind == CostModelKind::Full {
            Partial {
                sum: partial.sum + region.tasks() as f64 * pipe,
                dmax: partial.dmax.max(pipe),
            }
        } else {
            let waves = region.tasks().div_ceil(self.num_pes) as f64;
            let add = match self.kind {
                CostModelKind::Full => waves * pipe,
                CostModelKind::WaveOnly => waves,
                CostModelKind::PipeOnly => pipe,
            };
            Partial {
                sum: partial.sum + add,
                dmax: partial.dmax,
            }
        }
    }

    /// The final selection cost of a complete strategy.
    fn finish(&self, partial: Partial) -> f64 {
        if self.static_alloc && self.kind == CostModelKind::Full {
            (partial.sum / self.num_pes as f64).max(partial.dmax)
        } else {
            partial.sum
        }
    }

    /// An admissible lower bound on any completion of a partial strategy
    /// that still has `rows_remaining` uncovered output rows: even at the
    /// best kernel's rate, the remaining work takes
    /// `rows · 2NK / (best_rate · |P|)`.
    fn lower_bound(&self, partial: Partial, rows_remaining: usize) -> f64 {
        if self.kind != CostModelKind::Full {
            return partial.sum;
        }
        let rem_ns = rows_remaining as f64 * self.flops_per_row / self.best_rate;
        if self.static_alloc {
            ((partial.sum + rem_ns) / self.num_pes as f64).max(partial.dmax)
        } else {
            partial.sum + rem_ns / self.num_pes as f64
        }
    }

    fn best_cost(&self) -> f64 {
        self.best.as_ref().map_or(f64::INFINITY, |b| b.cost)
    }

    fn run_pattern(&mut self, pattern: &Pattern, collector: &mut Collector<'_>) {
        self.stats.patterns_tried += 1;
        self.kernel_limit = if pattern.num_regions() >= 3 {
            DEEP_PATTERN_KERNELS.min(self.kernels.len())
        } else {
            self.kernels.len()
        };
        let mut regions = Vec::with_capacity(pattern.num_regions());
        self.bands(pattern, 0, 0, Partial::default(), &mut regions, collector);
    }

    fn complete(
        &mut self,
        pattern: &Pattern,
        partial: Partial,
        regions: &[Region],
        collector: &mut Collector<'_>,
    ) {
        self.stats.strategies_evaluated += 1;
        if let Some(cb) = collector {
            cb(pattern.id, regions);
        }
        let cost = if self.static_alloc && self.kind == CostModelKind::Full {
            // Exact max-min (LPT) allocation makespan of the complete
            // strategy; the additive bound is only used for pruning.
            lpt_makespan(&self.group_stack, self.num_pes)
        } else {
            self.finish(partial)
        };
        if cost < self.best_cost() {
            self.best = Some(Best {
                pattern: pattern.id,
                regions: regions.to_vec(),
                cost,
            });
        }
    }

    fn bands(
        &mut self,
        pattern: &Pattern,
        band_idx: usize,
        row_off: usize,
        partial: Partial,
        regions: &mut Vec<Region>,
        collector: &mut Collector<'_>,
    ) {
        if band_idx == pattern.bands.len() {
            debug_assert_eq!(row_off, self.m, "last band must absorb the remainder");
            self.complete(pattern, partial, regions, collector);
            return;
        }
        let rem_m = self.m - row_off;
        if rem_m == 0 {
            // A pattern with fewer bands covers this shape; skip the
            // degenerate strategy.
            self.stats.strategies_pruned += 1;
            return;
        }
        let last_band = band_idx + 1 == pattern.bands.len();
        let segs = pattern.bands[band_idx];
        for i in 0..self.kernel_limit {
            if self.budget == 0 {
                return;
            }
            let lead = self.kernels[i];
            let um = lead.kernel.um;
            let h = if last_band { rem_m } else { (rem_m / um) * um };
            if h == 0 || (!last_band && h == rem_m) {
                continue;
            }
            let (r0, r1) = (row_off, row_off + h);
            match segs {
                1 => {
                    let region = Region::new(r0, r1, 0, self.n, lead.kernel);
                    let acc = self.extend(partial, &region, i);
                    if self.prune
                        && self.lower_bound(acc, self.m - r1) >= self.best_cost() * PRUNE_MARGIN
                    {
                        self.stats.strategies_pruned += 1;
                        continue;
                    }
                    regions.push(region);
                    self.group_stack.push((self.pipe[i], region.tasks()));
                    self.budget = self.budget.saturating_sub(1);
                    self.bands(pattern, band_idx + 1, r1, acc, regions, collector);
                    self.group_stack.pop();
                    regions.pop();
                }
                2 => {
                    let w = (self.n / lead.kernel.un) * lead.kernel.un;
                    if w == 0 || w == self.n {
                        // Degenerate split; the single-segment pattern
                        // covers it.
                        continue;
                    }
                    let left = Region::new(r0, r1, 0, w, lead.kernel);
                    let with_left = self.extend(partial, &left, i);
                    if self.prune
                        && self.lower_bound(with_left, self.m - r1)
                            >= self.best_cost() * PRUNE_MARGIN
                    {
                        self.stats.strategies_pruned += 1;
                        continue;
                    }
                    regions.push(left);
                    self.group_stack.push((self.pipe[i], left.tasks()));
                    for j in 0..self.kernel_limit {
                        if self.budget == 0 {
                            break;
                        }
                        let trail = self.kernels[j];
                        let right = Region::new(r0, r1, w, self.n, trail.kernel);
                        let acc = self.extend(with_left, &right, j);
                        if self.prune
                            && self.lower_bound(acc, self.m - r1) >= self.best_cost() * PRUNE_MARGIN
                        {
                            self.stats.strategies_pruned += 1;
                            continue;
                        }
                        regions.push(right);
                        self.group_stack.push((self.pipe[j], right.tasks()));
                        self.budget = self.budget.saturating_sub(1);
                        self.bands(pattern, band_idx + 1, r1, acc, regions, collector);
                        self.group_stack.pop();
                        regions.pop();
                    }
                    self.group_stack.pop();
                    regions.pop();
                }
                other => panic!("patterns support 1 or 2 column segments, got {other}"),
            }
        }
    }
}

type Collector<'c> = Option<&'c mut dyn FnMut(PatternId, &[Region])>;

/// Precomputes `g_predict(f_num)` per usable kernel for a fixed reduction
/// extent.
fn pipe_cache(kernels: &[&TunedKernel], k_extent: usize) -> Vec<f64> {
    kernels
        .iter()
        .map(|t| t.perf.predict(t.kernel.instances_for(k_extent)))
        .collect()
}

/// Sorts the usable kernels (and their pipe cache) by their Pattern-I cost
/// for this shape, cheapest first. The DFS then reaches a near-optimal
/// incumbent on its first descent, which lets branch-and-bound discard
/// almost everything else — the ordering is what keeps polymerization at
/// the paper's ~2 us scale.
fn presort_by_pattern_i(
    kernels: &mut Vec<&TunedKernel>,
    pipe: &mut Vec<f64>,
    m: usize,
    n: usize,
    num_pes: usize,
    static_alloc: bool,
) {
    let mut idx: Vec<usize> = (0..kernels.len()).collect();
    let cost = |i: usize| -> f64 {
        let t = kernels[i];
        let tasks = t.kernel.tasks_for(m, n);
        if static_alloc {
            (tasks as f64 * pipe[i] / num_pes as f64).max(pipe[i])
        } else {
            tasks.div_ceil(num_pes) as f64 * pipe[i]
        }
    };
    idx.sort_by(|&a, &b| cost(a).total_cmp(&cost(b)));
    *kernels = idx.iter().map(|&i| kernels[i]).collect();
    *pipe = idx.iter().map(|&i| pipe[i]).collect();
}

fn usable<'a>(
    machine: &MachineModel,
    library: &'a MicroKernelLibrary,
    view: &GemmView,
) -> Vec<&'a TunedKernel> {
    let kernels = library.usable_kernels(machine, view);
    assert!(
        !kernels.is_empty(),
        "micro-kernel library for {} has no kernel usable for {:?} on {}",
        library.machine,
        view.shape,
        machine.name
    );
    kernels
}

/// Runs the online polymerization search and returns the optimized tensor
/// program `S*`.
///
/// # Panics
///
/// Panics if the library contains no usable kernel for this view (which
/// cannot happen for libraries produced by
/// [`MicroKernelLibrary::generate`] on the same machine).
pub fn polymerize(
    machine: &MachineModel,
    library: &MicroKernelLibrary,
    view: &GemmView,
    operator: tensor_ir::Operator,
    patterns: &[Pattern],
    kind: CostModelKind,
    prune: bool,
) -> CompiledProgram {
    let start = Instant::now();
    let mut kernels = usable(machine, library, view);
    let mut pipe = pipe_cache(&kernels, view.shape.k);
    let static_alloc = machine.allocation == AllocationPolicy::StaticCompilerAssigned;
    presort_by_pattern_i(
        &mut kernels,
        &mut pipe,
        view.shape.m,
        view.shape.n,
        machine.num_pes,
        static_alloc,
    );
    let flops_per_row = 2.0 * view.shape.n as f64 * view.shape.k as f64;
    let best_rate = kernels
        .iter()
        .zip(&pipe)
        .map(|(t, &p)| {
            t.kernel.flops_per_instance() * t.kernel.instances_for(view.shape.k) as f64 / p
        })
        .fold(1e-9, f64::max);
    let mut searcher = Searcher {
        kernels,
        pipe,
        m: view.shape.m,
        n: view.shape.n,
        num_pes: machine.num_pes,
        kind,
        static_alloc,
        prune,
        kernel_limit: 0,
        flops_per_row,
        best_rate,
        group_stack: Vec::with_capacity(4),
        // The anytime budget is part of the *heuristic* search; the
        // unpruned search (overhead ablations, oracle baselines) must
        // visit every strategy.
        budget: if prune { NODE_BUDGET } else { usize::MAX },
        best: None,
        stats: SearchStats::default(),
    };
    for pattern in patterns {
        searcher.run_pattern(pattern, &mut None);
    }
    let mut stats = searcher.stats;
    stats.search_ns = start.elapsed().as_nanos();
    let best = searcher
        .best
        .expect("pattern I always yields at least one strategy");
    CompiledProgram {
        operator,
        view: *view,
        pattern: best.pattern,
        regions: best.regions,
        split_k: 1,
        predicted_ns: best.cost,
        stats,
    }
}

/// Like [`polymerize`], but wrapped in an `online.search` span and with
/// the resulting [`SearchStats`] accumulated into `telemetry`'s registry
/// (see [`record_search_stats`] for the counter names). Identical to
/// [`polymerize`] — including cost — when `telemetry` is disabled.
#[allow(clippy::too_many_arguments)]
pub fn polymerize_traced(
    machine: &MachineModel,
    library: &MicroKernelLibrary,
    view: &GemmView,
    operator: tensor_ir::Operator,
    patterns: &[Pattern],
    kind: CostModelKind,
    prune: bool,
    telemetry: &Telemetry,
) -> CompiledProgram {
    if !telemetry.is_enabled() {
        return polymerize(machine, library, view, operator, patterns, kind, prune);
    }
    let mut span = span!(
        telemetry,
        "online.search",
        m = view.shape.m,
        n = view.shape.n,
        k = view.shape.k,
    );
    let program = polymerize(machine, library, view, operator, patterns, kind, prune);
    span.arg("strategies_evaluated", program.stats.strategies_evaluated);
    span.arg("strategies_pruned", program.stats.strategies_pruned);
    span.arg("patterns_tried", program.stats.patterns_tried);
    record_search_stats(&program.stats, telemetry.registry());
    program
}

/// Accumulates one shape's [`SearchStats`] into the registry's
/// search-efficiency counters (`search.shapes`, `search.strategies_*`,
/// `search.patterns_tried`) and the real-clock `online.search_ns`
/// histogram — the numbers the `fig*` / `abl_search` experiments report.
pub fn record_search_stats(stats: &SearchStats, registry: &Registry) {
    registry.counter("search.shapes").inc();
    registry
        .counter("search.strategies_evaluated")
        .add(stats.strategies_evaluated as u64);
    registry
        .counter("search.strategies_pruned")
        .add(stats.strategies_pruned as u64);
    registry
        .counter("search.patterns_tried")
        .add(stats.patterns_tried as u64);
    registry
        .histogram("online.search_ns", Clock::Real)
        .record(stats.search_ns.min(u128::from(u64::MAX)) as u64);
}

/// Split-K post-pass (extension; not part of the paper's pattern set).
///
/// For shapes whose best task grid cannot fill the machine (small `M x N`,
/// huge `K`), replicating the grid `w` ways along the reduction — each task
/// computing `1/w` of `K` into partial outputs combined by a memory-bound
/// reduction pass — multiplies the exploitable parallelism. Tries
/// `w ∈ {2, 4, 8}` over all usable kernels and returns the improved program
/// if any beats the input's predicted cost.
pub fn improve_with_split_k(
    machine: &MachineModel,
    library: &MicroKernelLibrary,
    view: &GemmView,
    mut program: CompiledProgram,
) -> CompiledProgram {
    if machine.allocation != AllocationPolicy::DynamicHardware || program.regions.len() != 1 {
        return program;
    }
    let (m, n, k) = (view.shape.m, view.shape.n, view.shape.k);
    // The reduction pass reads w fp32 partials and writes the output once;
    // its bandwidth is bounded by how many PEs its 32x32-tile grid covers.
    let reduce_ns = |w: usize| -> f64 {
        let bytes = (w * m * n * 4 + m * n * 2) as f64;
        let tiles = m.div_ceil(32) * n.div_ceil(32);
        let active = tiles.min(machine.num_pes) as f64;
        bytes / (active * machine.pe_bandwidth_bytes_per_ns())
            + machine.launch_overhead_ns
            + machine.task_overhead_ns
    };
    // Gate on a deep reduction: for short K the per-task overheads and the
    // reduction pass eat the gains, and the cost model's error margin
    // dominates (the same K-threshold gating vendor split-K heuristics
    // use).
    if k < 2048 {
        return program;
    }
    // Demand a clear predicted win to absorb cost-model error.
    let mut best_cost = program.predicted_ns * 0.85;
    let mut improved = false;
    for t in usable(machine, library, view) {
        let base_tasks = t.kernel.tasks_for(m, n);
        let instances = t.kernel.instances_for(k);
        for ways in [2usize, 4, 8] {
            if instances < ways || base_tasks * ways > 4 * machine.num_pes {
                continue;
            }
            let waves = (base_tasks * ways).div_ceil(machine.num_pes) as f64;
            let cost = waves * t.perf.predict(instances.div_ceil(ways)) + reduce_ns(ways);
            if cost < best_cost {
                best_cost = cost;
                improved = true;
                program.pattern = PatternId(10);
                program.regions = vec![Region::new(0, m, 0, n, t.kernel)];
                program.split_k = ways;
            }
        }
    }
    if improved {
        program.predicted_ns = best_cost;
    }
    program
}

/// Enumerates every polymerization strategy (no pruning), invoking the
/// callback with each complete region list. Used by the Oracle variant of
/// Fig. 12(b), which simulates every candidate instead of trusting the cost
/// model.
pub fn enumerate_strategies(
    machine: &MachineModel,
    library: &MicroKernelLibrary,
    view: &GemmView,
    patterns: &[Pattern],
    cb: impl FnMut(PatternId, &[Region]),
) {
    enumerate_strategies_capped(machine, library, view, patterns, usize::MAX, cb);
}

/// Like [`enumerate_strategies`], but the search visits at most `cap`
/// descents before giving up on the remaining strategy space. Returns
/// `true` when the enumeration was truncated by the cap.
///
/// The conformance oracle uses this to bound exhaustive searches on
/// shapes whose strategy space explodes: the kernels are visited in the
/// library's rank order, so even a truncated enumeration sees the
/// plausible candidates first.
pub fn enumerate_strategies_capped(
    machine: &MachineModel,
    library: &MicroKernelLibrary,
    view: &GemmView,
    patterns: &[Pattern],
    cap: usize,
    mut cb: impl FnMut(PatternId, &[Region]),
) -> bool {
    let kernels = usable(machine, library, view);
    let pipe = pipe_cache(&kernels, view.shape.k);
    let mut searcher = Searcher {
        kernels,
        pipe,
        m: view.shape.m,
        n: view.shape.n,
        num_pes: machine.num_pes,
        kind: CostModelKind::Full,
        static_alloc: machine.allocation == AllocationPolicy::StaticCompilerAssigned,
        prune: false,
        kernel_limit: 0,
        flops_per_row: 0.0,
        best_rate: 1e-9,
        group_stack: Vec::with_capacity(4),
        budget: cap,
        best: None,
        stats: SearchStats::default(),
    };
    let mut collector: &mut dyn FnMut(PatternId, &[Region]) = &mut cb;
    for pattern in patterns {
        searcher.run_pattern(pattern, &mut Some(&mut collector));
    }
    searcher.budget == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::OfflineOptions;
    use crate::pattern::{all_patterns, gpu_patterns};
    use tensor_ir::{GemmShape, Operator};

    fn setup() -> (MachineModel, MicroKernelLibrary) {
        let m = MachineModel::a100();
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        let lib = MicroKernelLibrary::generate(&m, &o);
        (m, lib)
    }

    fn compile(m: &MachineModel, lib: &MicroKernelLibrary, shape: GemmShape) -> CompiledProgram {
        let op = Operator::gemm(shape);
        polymerize(
            m,
            lib,
            &op.gemm_view(),
            op,
            &gpu_patterns(),
            CostModelKind::Full,
            true,
        )
    }

    #[test]
    fn polymerize_covers_output_exactly() {
        let (m, lib) = setup();
        for &(mm, nn, kk) in &[
            (4096, 1024, 4096),
            (105, 1024, 544),
            (1, 1, 1),
            (33, 65, 17),
        ] {
            let prog = compile(&m, &lib, GemmShape::new(mm, nn, kk));
            prog.verify_coverage().expect("coverage");
            assert!(prog.predicted_ns.is_finite());
            assert!(prog.stats.strategies_evaluated > 0);
        }
    }

    #[test]
    fn awkward_shapes_prefer_polymerization() {
        // With large tiles in the library, a shape whose task count just
        // spills into an extra wave should split off its remainder rows
        // under a second (smaller) micro-kernel — the Fig. 15 effect. (The
        // tiny `setup()` library has no large tiles, so it is generated
        // here with the full `fast()` tile range.)
        let m = MachineModel::a100();
        // Synthetic ranking must reach large shapes (n_syn) for large
        // tiles to survive RankAndPrune.
        let mut options = OfflineOptions::fast();
        options.n_syn = 12;
        let lib = MicroKernelLibrary::generate(&m, &options);
        let mut found_multi = false;
        for mm in (1600..=2400).step_by(16) {
            let op = Operator::gemm(GemmShape::new(mm, 1024, 512));
            let prog = polymerize(
                &m,
                &lib,
                &op.gemm_view(),
                op,
                &gpu_patterns(),
                CostModelKind::Full,
                true,
            );
            prog.verify_coverage().expect("coverage");
            if prog.regions.len() > 1 {
                found_multi = true;
            }
        }
        assert!(found_multi, "no awkward shape polymerized into two regions");
    }

    #[test]
    fn pruning_preserves_the_optimum() {
        let (m, lib) = setup();
        for &(mm, nn, kk) in &[(777, 512, 256), (2048, 384, 128), (96, 96, 96)] {
            let op = Operator::gemm(GemmShape::new(mm, nn, kk));
            let view = op.gemm_view();
            let pruned = polymerize(
                &m,
                &lib,
                &view,
                op,
                &gpu_patterns(),
                CostModelKind::Full,
                true,
            );
            let full = polymerize(
                &m,
                &lib,
                &view,
                op,
                &gpu_patterns(),
                CostModelKind::Full,
                false,
            );
            // Pruning keeps the result within the 2% branch-and-bound
            // margin of the true optimum.
            assert!(
                pruned.predicted_ns <= full.predicted_ns * 1.006 + 1e-9,
                "shape ({mm},{nn},{kk}): pruned {} vs optimal {}",
                pruned.predicted_ns,
                full.predicted_ns
            );
            assert!(pruned.stats.strategies_evaluated <= full.stats.strategies_evaluated);
        }
    }

    #[test]
    fn wave_only_picks_larger_tiles_than_pipe_only() {
        let (m, lib) = setup();
        let op = Operator::gemm(GemmShape::new(2048, 2048, 1024));
        let view = op.gemm_view();
        let wave = polymerize(
            &m,
            &lib,
            &view,
            op,
            &gpu_patterns(),
            CostModelKind::WaveOnly,
            true,
        );
        let pipe = polymerize(
            &m,
            &lib,
            &view,
            op,
            &gpu_patterns(),
            CostModelKind::PipeOnly,
            true,
        );
        let area = |p: &CompiledProgram| {
            p.regions
                .iter()
                .map(|r| r.kernel.um * r.kernel.un)
                .max()
                .unwrap_or(0)
        };
        assert!(
            area(&wave) >= area(&pipe),
            "WaveOnly should favor at-least-as-large micro-kernels"
        );
    }

    #[test]
    fn npu_patterns_search_completes() {
        let m = MachineModel::ascend910a();
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        let lib = MicroKernelLibrary::generate(&m, &o);
        let op = Operator::gemm(GemmShape::new(1234, 777, 512));
        let prog = polymerize(
            &m,
            &lib,
            &op.gemm_view(),
            op,
            &all_patterns(),
            CostModelKind::Full,
            true,
        );
        prog.verify_coverage().expect("coverage");
        assert_eq!(prog.stats.patterns_tried, 9);
    }

    #[test]
    fn enumerate_visits_every_pattern_i_strategy() {
        let (m, lib) = setup();
        let op = Operator::gemm(GemmShape::new(512, 512, 512));
        let mut count = 0usize;
        enumerate_strategies(
            &m,
            &lib,
            &op.gemm_view(),
            &gpu_patterns()[..1],
            |_, regions| {
                assert_eq!(regions.len(), 1);
                count += 1;
            },
        );
        // Pattern I has exactly one strategy per usable kernel.
        let usable = lib.usable_kernels(&m, &op.gemm_view()).len();
        assert_eq!(count, usable);
    }

    #[test]
    fn pruned_search_evaluates_far_fewer_strategies() {
        let (m, lib) = setup();
        let op = Operator::gemm(GemmShape::new(1111, 999, 512));
        let view = op.gemm_view();
        let pruned = polymerize(
            &m,
            &lib,
            &view,
            op,
            &gpu_patterns(),
            CostModelKind::Full,
            true,
        );
        let full = polymerize(
            &m,
            &lib,
            &view,
            op,
            &gpu_patterns(),
            CostModelKind::Full,
            false,
        );
        assert!(pruned.stats.strategies_pruned > 0);
        assert!(pruned.stats.strategies_evaluated < full.stats.strategies_evaluated);
    }
}

#[cfg(test)]
mod split_k_tests {
    use super::*;
    use crate::compiler::{MikPoly, OnlineOptions};
    use crate::offline::OfflineOptions;
    use tensor_ir::{GemmShape, Operator};

    fn compilers() -> (MikPoly, MikPoly) {
        let m = MachineModel::a100();
        let options = OfflineOptions::fast();
        let base = MikPoly::offline(m.clone(), &options);
        let split = MikPoly::offline(m, &options).with_options(OnlineOptions {
            split_k: true,
            ..OnlineOptions::default()
        });
        (base, split)
    }

    #[test]
    fn split_k_fires_on_small_mn_huge_k() {
        let (base, split) = compilers();
        let op = Operator::gemm(GemmShape::new(64, 64, 100_000));
        let plain = base.run(&op);
        let improved = split.run(&op);
        assert_eq!(plain.program.split_k, 1);
        assert!(improved.program.split_k > 1, "split-K should fire");
        assert_eq!(improved.program.pattern.to_string(), "Pattern-X(split-K)");
        assert!(
            improved.report.time_ns < plain.report.time_ns,
            "split-K must pay off: {} vs {}",
            improved.report.time_ns,
            plain.report.time_ns
        );
    }

    #[test]
    fn split_k_stays_off_when_the_grid_already_fills_the_machine() {
        let (_, split) = compilers();
        let op = Operator::gemm(GemmShape::new(4096, 4096, 1024));
        let run = split.run(&op);
        assert_eq!(run.program.split_k, 1, "no reason to split a full grid");
    }

    #[test]
    fn split_k_programs_stay_functionally_correct() {
        use crate::exec::execute_gemm;
        use tensor_ir::{reference_gemm, Tensor};
        let (_, split) = compilers();
        let shape = GemmShape::new(48, 40, 3000);
        let program = split.compile(&Operator::gemm(shape));
        let a = Tensor::random(&[48, 3000], 81);
        let b = Tensor::random(&[3000, 40], 82);
        let got = execute_gemm(&program, &a, &b);
        let want = reference_gemm(shape, &a, &b);
        assert!(
            got.approx_eq(&want, 2e-2),
            "max diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn reduction_launch_exists_iff_split() {
        let (base, split) = compilers();
        let big_k = Operator::gemm(GemmShape::new(64, 64, 100_000));
        assert!(base.compile(&big_k).reduction_launch().is_none());
        assert!(split.compile(&big_k).reduction_launch().is_some());
    }
}
