//! Binary ahead-of-time program bundles: the warm-restart format.
//!
//! [`MikPoly::save_program_cache`](crate::MikPoly::save_program_cache)
//! originally serialized the whole cache as one `serde_json` string —
//! simple, but restart-to-warm for a production-sized cache (tens of
//! thousands of shapes) paid text parsing for every field. This module
//! replaces it with a length-prefixed binary record format:
//!
//! ```text
//! magic   b"MPAC"                          4 bytes
//! version u32 LE                           (currently 2; version 1 is the
//!                                           implicit legacy JSON format)
//! count   u64 LE                           number of program records
//! index   count x u64 LE                   byte length of each record
//! records count variable-length records, concatenated in index order
//! ```
//!
//! The index header makes the bundle seekable — a loader knows every
//! record boundary after reading `16 + 8·count` bytes, so records can be
//! decoded independently (and, later, in parallel or lazily). All scalars
//! are little-endian; record fields are fixed-width, so decoding is a
//! bounds-checked copy with no text parsing and no allocation beyond the
//! program's own region vector.
//!
//! **Version story**: a loader sniffs the first bytes. `b"MPAC"` routes
//! here, where the version field gates decoding (unknown versions are
//! rejected as [`std::io::ErrorKind::InvalidData`], never misparsed). A
//! leading `[` is a legacy v1 JSON bundle and takes the old serde_json
//! path — existing saved bundles keep loading forever. Anything else is
//! rejected. New fields must bump [`FORMAT_VERSION`]; decoders for old
//! versions stay.

use std::io;

use tensor_ir::{Conv2dShape, DType, GemmShape, GemmView, Operator};

use crate::kernel::{MicroKernel, MicroKernelId};
use crate::pattern::PatternId;
use crate::plan::{CompiledProgram, Region, SearchStats};

/// The bundle magic: first four bytes of every binary bundle.
pub const BUNDLE_MAGIC: [u8; 4] = *b"MPAC";

/// Current binary format version. Version 1 is the implicit legacy JSON
/// format (no magic, starts with `[`).
pub const FORMAT_VERSION: u32 = 2;

/// Whether `bytes` starts like a binary bundle (any version).
pub fn is_binary_bundle(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == BUNDLE_MAGIC
}

/// Whether `bytes` starts like a legacy JSON bundle (a serde_json array).
pub fn is_legacy_json_bundle(bytes: &[u8]) -> bool {
    bytes
        .iter()
        .find(|b| !b.is_ascii_whitespace())
        .is_some_and(|b| *b == b'[')
}

/// Encodes `programs` as a version-[`FORMAT_VERSION`] binary bundle.
pub fn encode_bundle<'a>(programs: impl IntoIterator<Item = &'a CompiledProgram>) -> Vec<u8> {
    let records: Vec<Vec<u8>> = programs.into_iter().map(encode_program).collect();
    let body: usize = records.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(16 + 8 * records.len() + body);
    out.extend_from_slice(&BUNDLE_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for r in &records {
        out.extend_from_slice(&(r.len() as u64).to_le_bytes());
    }
    for r in &records {
        out.extend_from_slice(r);
    }
    out
}

/// Decodes a binary bundle produced by [`encode_bundle`].
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::InvalidData`] on a bad magic, an unknown
/// version, or any truncated/malformed record.
pub fn decode_bundle(bytes: &[u8]) -> io::Result<Vec<CompiledProgram>> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != BUNDLE_MAGIC {
        return Err(invalid("not a program bundle: bad magic"));
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(invalid(&format!(
            "unsupported bundle version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let count = usize_from(r.u64()?)?;
    // Guard the index allocation against a hostile count before trusting
    // it: the index alone needs 8 bytes per record.
    if count > r.remaining() / 8 {
        return Err(invalid("bundle index longer than the file"));
    }
    let mut lengths = Vec::with_capacity(count);
    for _ in 0..count {
        lengths.push(usize_from(r.u64()?)?);
    }
    let mut programs = Vec::with_capacity(count);
    for (i, len) in lengths.into_iter().enumerate() {
        let record = r
            .take(len)
            .map_err(|_| invalid(&format!("record {i} truncated: wanted {len} more bytes")))?;
        let mut rr = Reader::new(record);
        let program =
            decode_program(&mut rr).map_err(|e| invalid(&format!("record {i} malformed: {e}")))?;
        if rr.remaining() != 0 {
            return Err(invalid(&format!(
                "record {i} has {} trailing bytes",
                rr.remaining()
            )));
        }
        programs.push(program);
    }
    if r.remaining() != 0 {
        return Err(invalid(&format!(
            "bundle has {} trailing bytes after the last record",
            r.remaining()
        )));
    }
    Ok(programs)
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn usize_from(v: u64) -> io::Result<usize> {
    usize::try_from(v).map_err(|_| invalid("length overflows usize"))
}

/// A bounds-checked little-endian cursor.
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes }
    }

    fn remaining(&self) -> usize {
        self.bytes.len()
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if n > self.bytes.len() {
            return Err(invalid("unexpected end of bundle"));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn u128(&mut self) -> io::Result<u128> {
        let mut b = [0u8; 16];
        b.copy_from_slice(self.take(16)?);
        Ok(u128::from_le_bytes(b))
    }

    fn usize(&mut self) -> io::Result<usize> {
        usize_from(self.u64()?)
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> io::Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(invalid(&format!("bad bool byte {other}"))),
        }
    }
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u64).to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn encode_dtype(out: &mut Vec<u8>, dtype: DType) {
    out.push(match dtype {
        DType::F16 => 0,
        DType::Bf16 => 1,
        DType::F32 => 2,
        DType::I8 => 3,
    });
}

fn decode_dtype(r: &mut Reader<'_>) -> io::Result<DType> {
    match r.u8()? {
        0 => Ok(DType::F16),
        1 => Ok(DType::Bf16),
        2 => Ok(DType::F32),
        3 => Ok(DType::I8),
        other => Err(invalid(&format!("bad dtype tag {other}"))),
    }
}

fn encode_gemm_shape(out: &mut Vec<u8>, s: GemmShape) {
    put_usize(out, s.m);
    put_usize(out, s.n);
    put_usize(out, s.k);
}

fn decode_gemm_shape(r: &mut Reader<'_>) -> io::Result<GemmShape> {
    Ok(GemmShape {
        m: r.usize()?,
        n: r.usize()?,
        k: r.usize()?,
    })
}

fn encode_conv_shape(out: &mut Vec<u8>, s: Conv2dShape) {
    for v in [
        s.batch,
        s.in_channels,
        s.height,
        s.width,
        s.out_channels,
        s.kernel_h,
        s.kernel_w,
        s.stride,
        s.padding,
    ] {
        put_usize(out, v);
    }
}

fn decode_conv_shape(r: &mut Reader<'_>) -> io::Result<Conv2dShape> {
    Ok(Conv2dShape {
        batch: r.usize()?,
        in_channels: r.usize()?,
        height: r.usize()?,
        width: r.usize()?,
        out_channels: r.usize()?,
        kernel_h: r.usize()?,
        kernel_w: r.usize()?,
        stride: r.usize()?,
        padding: r.usize()?,
    })
}

fn encode_operator(out: &mut Vec<u8>, op: &Operator) {
    match op {
        Operator::Gemm { shape, dtype } => {
            out.push(0);
            encode_gemm_shape(out, *shape);
            encode_dtype(out, *dtype);
        }
        Operator::BatchedGemm {
            batch,
            shape,
            dtype,
        } => {
            out.push(1);
            put_usize(out, *batch);
            encode_gemm_shape(out, *shape);
            encode_dtype(out, *dtype);
        }
        Operator::Conv2d { shape, dtype } => {
            out.push(2);
            encode_conv_shape(out, *shape);
            encode_dtype(out, *dtype);
        }
        Operator::Conv2dWinograd { shape, dtype } => {
            out.push(3);
            encode_conv_shape(out, *shape);
            encode_dtype(out, *dtype);
        }
    }
}

fn decode_operator(r: &mut Reader<'_>) -> io::Result<Operator> {
    match r.u8()? {
        0 => Ok(Operator::Gemm {
            shape: decode_gemm_shape(r)?,
            dtype: decode_dtype(r)?,
        }),
        1 => Ok(Operator::BatchedGemm {
            batch: r.usize()?,
            shape: decode_gemm_shape(r)?,
            dtype: decode_dtype(r)?,
        }),
        2 => Ok(Operator::Conv2d {
            shape: decode_conv_shape(r)?,
            dtype: decode_dtype(r)?,
        }),
        3 => Ok(Operator::Conv2dWinograd {
            shape: decode_conv_shape(r)?,
            dtype: decode_dtype(r)?,
        }),
        other => Err(invalid(&format!("bad operator tag {other}"))),
    }
}

fn encode_program(p: &CompiledProgram) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + 72 * p.regions.len());
    encode_operator(&mut out, &p.operator);
    encode_gemm_shape(&mut out, p.view.shape);
    encode_dtype(&mut out, p.view.dtype);
    put_f64(&mut out, p.view.load_scale);
    out.push(p.pattern.0);
    put_usize(&mut out, p.split_k);
    put_f64(&mut out, p.predicted_ns);
    put_usize(&mut out, p.stats.strategies_evaluated);
    put_usize(&mut out, p.stats.strategies_pruned);
    put_usize(&mut out, p.stats.patterns_tried);
    out.extend_from_slice(&p.stats.search_ns.to_le_bytes());
    put_usize(&mut out, p.stats.shortlist_truncated);
    put_usize(&mut out, p.stats.budget_exhausted);
    put_usize(&mut out, p.stats.escalations);
    out.push(u8::from(p.stats.refined));
    out.push(u8::from(p.stats.degraded));
    put_usize(&mut out, p.regions.len());
    for region in &p.regions {
        for v in [region.row0, region.row1, region.col0, region.col1] {
            put_usize(&mut out, v);
        }
        let k = region.kernel;
        put_usize(&mut out, k.id.0);
        for v in [k.um, k.un, k.uk, k.warps] {
            put_usize(&mut out, v);
        }
    }
    out
}

fn decode_program(r: &mut Reader<'_>) -> io::Result<CompiledProgram> {
    let operator = decode_operator(r)?;
    let view = GemmView {
        shape: decode_gemm_shape(r)?,
        dtype: decode_dtype(r)?,
        load_scale: r.f64()?,
    };
    let pattern = PatternId(r.u8()?);
    let split_k = r.usize()?;
    let predicted_ns = r.f64()?;
    let stats = SearchStats {
        strategies_evaluated: r.usize()?,
        strategies_pruned: r.usize()?,
        patterns_tried: r.usize()?,
        search_ns: r.u128()?,
        shortlist_truncated: r.usize()?,
        budget_exhausted: r.usize()?,
        escalations: r.usize()?,
        refined: r.bool()?,
        degraded: r.bool()?,
    };
    let n_regions = r.usize()?;
    // Each region record is 9 u64 fields; reject a hostile count before
    // the Vec allocation.
    if n_regions > r.remaining() / 72 {
        return Err(invalid("region list longer than the record"));
    }
    let mut regions = Vec::with_capacity(n_regions);
    for _ in 0..n_regions {
        let (row0, row1, col0, col1) = (r.usize()?, r.usize()?, r.usize()?, r.usize()?);
        let id = MicroKernelId(r.usize()?);
        let (um, un, uk, warps) = (r.usize()?, r.usize()?, r.usize()?, r.usize()?);
        if row0 >= row1 || col0 >= col1 {
            return Err(invalid("empty or inverted region rectangle"));
        }
        if um == 0 || un == 0 || uk == 0 || warps == 0 {
            return Err(invalid("zero-sized micro-kernel"));
        }
        regions.push(Region::new(
            row0,
            row1,
            col0,
            col1,
            MicroKernel::new(id, um, un, uk, warps),
        ));
    }
    Ok(CompiledProgram {
        operator,
        view,
        pattern,
        regions,
        split_k,
        predicted_ns,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program(seed: usize) -> CompiledProgram {
        let shape = GemmShape::new(64 + seed, 128 + seed, 32 + seed);
        let kernel = MicroKernel::new(MicroKernelId(seed % 7), 16, 8, 4, 2);
        CompiledProgram {
            operator: Operator::gemm(shape),
            view: GemmView {
                shape,
                dtype: DType::F16,
                load_scale: 1.0 + seed as f64 * 0.25,
            },
            pattern: PatternId((seed % 4) as u8 + 1),
            regions: vec![
                Region::new(0, shape.m, 0, 64, kernel),
                Region::new(0, shape.m, 64, shape.n, kernel),
            ],
            split_k: 1 + seed % 3,
            predicted_ns: 123.456 + seed as f64,
            stats: SearchStats {
                strategies_evaluated: seed * 10,
                strategies_pruned: seed * 3,
                patterns_tried: 4,
                search_ns: 1_000_000 + seed as u128,
                shortlist_truncated: seed % 2,
                budget_exhausted: 0,
                escalations: seed % 5,
                refined: seed.is_multiple_of(2),
                degraded: seed.is_multiple_of(3),
            },
        }
    }

    #[test]
    fn round_trips_every_operator_kind() {
        let conv = Conv2dShape::new(2, 16, 28, 28, 32, 3, 3, 1, 1);
        let mut programs: Vec<CompiledProgram> = (0..8).map(sample_program).collect();
        programs[1].operator = Operator::batched_gemm(12, GemmShape::new(64, 64, 64));
        programs[2].operator = Operator::conv2d(conv);
        programs[3].operator = Operator::conv2d_winograd(conv);
        programs[4].view.dtype = DType::Bf16;
        programs[5].view.dtype = DType::F32;
        programs[6].view.dtype = DType::I8;
        let bytes = encode_bundle(programs.iter());
        assert!(is_binary_bundle(&bytes));
        assert!(!is_legacy_json_bundle(&bytes));
        let decoded = decode_bundle(&bytes).expect("round trip");
        assert_eq!(decoded, programs);
    }

    #[test]
    fn empty_bundle_round_trips() {
        let bytes = encode_bundle(std::iter::empty());
        assert_eq!(decode_bundle(&bytes).expect("empty bundle"), vec![]);
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let programs = [sample_program(1)];
        let good = encode_bundle(programs.iter());

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(decode_bundle(&bad_magic).is_err(), "bad magic must fail");

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(
            decode_bundle(&bad_version).is_err(),
            "unknown version must fail"
        );

        for cut in [3, 10, 17, good.len() / 2, good.len() - 1] {
            assert!(
                decode_bundle(&good[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(
            decode_bundle(&trailing).is_err(),
            "trailing bytes must fail"
        );
    }

    #[test]
    fn rejects_hostile_counts_without_allocating() {
        // A bundle claiming u64::MAX records must fail fast on the index
        // bound, not attempt the allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BUNDLE_MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_bundle(&bytes).is_err());
    }

    #[test]
    fn sniffers_distinguish_formats() {
        assert!(is_legacy_json_bundle(b"  [ {\"x\": 1} ]"));
        assert!(!is_legacy_json_bundle(b"MPAC...."));
        assert!(!is_binary_bundle(b"["));
        assert!(!is_binary_bundle(b""));
    }
}
