//! Binary ahead-of-time program bundles: the warm-restart format.
//!
//! [`MikPoly::save_program_cache`](crate::MikPoly::save_program_cache)
//! originally serialized the whole cache as one `serde_json` string —
//! simple, but restart-to-warm for a production-sized cache (tens of
//! thousands of shapes) paid text parsing for every field. This module
//! replaces it with a length-prefixed binary record format:
//!
//! ```text
//! magic   b"MPAC"                          4 bytes
//! version u32 LE                           (2 for this layout; version 1
//!                                           is the implicit legacy JSON
//!                                           format)
//! count   u64 LE                           number of program records
//! index   count x u64 LE                   byte length of each record
//! records count variable-length records, concatenated in index order
//! ```
//!
//! The index header makes the bundle seekable — a loader knows every
//! record boundary after reading `16 + 8·count` bytes, so records can be
//! decoded independently (and, later, in parallel or lazily). All scalars
//! are little-endian; record fields are fixed-width, so decoding is a
//! bounds-checked copy with no text parsing and no allocation beyond the
//! program's own region vector.
//!
//! **Version story**: a loader sniffs the first bytes. `b"MPAC"` routes
//! here, where the version field gates decoding (unknown versions are
//! rejected as [`std::io::ErrorKind::InvalidData`], never misparsed). A
//! leading `[` is a legacy v1 JSON bundle and takes the old serde_json
//! path — existing saved bundles keep loading forever. Anything else is
//! rejected. New fields must bump [`FORMAT_VERSION`]; decoders for old
//! versions stay.
//!
//! **Version 3 — the checksummed format** extends the layout above with
//! end-to-end integrity:
//!
//! ```text
//! magic    b"MPAC"                         4 bytes
//! version  u32 LE                          (3)
//! count    u64 LE                          number of program records
//! index    count x u64 LE                  byte length of each record
//! records  count x (record ++ crc32 LE)    each record followed by the
//!                                           CRC32 of its own bytes
//! footer   count u64 LE                    must equal the header count
//!          crc32  u32 LE                   CRC32 of every preceding byte
//!          magic  b"CAPM"                  4 bytes
//! ```
//!
//! The per-record checksum makes *prefix salvage* possible: a torn or
//! bit-flipped bundle yields exactly the records whose bytes and checksum
//! survived, via [`salvage_bundle`] — which never errors and never
//! panics. The footer detects silent truncation of whole trailing
//! records (the strict loader treats a missing footer as damage). Writers
//! should pair [`encode_bundle`] with [`write_bytes_atomic`] so a crash
//! mid-write can never leave a half-written file under the final name.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::io;
use std::path::{Path, PathBuf};

use tensor_ir::{Conv2dShape, DType, GemmShape, GemmView, Operator};

use crate::kernel::{MicroKernel, MicroKernelId};
use crate::pattern::PatternId;
use crate::plan::{CompiledProgram, Region, SearchStats};

/// The bundle magic: first four bytes of every binary bundle.
pub const BUNDLE_MAGIC: [u8; 4] = *b"MPAC";

/// The footer magic: last four bytes of every version-3 bundle.
pub const FOOTER_MAGIC: [u8; 4] = *b"CAPM";

/// Current binary format version: the checksummed layout. Version 1 is
/// the implicit legacy JSON format (no magic, starts with `[`); version
/// 2 is the original binary layout without checksums.
pub const FORMAT_VERSION: u32 = 3;

/// The original binary layout (no per-record checksums, no footer).
/// Still decoded forever; no longer written.
pub const FORMAT_VERSION_V2: u32 = 2;

/// Byte size of the version-3 footer (count + file CRC + magic).
pub const FOOTER_LEN: usize = 16;

/// Upper bound accepted for a legacy JSON bundle. The vendored JSON
/// parser is superlinear in input size (~minutes at 10k entries, see
/// docs/cache.md), so a huge — or hostile — legacy file must not wedge
/// startup. A megabyte holds over a thousand entries, far beyond any
/// bundle the JSON writer era produced; bigger caches should be
/// re-saved in the binary format.
pub const LEGACY_JSON_MAX_BYTES: usize = 1 << 20;

/// Whether `bytes` starts like a binary bundle (any version).
pub fn is_binary_bundle(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == BUNDLE_MAGIC
}

/// Whether `bytes` starts like a legacy JSON bundle (a serde_json array).
pub fn is_legacy_json_bundle(bytes: &[u8]) -> bool {
    bytes
        .iter()
        .find(|b| !b.is_ascii_whitespace())
        .is_some_and(|b| *b == b'[')
}

/// Encodes `programs` as a version-[`FORMAT_VERSION`] checksummed bundle.
pub fn encode_bundle<'a>(programs: impl IntoIterator<Item = &'a CompiledProgram>) -> Vec<u8> {
    let records: Vec<Vec<u8>> = programs.into_iter().map(encode_program).collect();
    let body: usize = records.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(16 + 12 * records.len() + body + FOOTER_LEN);
    out.extend_from_slice(&BUNDLE_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for r in &records {
        out.extend_from_slice(&(r.len() as u64).to_le_bytes());
    }
    for r in &records {
        out.extend_from_slice(r);
        out.extend_from_slice(&crc32(r).to_le_bytes());
    }
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&out).to_le_bytes());
    out.extend_from_slice(&FOOTER_MAGIC);
    out
}

/// Encodes `programs` in the old version-2 layout (no checksums).
///
/// Only used by tests and the crash harness to prove the v2 decoder
/// stays alive; production writers always emit [`FORMAT_VERSION`].
pub fn encode_bundle_v2<'a>(programs: impl IntoIterator<Item = &'a CompiledProgram>) -> Vec<u8> {
    let records: Vec<Vec<u8>> = programs.into_iter().map(encode_program).collect();
    let body: usize = records.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(16 + 8 * records.len() + body);
    out.extend_from_slice(&BUNDLE_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION_V2.to_le_bytes());
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for r in &records {
        out.extend_from_slice(&(r.len() as u64).to_le_bytes());
    }
    for r in &records {
        out.extend_from_slice(r);
    }
    out
}

/// Decodes a binary bundle produced by [`encode_bundle`] (version 3) or
/// by the old writer ([`encode_bundle_v2`], version 2).
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::InvalidData`] on a bad magic, an
/// unknown version, any truncated/malformed record, a checksum mismatch,
/// or (v3) a missing or inconsistent footer. For best-effort recovery of
/// a damaged bundle use [`salvage_bundle`] instead.
pub fn decode_bundle(bytes: &[u8]) -> io::Result<Vec<CompiledProgram>> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != BUNDLE_MAGIC {
        return Err(invalid("not a program bundle: bad magic"));
    }
    let version = r.u32()?;
    match version {
        FORMAT_VERSION => decode_records_v3(bytes, &mut r),
        FORMAT_VERSION_V2 => decode_records_v2(&mut r),
        _ => Err(invalid(&format!(
            "unsupported bundle version {version} (this build reads {FORMAT_VERSION_V2} and {FORMAT_VERSION})"
        ))),
    }
}

/// The strict version-3 body: checksummed records, then the footer.
/// `bytes` is the whole bundle (needed for the whole-file checksum);
/// `r` sits just past the version field.
fn decode_records_v3(bytes: &[u8], r: &mut Reader<'_>) -> io::Result<Vec<CompiledProgram>> {
    let count64 = r.u64()?;
    let count = usize_from(count64)?;
    // Guard the index allocation against a hostile count before trusting
    // it: the index alone needs 8 bytes per record.
    if count > r.remaining() / 8 {
        return Err(invalid("bundle index longer than the file"));
    }
    let mut lengths = Vec::with_capacity(count);
    for _ in 0..count {
        lengths.push(usize_from(r.u64()?)?);
    }
    let mut programs = Vec::with_capacity(count);
    for (i, len) in lengths.into_iter().enumerate() {
        let record = r
            .take(len)
            .map_err(|_| invalid(&format!("record {i} truncated: wanted {len} more bytes")))?;
        let stored = r
            .u32()
            .map_err(|_| invalid(&format!("record {i} checksum truncated")))?;
        if crc32(record) != stored {
            return Err(invalid(&format!("record {i} failed its checksum")));
        }
        programs.push(decode_record(record, i)?);
    }
    let footer_count = r
        .u64()
        .map_err(|_| invalid("bundle footer truncated: record count"))?;
    if footer_count != count64 {
        return Err(invalid(&format!(
            "footer claims {footer_count} records, header claims {count64}"
        )));
    }
    // The whole-file checksum covers every byte before itself, footer
    // count included.
    let covered = bytes.len() - r.remaining();
    let stored = r
        .u32()
        .map_err(|_| invalid("bundle footer truncated: file checksum"))?;
    if crc32(&bytes[..covered]) != stored {
        return Err(invalid("bundle failed its whole-file checksum"));
    }
    if r.take(4)
        .map_err(|_| invalid("bundle footer truncated: magic"))?
        != FOOTER_MAGIC
    {
        return Err(invalid("bad footer magic"));
    }
    if r.remaining() != 0 {
        return Err(invalid(&format!(
            "bundle has {} trailing bytes after the footer",
            r.remaining()
        )));
    }
    Ok(programs)
}

/// The strict version-2 body: bare records, no checksums, no footer.
fn decode_records_v2(r: &mut Reader<'_>) -> io::Result<Vec<CompiledProgram>> {
    let count = usize_from(r.u64()?)?;
    if count > r.remaining() / 8 {
        return Err(invalid("bundle index longer than the file"));
    }
    let mut lengths = Vec::with_capacity(count);
    for _ in 0..count {
        lengths.push(usize_from(r.u64()?)?);
    }
    let mut programs = Vec::with_capacity(count);
    for (i, len) in lengths.into_iter().enumerate() {
        let record = r
            .take(len)
            .map_err(|_| invalid(&format!("record {i} truncated: wanted {len} more bytes")))?;
        programs.push(decode_record(record, i)?);
    }
    if r.remaining() != 0 {
        return Err(invalid(&format!(
            "bundle has {} trailing bytes after the last record",
            r.remaining()
        )));
    }
    Ok(programs)
}

/// Decodes one record slice, rejecting trailing bytes inside it.
fn decode_record(record: &[u8], i: usize) -> io::Result<CompiledProgram> {
    let mut rr = Reader::new(record);
    let program =
        decode_program(&mut rr).map_err(|e| invalid(&format!("record {i} malformed: {e}")))?;
    if rr.remaining() != 0 {
        return Err(invalid(&format!(
            "record {i} has {} trailing bytes",
            rr.remaining()
        )));
    }
    Ok(program)
}

/// Best-effort decoding of a possibly-damaged binary bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct SalvagedBundle {
    /// The longest prefix of records that decoded and checksummed clean.
    pub programs: Vec<CompiledProgram>,
    /// The record count the header claims, when the header was readable.
    pub claimed: Option<u64>,
    /// Whether the strict decoder accepted the whole bundle (checksums
    /// and footer included). When `true`, `programs` is the full bundle.
    pub clean: bool,
    /// The strict decoder's rejection, when `clean` is false.
    pub detail: Option<String>,
}

/// Decodes as much of `bytes` as survived: the longest valid record
/// prefix of a torn, bit-flipped, or otherwise damaged bundle.
///
/// Never errors and never panics, whatever the input — arbitrary bytes
/// yield an empty salvage with the strict decoder's rejection attached.
/// A record is kept only if its bytes are fully present, its stored
/// CRC32 matches (version 3), and it decodes with no trailing bytes;
/// the scan stops at the first record failing any of those, because
/// record boundaries downstream of damage cannot be trusted.
pub fn salvage_bundle(bytes: &[u8]) -> SalvagedBundle {
    match decode_bundle(bytes) {
        Ok(programs) => SalvagedBundle {
            claimed: Some(programs.len() as u64),
            clean: true,
            detail: None,
            programs,
        },
        Err(strict) => {
            let (programs, claimed) = salvage_prefix(bytes);
            SalvagedBundle {
                programs,
                claimed,
                clean: false,
                detail: Some(strict.to_string()),
            }
        }
    }
}

/// The record-prefix scan behind [`salvage_bundle`]: header best-effort,
/// then records in index order until the first damaged one.
fn salvage_prefix(bytes: &[u8]) -> (Vec<CompiledProgram>, Option<u64>) {
    let mut r = Reader::new(bytes);
    let with_crc = match r.take(4) {
        Ok(magic) if magic == BUNDLE_MAGIC => match r.u32() {
            Ok(FORMAT_VERSION) => true,
            Ok(FORMAT_VERSION_V2) => false,
            _ => return (Vec::new(), None),
        },
        _ => return (Vec::new(), None),
    };
    let Ok(count64) = r.u64() else {
        return (Vec::new(), None);
    };
    let claimed = Some(count64);
    let Ok(count) = usize_from(count64) else {
        return (Vec::new(), claimed);
    };
    // A count beyond what the file could index means the count itself is
    // damaged — record boundaries are unknowable, salvage nothing.
    if count > r.remaining() / 8 {
        return (Vec::new(), claimed);
    }
    let mut lengths = Vec::with_capacity(count);
    for _ in 0..count {
        match r.u64().map(usize_from) {
            Ok(Ok(len)) => lengths.push(len),
            _ => return (Vec::new(), claimed),
        }
    }
    let mut programs = Vec::new();
    for len in lengths {
        let Ok(record) = r.take(len) else { break };
        if with_crc {
            let Ok(stored) = r.u32() else { break };
            if crc32(record) != stored {
                break;
            }
        }
        let mut rr = Reader::new(record);
        let Ok(program) = decode_program(&mut rr) else {
            break;
        };
        if rr.remaining() != 0 {
            break;
        }
        programs.push(program);
    }
    (programs, claimed)
}

/// Absolute end offset (exclusive, checksum included) of each record in
/// an intact version-3 bundle.
///
/// The crash harness uses this as the salvage oracle: truncating the
/// bundle at byte offset `t` must salvage exactly the records with
/// `end <= t`.
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::InvalidData`] unless `bytes` carries a
/// well-formed version-3 header and index.
pub fn record_end_offsets(bytes: &[u8]) -> io::Result<Vec<usize>> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != BUNDLE_MAGIC {
        return Err(invalid("not a program bundle: bad magic"));
    }
    if r.u32()? != FORMAT_VERSION {
        return Err(invalid("record offsets need a version-3 bundle"));
    }
    let count = usize_from(r.u64()?)?;
    if count > r.remaining() / 8 {
        return Err(invalid("bundle index longer than the file"));
    }
    let mut pos = 16 + 8 * count;
    let mut ends = Vec::with_capacity(count);
    for _ in 0..count {
        pos += usize_from(r.u64()?)? + 4;
        ends.push(pos);
    }
    Ok(ends)
}

/// CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
/// stamped on every version-3 record and bundle. Implemented here so the
/// format needs no external dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

const CRC32_TABLE: [u32; 256] = build_crc32_table();

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Writes `bytes` to `path` through the crash-safe protocol: a hidden
/// temp file in the same directory, `fsync`, atomic rename over the
/// final name, then a best-effort directory `fsync` so the rename itself
/// is durable. A crash at any point leaves either the old file intact or
/// the new file complete — never a torn file under the final name.
///
/// # Errors
///
/// Any I/O error from create/write/sync/rename; the temp file is removed
/// on a failed rename.
pub fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write as _;
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let dir: PathBuf = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    // Directory fsync makes the rename durable. Not all platforms allow
    // opening a directory for sync; treat failure as best-effort.
    if let Ok(d) = std::fs::File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn usize_from(v: u64) -> io::Result<usize> {
    usize::try_from(v).map_err(|_| invalid("length overflows usize"))
}

/// A bounds-checked little-endian cursor.
struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes }
    }

    fn remaining(&self) -> usize {
        self.bytes.len()
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if n > self.bytes.len() {
            return Err(invalid("unexpected end of bundle"));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn u128(&mut self) -> io::Result<u128> {
        let mut b = [0u8; 16];
        b.copy_from_slice(self.take(16)?);
        Ok(u128::from_le_bytes(b))
    }

    fn usize(&mut self) -> io::Result<usize> {
        usize_from(self.u64()?)
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> io::Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(invalid(&format!("bad bool byte {other}"))),
        }
    }
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u64).to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn encode_dtype(out: &mut Vec<u8>, dtype: DType) {
    out.push(match dtype {
        DType::F16 => 0,
        DType::Bf16 => 1,
        DType::F32 => 2,
        DType::I8 => 3,
    });
}

fn decode_dtype(r: &mut Reader<'_>) -> io::Result<DType> {
    match r.u8()? {
        0 => Ok(DType::F16),
        1 => Ok(DType::Bf16),
        2 => Ok(DType::F32),
        3 => Ok(DType::I8),
        other => Err(invalid(&format!("bad dtype tag {other}"))),
    }
}

fn encode_gemm_shape(out: &mut Vec<u8>, s: GemmShape) {
    put_usize(out, s.m);
    put_usize(out, s.n);
    put_usize(out, s.k);
}

fn decode_gemm_shape(r: &mut Reader<'_>) -> io::Result<GemmShape> {
    Ok(GemmShape {
        m: r.usize()?,
        n: r.usize()?,
        k: r.usize()?,
    })
}

fn encode_conv_shape(out: &mut Vec<u8>, s: Conv2dShape) {
    for v in [
        s.batch,
        s.in_channels,
        s.height,
        s.width,
        s.out_channels,
        s.kernel_h,
        s.kernel_w,
        s.stride,
        s.padding,
    ] {
        put_usize(out, v);
    }
}

fn decode_conv_shape(r: &mut Reader<'_>) -> io::Result<Conv2dShape> {
    Ok(Conv2dShape {
        batch: r.usize()?,
        in_channels: r.usize()?,
        height: r.usize()?,
        width: r.usize()?,
        out_channels: r.usize()?,
        kernel_h: r.usize()?,
        kernel_w: r.usize()?,
        stride: r.usize()?,
        padding: r.usize()?,
    })
}

fn encode_operator(out: &mut Vec<u8>, op: &Operator) {
    match op {
        Operator::Gemm { shape, dtype } => {
            out.push(0);
            encode_gemm_shape(out, *shape);
            encode_dtype(out, *dtype);
        }
        Operator::BatchedGemm {
            batch,
            shape,
            dtype,
        } => {
            out.push(1);
            put_usize(out, *batch);
            encode_gemm_shape(out, *shape);
            encode_dtype(out, *dtype);
        }
        Operator::Conv2d { shape, dtype } => {
            out.push(2);
            encode_conv_shape(out, *shape);
            encode_dtype(out, *dtype);
        }
        Operator::Conv2dWinograd { shape, dtype } => {
            out.push(3);
            encode_conv_shape(out, *shape);
            encode_dtype(out, *dtype);
        }
    }
}

fn decode_operator(r: &mut Reader<'_>) -> io::Result<Operator> {
    match r.u8()? {
        0 => Ok(Operator::Gemm {
            shape: decode_gemm_shape(r)?,
            dtype: decode_dtype(r)?,
        }),
        1 => Ok(Operator::BatchedGemm {
            batch: r.usize()?,
            shape: decode_gemm_shape(r)?,
            dtype: decode_dtype(r)?,
        }),
        2 => Ok(Operator::Conv2d {
            shape: decode_conv_shape(r)?,
            dtype: decode_dtype(r)?,
        }),
        3 => Ok(Operator::Conv2dWinograd {
            shape: decode_conv_shape(r)?,
            dtype: decode_dtype(r)?,
        }),
        other => Err(invalid(&format!("bad operator tag {other}"))),
    }
}

fn encode_program(p: &CompiledProgram) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + 72 * p.regions.len());
    encode_operator(&mut out, &p.operator);
    encode_gemm_shape(&mut out, p.view.shape);
    encode_dtype(&mut out, p.view.dtype);
    put_f64(&mut out, p.view.load_scale);
    out.push(p.pattern.0);
    put_usize(&mut out, p.split_k);
    put_f64(&mut out, p.predicted_ns);
    put_usize(&mut out, p.stats.strategies_evaluated);
    put_usize(&mut out, p.stats.strategies_pruned);
    put_usize(&mut out, p.stats.patterns_tried);
    out.extend_from_slice(&p.stats.search_ns.to_le_bytes());
    put_usize(&mut out, p.stats.shortlist_truncated);
    put_usize(&mut out, p.stats.budget_exhausted);
    put_usize(&mut out, p.stats.escalations);
    out.push(u8::from(p.stats.refined));
    out.push(u8::from(p.stats.degraded));
    put_usize(&mut out, p.regions.len());
    for region in &p.regions {
        for v in [region.row0, region.row1, region.col0, region.col1] {
            put_usize(&mut out, v);
        }
        let k = region.kernel;
        put_usize(&mut out, k.id.0);
        for v in [k.um, k.un, k.uk, k.warps] {
            put_usize(&mut out, v);
        }
    }
    out
}

fn decode_program(r: &mut Reader<'_>) -> io::Result<CompiledProgram> {
    let operator = decode_operator(r)?;
    let view = GemmView {
        shape: decode_gemm_shape(r)?,
        dtype: decode_dtype(r)?,
        load_scale: r.f64()?,
    };
    let pattern = PatternId(r.u8()?);
    let split_k = r.usize()?;
    let predicted_ns = r.f64()?;
    let stats = SearchStats {
        strategies_evaluated: r.usize()?,
        strategies_pruned: r.usize()?,
        patterns_tried: r.usize()?,
        search_ns: r.u128()?,
        shortlist_truncated: r.usize()?,
        budget_exhausted: r.usize()?,
        escalations: r.usize()?,
        refined: r.bool()?,
        degraded: r.bool()?,
    };
    let n_regions = r.usize()?;
    // Each region record is 9 u64 fields; reject a hostile count before
    // the Vec allocation.
    if n_regions > r.remaining() / 72 {
        return Err(invalid("region list longer than the record"));
    }
    let mut regions = Vec::with_capacity(n_regions);
    for _ in 0..n_regions {
        let (row0, row1, col0, col1) = (r.usize()?, r.usize()?, r.usize()?, r.usize()?);
        let id = MicroKernelId(r.usize()?);
        let (um, un, uk, warps) = (r.usize()?, r.usize()?, r.usize()?, r.usize()?);
        if row0 >= row1 || col0 >= col1 {
            return Err(invalid("empty or inverted region rectangle"));
        }
        if um == 0 || un == 0 || uk == 0 || warps == 0 {
            return Err(invalid("zero-sized micro-kernel"));
        }
        regions.push(Region::new(
            row0,
            row1,
            col0,
            col1,
            MicroKernel::new(id, um, un, uk, warps),
        ));
    }
    Ok(CompiledProgram {
        operator,
        view,
        pattern,
        regions,
        split_k,
        predicted_ns,
        stats,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn sample_program(seed: usize) -> CompiledProgram {
        let shape = GemmShape::new(64 + seed, 128 + seed, 32 + seed);
        let kernel = MicroKernel::new(MicroKernelId(seed % 7), 16, 8, 4, 2);
        CompiledProgram {
            operator: Operator::gemm(shape),
            view: GemmView {
                shape,
                dtype: DType::F16,
                load_scale: 1.0 + seed as f64 * 0.25,
            },
            pattern: PatternId((seed % 4) as u8 + 1),
            regions: vec![
                Region::new(0, shape.m, 0, 64, kernel),
                Region::new(0, shape.m, 64, shape.n, kernel),
            ],
            split_k: 1 + seed % 3,
            predicted_ns: 123.456 + seed as f64,
            stats: SearchStats {
                strategies_evaluated: seed * 10,
                strategies_pruned: seed * 3,
                patterns_tried: 4,
                search_ns: 1_000_000 + seed as u128,
                shortlist_truncated: seed % 2,
                budget_exhausted: 0,
                escalations: seed % 5,
                refined: seed.is_multiple_of(2),
                degraded: seed.is_multiple_of(3),
            },
        }
    }

    #[test]
    fn round_trips_every_operator_kind() {
        let conv = Conv2dShape::new(2, 16, 28, 28, 32, 3, 3, 1, 1);
        let mut programs: Vec<CompiledProgram> = (0..8).map(sample_program).collect();
        programs[1].operator = Operator::batched_gemm(12, GemmShape::new(64, 64, 64));
        programs[2].operator = Operator::conv2d(conv);
        programs[3].operator = Operator::conv2d_winograd(conv);
        programs[4].view.dtype = DType::Bf16;
        programs[5].view.dtype = DType::F32;
        programs[6].view.dtype = DType::I8;
        let bytes = encode_bundle(programs.iter());
        assert!(is_binary_bundle(&bytes));
        assert!(!is_legacy_json_bundle(&bytes));
        let decoded = decode_bundle(&bytes).expect("round trip");
        assert_eq!(decoded, programs);
    }

    #[test]
    fn empty_bundle_round_trips() {
        let bytes = encode_bundle(std::iter::empty());
        assert_eq!(decode_bundle(&bytes).expect("empty bundle"), vec![]);
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let programs = [sample_program(1)];
        let good = encode_bundle(programs.iter());

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(decode_bundle(&bad_magic).is_err(), "bad magic must fail");

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(
            decode_bundle(&bad_version).is_err(),
            "unknown version must fail"
        );

        for cut in [3, 10, 17, good.len() / 2, good.len() - 1] {
            assert!(
                decode_bundle(&good[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(
            decode_bundle(&trailing).is_err(),
            "trailing bytes must fail"
        );
    }

    #[test]
    fn rejects_hostile_counts_without_allocating() {
        // A bundle claiming u64::MAX records must fail fast on the index
        // bound, not attempt the allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BUNDLE_MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_bundle(&bytes).is_err());
    }

    #[test]
    fn sniffers_distinguish_formats() {
        assert!(is_legacy_json_bundle(b"  [ {\"x\": 1} ]"));
        assert!(!is_legacy_json_bundle(b"MPAC...."));
        assert!(!is_binary_bundle(b"["));
        assert!(!is_binary_bundle(b""));
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn version_2_bundles_still_load() {
        let programs: Vec<CompiledProgram> = (0..5).map(sample_program).collect();
        let v2 = encode_bundle_v2(programs.iter());
        assert_eq!(u32::from_le_bytes([v2[4], v2[5], v2[6], v2[7]]), 2);
        assert_eq!(decode_bundle(&v2).expect("v2 decodes"), programs);
        let salvage = salvage_bundle(&v2);
        assert!(salvage.clean);
        assert_eq!(salvage.programs, programs);
    }

    #[test]
    fn strict_decoder_rejects_checksum_damage() {
        let programs: Vec<CompiledProgram> = (0..3).map(sample_program).collect();
        let good = encode_bundle(programs.iter());
        let ends = record_end_offsets(&good).expect("offsets");
        // Flip one bit inside record 1's bytes.
        let mut flipped = good.clone();
        flipped[ends[0] + 2] ^= 0x40;
        assert!(decode_bundle(&flipped).is_err(), "bit flip must be caught");
        // Flip one bit inside the footer's file checksum.
        let mut footer = good.clone();
        let n = footer.len();
        footer[n - 6] ^= 0x01;
        assert!(
            decode_bundle(&footer).is_err(),
            "footer flip must be caught"
        );
    }

    #[test]
    fn salvage_recovers_the_exact_prefix_under_truncation() {
        let programs: Vec<CompiledProgram> = (0..4).map(sample_program).collect();
        let good = encode_bundle(programs.iter());
        let ends = record_end_offsets(&good).expect("offsets");
        for cut in 0..good.len() {
            let salvage = salvage_bundle(&good[..cut]);
            let expected = ends.iter().take_while(|&&e| e <= cut).count();
            assert!(!salvage.clean, "a truncated bundle is never clean");
            assert_eq!(
                salvage.programs.len(),
                expected,
                "truncation at {cut} must salvage exactly the valid prefix"
            );
            assert_eq!(salvage.programs[..], programs[..expected]);
        }
        assert!(salvage_bundle(&good).clean, "intact bundle is clean");
    }

    #[test]
    fn salvage_stops_at_the_first_flipped_record() {
        let programs: Vec<CompiledProgram> = (0..4).map(sample_program).collect();
        let good = encode_bundle(programs.iter());
        let ends = record_end_offsets(&good).expect("offsets");
        // Damage record 2: everything before it salvages, nothing after.
        let mut bytes = good.clone();
        bytes[ends[1] + 5] ^= 0x80;
        let salvage = salvage_bundle(&bytes);
        assert!(!salvage.clean);
        assert_eq!(salvage.programs, programs[..2].to_vec());
        assert_eq!(salvage.claimed, Some(4));
    }

    #[test]
    fn salvage_never_panics_on_arbitrary_bytes() {
        for bytes in [
            &b""[..],
            b"MPAC",
            b"MPAC\x03\x00\x00\x00",
            b"not a bundle at all",
            b"[{\"json\": true}]",
            &[0xFFu8; 64][..],
        ] {
            let salvage = salvage_bundle(bytes);
            assert!(!salvage.clean);
            assert!(salvage.programs.is_empty());
            assert!(salvage.detail.is_some());
        }
    }

    #[test]
    fn atomic_write_round_trips_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join(format!("mpac-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("bundle.mpac");
        let programs: Vec<CompiledProgram> = (0..2).map(sample_program).collect();
        let bytes = encode_bundle(programs.iter());
        write_bytes_atomic(&path, &bytes).expect("atomic write");
        assert_eq!(std::fs::read(&path).expect("read back"), bytes);
        // Overwrite in place: the old file must be replaced atomically.
        let rewritten = encode_bundle(programs[..1].iter());
        write_bytes_atomic(&path, &rewritten).expect("atomic rewrite");
        assert_eq!(std::fs::read(&path).expect("read back"), rewritten);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("list dir")
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive success");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
