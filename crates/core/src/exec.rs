//! Functional execution of compiled programs.
//!
//! The simulator only times a polymerized program; this module *computes*
//! it, tile by tile, exactly as the emitted regions prescribe — including
//! local padding (out-of-bounds operand reads see zero, out-of-bounds
//! writes are suppressed). Running a compiled program here and comparing
//! against [`tensor_ir::reference_gemm`] verifies that polymerization
//! produced a correct program for the runtime shape, the property DietCode
//! loses outside its declared ranges (Table 5's "invalid runs").

use tensor_ir::{filter_as_matrix, im2col, Conv2dShape, Operator, Tensor};

use crate::plan::CompiledProgram;

/// Executes a compiled GEMM program on `A [M,K]` and `B [K,N]`, returning
/// `C [M,N]`.
///
/// # Panics
///
/// Panics if the program is not a GEMM (or batched GEMM flattened to one),
/// if operand shapes do not match the program's view, or if the program's
/// regions do not exactly cover the output.
pub fn execute_gemm(program: &CompiledProgram, a: &Tensor, b: &Tensor) -> Tensor {
    let shape = program.view.shape;
    assert_eq!(a.dims(), &[shape.m, shape.k], "A must be M x K");
    assert_eq!(b.dims(), &[shape.k, shape.n], "B must be K x N");
    program
        .verify_coverage()
        .expect("compiled program must cover the output exactly");

    let mut c = Tensor::zeros(&[shape.m, shape.n]);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let c_data = c.as_mut_slice();
    let (kdim, ndim) = (shape.k, shape.n);

    for region in &program.regions {
        let kern = region.kernel;
        // Tile grid with local padding: tiles start on kernel boundaries
        // relative to the region origin; reads/writes are clipped to the
        // region (writes) and the operand extents (reads).
        let mut r0 = region.row0;
        while r0 < region.row1 {
            let r1 = (r0 + kern.um).min(region.row1);
            let mut c0 = region.col0;
            while c0 < region.col1 {
                let c1 = (c0 + kern.un).min(region.col1);
                // The pipelined task: iterate the reduction in uK slices.
                let mut k0 = 0usize;
                while k0 < kdim {
                    let k1 = (k0 + kern.uk).min(kdim);
                    for i in r0..r1 {
                        for p in k0..k1 {
                            let av = a_data[i * kdim + p];
                            if av == 0.0 {
                                continue;
                            }
                            let brow = &b_data[p * ndim + c0..p * ndim + c1];
                            let crow = &mut c_data[i * ndim + c0..i * ndim + c1];
                            for (cv, bv) in crow.iter_mut().zip(brow) {
                                *cv += av * bv;
                            }
                        }
                    }
                    k0 = k1;
                }
                c0 = c1;
            }
            r0 = r1;
        }
    }
    c
}

/// Executes a compiled convolution program on an NCHW `input` and OIHW
/// `filter`, returning the NCHW output.
///
/// The implicit-GEMM route of the paper: im2col the input, reshape the
/// filter, run the polymerized GEMM, fold the `[M, N]` result back to
/// `[batch, out_channels, out_h, out_w]`.
///
/// # Panics
///
/// Panics if the program's operator is not this convolution or operand
/// shapes mismatch.
pub fn execute_conv2d(program: &CompiledProgram, input: &Tensor, filter: &Tensor) -> Tensor {
    let shape = match program.operator {
        Operator::Conv2d { shape, .. } => shape,
        ref other => panic!("execute_conv2d requires a conv2d program, got {other}"),
    };
    let a = im2col(shape, input);
    let b = filter_as_matrix(shape, filter);
    let c = execute_gemm(program, &a, &b);
    fold_conv_output(shape, &c)
}

/// Rearranges the `[batch * out_h * out_w, out_channels]` GEMM output into
/// NCHW.
fn fold_conv_output(shape: Conv2dShape, c: &Tensor) -> Tensor {
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let n = shape.out_channels;
    let src = c.as_slice();
    let mut out = Tensor::zeros(&[shape.batch, shape.out_channels, oh, ow]);
    let dst = out.as_mut_slice();
    for b in 0..shape.batch {
        for oc in 0..n {
            for y in 0..oh {
                for x in 0..ow {
                    let row = (b * oh + y) * ow + x;
                    dst[((b * n + oc) * oh + y) * ow + x] = src[row * n + oc];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModelKind;
    use crate::offline::{MicroKernelLibrary, OfflineOptions};
    use crate::pattern::gpu_patterns;
    use crate::search::{polymerize, SearchPolicy};
    use accel_sim::MachineModel;
    use tensor_ir::{reference_conv2d, reference_gemm, GemmShape};

    fn lib() -> (MachineModel, MicroKernelLibrary) {
        let m = MachineModel::a100();
        let mut o = OfflineOptions::fast();
        o.n_gen = 4;
        (m.clone(), MicroKernelLibrary::generate(&m, &o))
    }

    fn compile(m: &MachineModel, l: &MicroKernelLibrary, op: Operator) -> CompiledProgram {
        polymerize(
            m,
            l,
            &op.gemm_view(),
            op,
            &gpu_patterns(),
            CostModelKind::Full,
            true,
            &SearchPolicy::default(),
        )
    }

    #[test]
    fn polymerized_gemm_matches_reference() {
        let (m, l) = lib();
        for &(mm, nn, kk) in &[(64, 64, 64), (100, 70, 33), (1, 130, 7), (257, 33, 96)] {
            let shape = GemmShape::new(mm, nn, kk);
            let prog = compile(&m, &l, Operator::gemm(shape));
            let a = Tensor::random(&[mm, kk], 1);
            let b = Tensor::random(&[kk, nn], 2);
            let got = execute_gemm(&prog, &a, &b);
            let want = reference_gemm(shape, &a, &b);
            mikpoly_conformance::assert_matches_reference(
                &got,
                &want,
                &format!("gemm ({mm},{nn},{kk})"),
            );
        }
    }

    #[test]
    fn polymerized_conv_matches_reference() {
        let (m, l) = lib();
        let shape = Conv2dShape::new(2, 5, 9, 9, 7, 3, 3, 1, 1);
        let prog = compile(&m, &l, Operator::conv2d(shape));
        let input = Tensor::random(&[2, 5, 9, 9], 3);
        let filter = Tensor::random(&[7, 5, 3, 3], 4);
        let got = execute_conv2d(&prog, &input, &filter);
        let want = reference_conv2d(shape, &input, &filter);
        mikpoly_conformance::assert_matches_reference(&got, &want, &format!("{shape}"));
    }

    #[test]
    #[should_panic(expected = "A must be M x K")]
    fn mismatched_operands_rejected() {
        let (m, l) = lib();
        let prog = compile(&m, &l, Operator::gemm(GemmShape::new(8, 8, 8)));
        let a = Tensor::zeros(&[4, 8]);
        let b = Tensor::zeros(&[8, 8]);
        let _ = execute_gemm(&prog, &a, &b);
    }

    #[test]
    #[should_panic(expected = "requires a conv2d program")]
    fn conv_executor_rejects_winograd_program() {
        // The Winograd path runs through the GEMM template and its own
        // transform-domain execution, not the im2col executor.
        let (m, l) = lib();
        let shape = Conv2dShape::new(1, 4, 8, 8, 4, 3, 3, 1, 1);
        let prog = compile(&m, &l, Operator::conv2d_winograd(shape));
        let t = Tensor::zeros(&[1, 4, 8, 8]);
        let f = Tensor::zeros(&[4, 4, 3, 3]);
        let _ = execute_conv2d(&prog, &t, &f);
    }

    #[test]
    #[should_panic(expected = "requires a conv2d program")]
    fn conv_executor_rejects_gemm_program() {
        let (m, l) = lib();
        let prog = compile(&m, &l, Operator::gemm(GemmShape::new(8, 8, 8)));
        let t = Tensor::zeros(&[1, 1, 4, 4]);
        let _ = execute_conv2d(&prog, &t, &t);
    }
}
