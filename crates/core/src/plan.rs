//! Compiled tensor programs: the output of on-the-fly polymerization.

use serde::{Deserialize, Serialize};

use accel_sim::{Launch, MachineModel, TaskGroup};
use tensor_ir::{GemmView, Operator};

use crate::kernel::MicroKernel;
use crate::pattern::PatternId;

/// A rectangular output region computed by one micro-kernel.
///
/// Rows `[row0, row1)` and columns `[col0, col1)` of the operator's output
/// are covered by a grid of `kernel`-sized tiles; partial tiles at the edges
/// are handled by local padding (the kernel computes a full tile, reads of
/// out-of-bounds operand elements return zero, and out-of-bounds writes are
/// suppressed), exactly as in CUTLASS and the paper's Section 3.4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// First output row covered.
    pub row0: usize,
    /// One past the last output row covered.
    pub row1: usize,
    /// First output column covered.
    pub col0: usize,
    /// One past the last output column covered.
    pub col1: usize,
    /// The micro-kernel instantiated for this region.
    pub kernel: MicroKernel,
}

impl Region {
    /// Creates a region.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is empty or inverted.
    pub fn new(row0: usize, row1: usize, col0: usize, col1: usize, kernel: MicroKernel) -> Self {
        assert!(row0 < row1 && col0 < col1, "region must be non-empty");
        Self {
            row0,
            row1,
            col0,
            col1,
            kernel,
        }
    }

    /// Rows covered.
    pub fn rows(&self) -> usize {
        self.row1 - self.row0
    }

    /// Columns covered.
    pub fn cols(&self) -> usize {
        self.col1 - self.col0
    }

    /// Number of pipelined tasks (`f_parallel` of Eq. 3: the non-reduction
    /// loops of the region, with local padding).
    pub fn tasks(&self) -> usize {
        self.kernel.tasks_for(self.rows(), self.cols())
    }

    /// Instances of the micro-kernel per pipelined task for reduction depth
    /// `k` (`f_num` of Eq. 4).
    pub fn instances(&self, k: usize) -> usize {
        self.kernel.instances_for(k)
    }

    /// The fraction of computed output elements that are padding.
    pub fn padding_waste(&self) -> f64 {
        let useful = (self.rows() * self.cols()) as f64;
        let padded = (self.rows().div_ceil(self.kernel.um) * self.kernel.um) as f64
            * (self.cols().div_ceil(self.kernel.un) * self.kernel.un) as f64;
        1.0 - useful / padded
    }
}

/// Statistics of one online polymerization search, reported by Fig. 12(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Complete strategies whose cost was estimated.
    pub strategies_evaluated: usize,
    /// Branches cut by the partial-cost bound.
    pub strategies_pruned: usize,
    /// Patterns attempted.
    pub patterns_tried: usize,
    /// Wall-clock nanoseconds spent polymerizing.
    pub search_ns: u128,
    /// Times a deep pattern drew from a truncated kernel shortlist.
    #[serde(default)]
    pub shortlist_truncated: usize,
    /// Search rounds that ran out of node budget before covering the
    /// strategy space.
    #[serde(default)]
    pub budget_exhausted: usize,
    /// Anytime escalation rounds taken (bounded by
    /// `SearchPolicy::max_escalations`).
    #[serde(default)]
    pub escalations: usize,
    /// Whether the occupancy-aware refinement changed the selected
    /// strategy away from the Eq. 2 pick.
    #[serde(default)]
    pub refined: bool,
    /// Whether this program came from the degraded fallback path (a
    /// single-region shortlist-top-1 plan, not a full staged search).
    #[serde(default)]
    pub degraded: bool,
}

fn default_split_k() -> usize {
    1
}

/// An optimized tensor program `S*`: the selected pattern, its regions with
/// instantiated micro-kernels, and the predicted cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledProgram {
    /// The operator this program computes.
    pub operator: Operator,
    /// Its flattened GEMM view.
    pub view: GemmView,
    /// The winning polymerization pattern.
    pub pattern: PatternId,
    /// Output regions, in band-major order.
    pub regions: Vec<Region>,
    /// Split-K ways (extension; 1 = the paper's behaviour). With `w > 1`,
    /// every task computes `1/w` of the reduction into a partial output and
    /// a memory-bound reduction launch combines the partials — the classic
    /// remedy for small-`MxN`, huge-`K` shapes whose task grids cannot fill
    /// the machine.
    #[serde(default = "default_split_k")]
    pub split_k: usize,
    /// The cost model's estimate for this program, ns.
    pub predicted_ns: f64,
    /// Search statistics.
    pub stats: SearchStats,
}

impl CompiledProgram {
    /// Total number of pipelined tasks (the `grid_size` counter),
    /// including split-K replication.
    pub fn grid_size(&self) -> usize {
        self.regions.iter().map(Region::tasks).sum::<usize>() * self.split_k.max(1)
    }

    /// Number of distinct micro-kernels used.
    pub fn kernels_used(&self) -> usize {
        let mut ids: Vec<_> = self.regions.iter().map(|r| r.kernel.id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Builds the device launch with dynamic (hardware-scheduler) placement:
    /// one task group per region, co-scheduled. With split-K, each region's
    /// grid is replicated `split_k` times with `1/split_k` of the reduction
    /// per task (the reduction launch is separate, see
    /// [`CompiledProgram::reduction_launch`]).
    pub fn launch_dynamic(&self) -> Launch {
        let k = self.view.shape.k;
        let ways = self.split_k.max(1);
        Launch::from_groups(
            self.regions
                .iter()
                .map(|r| {
                    let instances = r.instances(k).div_ceil(ways);
                    TaskGroup::new(r.kernel.task_spec(&self.view, instances), r.tasks() * ways)
                })
                .collect(),
        )
    }

    /// The memory-bound launch that sums the `split_k` partial outputs
    /// (reads `split_k` copies of the fp32 partials, writes the final
    /// output); `None` when `split_k == 1`.
    pub fn reduction_launch(&self) -> Option<Launch> {
        let ways = self.split_k.max(1);
        if ways == 1 {
            return None;
        }
        let (m, n) = (self.view.shape.m, self.view.shape.n);
        // Small tiles so even small outputs spread across the machine and
        // reach aggregate bandwidth.
        const TILE: usize = 32;
        // Generic tile accounting: charge `ways` fp32 reads of the tile per
        // instance via load_scale, plus the final write-back.
        let load_scale = (ways * TILE * TILE * 4) as f64 / (2 * TILE * 2) as f64;
        let shape = accel_sim::TaskShape {
            um: TILE,
            un: TILE,
            uk: 1,
            in_elem_bytes: 2,
            out_elem_bytes: self.view.dtype.bytes(),
            acc_elem_bytes: 4,
            load_scale,
            stages: 2,
            quality: 1.0,
        };
        let count = m.div_ceil(TILE) * n.div_ceil(TILE);
        Some(Launch::grid(accel_sim::TaskSpec::new(shape, 2, 1), count))
    }

    /// Builds the device launch with a compiler-computed static placement
    /// (the NPU path): `durations[i]` is the estimated duration of one task
    /// of region `i`, and tasks are spread with the max-min (LPT) allocator.
    ///
    /// # Panics
    ///
    /// Panics if `durations.len() != self.regions.len()`.
    pub fn launch_static(&self, machine: &MachineModel, durations: &[f64]) -> Launch {
        assert_eq!(
            durations.len(),
            self.regions.len(),
            "need one duration estimate per region"
        );
        let k = self.view.shape.k;
        let counts: Vec<usize> = self.regions.iter().map(Region::tasks).collect();
        let assignments = crate::alloc::max_min_assign(durations, &counts, machine.num_pes);
        Launch::from_groups(
            self.regions
                .iter()
                .zip(assignments)
                .map(|(r, assignment)| {
                    TaskGroup::with_assignment(
                        r.kernel.task_spec(&self.view, r.instances(k)),
                        assignment,
                    )
                })
                .collect(),
        )
    }

    /// Checks that the regions exactly partition the `M x N` output space:
    /// bands must stack contiguously over `[0, M)` and each band's segments
    /// must tile `[0, N)`.
    ///
    /// # Errors
    ///
    /// Returns a [`CoverageError`] describing the first gap or overlap.
    pub fn verify_coverage(&self) -> Result<(), CoverageError> {
        let (m, n) = (self.view.shape.m, self.view.shape.n);
        if self.regions.is_empty() {
            return Err(CoverageError::Gap { row: 0, col: 0 });
        }
        // Group regions into bands by row range, preserving order.
        let mut bands: Vec<(usize, usize, Vec<&Region>)> = Vec::new();
        for r in &self.regions {
            match bands.last_mut() {
                Some((r0, r1, list)) if *r0 == r.row0 && *r1 == r.row1 => list.push(r),
                _ => bands.push((r.row0, r.row1, vec![r])),
            }
        }
        let mut row = 0usize;
        for (r0, r1, segments) in &bands {
            if *r0 != row {
                return if *r0 > row {
                    Err(CoverageError::Gap { row, col: 0 })
                } else {
                    Err(CoverageError::Overlap { row: *r0, col: 0 })
                };
            }
            let mut col = 0usize;
            for seg in segments {
                if seg.col0 != col {
                    return if seg.col0 > col {
                        Err(CoverageError::Gap { row: *r0, col })
                    } else {
                        Err(CoverageError::Overlap {
                            row: *r0,
                            col: seg.col0,
                        })
                    };
                }
                col = seg.col1;
            }
            if col != n {
                return Err(CoverageError::Gap { row: *r0, col });
            }
            row = *r1;
        }
        if row != m {
            return Err(CoverageError::Gap { row, col: 0 });
        }
        Ok(())
    }
}

impl std::fmt::Display for CompiledProgram {
    /// Renders the polymerized program as the restructured online loops of
    /// Fig. 3: one loop nest per region, each around its instantiated
    /// fixed-size micro-kernel.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "// {} via {} (predicted {:.1} us)",
            self.operator,
            self.pattern,
            self.predicted_ns / 1e3
        )?;
        let k = self.view.shape.k;
        if self.split_k > 1 {
            writeln!(
                f,
                "// split-K x{}: each task computes 1/{} of the reduction; a \
                 memory-bound pass sums the partial outputs",
                self.split_k, self.split_k
            )?;
        }
        for (i, r) in self.regions.iter().enumerate() {
            writeln!(
                f,
                "// region R{} — {} tasks x {} instances",
                i + 1,
                r.tasks() * self.split_k.max(1),
                r.instances(k).div_ceil(self.split_k.max(1))
            )?;
            writeln!(
                f,
                "for m1 in ({}..{}).step_by({}):       // parallel",
                r.row0, r.row1, r.kernel.um
            )?;
            writeln!(
                f,
                "  for n1 in ({}..{}).step_by({}):     // parallel",
                r.col0, r.col1, r.kernel.un
            )?;
            writeln!(
                f,
                "    for k1 in (0..{k}).step_by({}):   // reduction, pipelined",
                r.kernel.uk
            )?;
            writeln!(
                f,
                "      micro_kernel_{}({}, {}, {})",
                r.kernel.id.0, r.kernel.um, r.kernel.un, r.kernel.uk
            )?;
        }
        Ok(())
    }
}

/// A defect in the region partition of a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverageError {
    /// An output element at (row, col) is computed by no region.
    Gap {
        /// Row of the first uncovered element.
        row: usize,
        /// Column of the first uncovered element.
        col: usize,
    },
    /// An output element at (row, col) is computed by multiple regions.
    Overlap {
        /// Row of the first doubly-covered element.
        row: usize,
        /// Column of the first doubly-covered element.
        col: usize,
    },
}

impl std::fmt::Display for CoverageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoverageError::Gap { row, col } => {
                write!(f, "output element ({row}, {col}) is covered by no region")
            }
            CoverageError::Overlap { row, col } => {
                write!(f, "output element ({row}, {col}) is covered more than once")
            }
        }
    }
}

impl std::error::Error for CoverageError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::MicroKernelId;
    use tensor_ir::GemmShape;

    fn mk(um: usize, un: usize, uk: usize) -> MicroKernel {
        MicroKernel::new(MicroKernelId(0), um, un, uk, 4)
    }

    fn program(m: usize, n: usize, k: usize, regions: Vec<Region>) -> CompiledProgram {
        let op = Operator::gemm(GemmShape::new(m, n, k));
        CompiledProgram {
            operator: op,
            view: op.gemm_view(),
            pattern: PatternId(2),
            regions,
            split_k: 1,
            predicted_ns: 1.0,
            stats: SearchStats::default(),
        }
    }

    #[test]
    fn region_task_accounting() {
        let r = Region::new(0, 100, 0, 100, mk(64, 64, 32));
        assert_eq!(r.tasks(), 4);
        assert_eq!(r.instances(100), 4);
        assert!(r.padding_waste() > 0.0);
        let exact = Region::new(0, 128, 0, 128, mk(64, 64, 32));
        assert_eq!(exact.padding_waste(), 0.0);
    }

    #[test]
    fn coverage_accepts_exact_band_partition() {
        let p = program(
            100,
            64,
            32,
            vec![
                Region::new(0, 64, 0, 64, mk(64, 64, 32)),
                Region::new(64, 100, 0, 64, mk(32, 64, 32)),
            ],
        );
        assert_eq!(p.verify_coverage(), Ok(()));
        assert_eq!(p.grid_size(), 1 + 2);
    }

    #[test]
    fn coverage_detects_row_gap() {
        let p = program(
            100,
            64,
            32,
            vec![
                Region::new(0, 64, 0, 64, mk(64, 64, 32)),
                Region::new(80, 100, 0, 64, mk(32, 64, 32)),
            ],
        );
        assert_eq!(
            p.verify_coverage(),
            Err(CoverageError::Gap { row: 64, col: 0 })
        );
    }

    #[test]
    fn coverage_detects_column_overlap() {
        let p = program(
            64,
            100,
            32,
            vec![
                Region::new(0, 64, 0, 64, mk(64, 64, 32)),
                Region::new(0, 64, 32, 100, mk(64, 64, 32)),
            ],
        );
        assert!(matches!(
            p.verify_coverage(),
            Err(CoverageError::Overlap { .. })
        ));
    }

    #[test]
    fn coverage_detects_missing_tail() {
        let p = program(64, 64, 32, vec![Region::new(0, 48, 0, 64, mk(16, 64, 32))]);
        assert_eq!(
            p.verify_coverage(),
            Err(CoverageError::Gap { row: 48, col: 0 })
        );
    }

    #[test]
    fn dynamic_launch_has_one_group_per_region() {
        let p = program(
            128,
            128,
            64,
            vec![
                Region::new(0, 64, 0, 128, mk(64, 64, 32)),
                Region::new(64, 128, 0, 128, mk(64, 64, 32)),
            ],
        );
        let launch = p.launch_dynamic();
        assert_eq!(launch.groups.len(), 2);
        assert_eq!(launch.grid_size(), p.grid_size());
        // All instances cover the full K extent.
        assert_eq!(launch.groups[0].spec.instances, 2);
    }

    #[test]
    fn static_launch_assigns_every_task() {
        let machine = MachineModel::ascend910a();
        let p = program(
            256,
            256,
            64,
            vec![
                Region::new(0, 128, 0, 256, mk(64, 64, 64)),
                Region::new(128, 256, 0, 256, mk(64, 64, 64)),
            ],
        );
        let launch = p.launch_static(&machine, &[100.0, 100.0]);
        for g in &launch.groups {
            let a = g.assignment.as_ref().expect("static launch must assign");
            assert_eq!(a.len(), g.count);
            assert!(a.iter().all(|&pe| pe < machine.num_pes));
        }
    }

    #[test]
    fn display_renders_one_loop_nest_per_region() {
        let p = program(
            100,
            64,
            32,
            vec![
                Region::new(0, 64, 0, 64, mk(64, 64, 32)),
                Region::new(64, 100, 0, 64, mk(32, 64, 32)),
            ],
        );
        let s = p.to_string();
        assert_eq!(s.matches("micro_kernel_").count(), 2);
        assert!(s.contains("region R1"));
        assert!(s.contains("reduction, pipelined"));
        assert!(s.contains("for m1 in (64..100).step_by(32)"));
    }

    #[test]
    fn split_k_scales_launch_and_rendering() {
        let mut p = program(
            64,
            64,
            4096,
            vec![Region::new(0, 64, 0, 64, mk(64, 64, 32))],
        );
        assert!(p.reduction_launch().is_none());
        p.split_k = 4;
        let launch = p.launch_dynamic();
        assert_eq!(launch.groups[0].count, 4);
        assert_eq!(launch.groups[0].spec.instances, 32);
        assert_eq!(p.grid_size(), 4);
        let reduction = p.reduction_launch().expect("split-K needs a reduction");
        assert_eq!(reduction.grid_size(), 2 * 2);
        let rendered = p.to_string();
        assert!(rendered.contains("split-K x4"), "{rendered}");
    }

    #[test]
    fn kernels_used_deduplicates() {
        let p = program(
            128,
            64,
            32,
            vec![
                Region::new(0, 64, 0, 64, mk(64, 64, 32)),
                Region::new(64, 128, 0, 64, mk(64, 64, 32)),
            ],
        );
        assert_eq!(p.kernels_used(), 1);
    }
}
