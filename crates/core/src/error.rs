//! The typed error taxonomy of the fault-tolerant online path.
//!
//! Every fallible step of the serving pipeline — admission, online
//! polymerization, cache validation, device execution — reports one of
//! these variants instead of panicking, so the serving runtime can map
//! each failure to a disposition (degrade, retry, shed, fail) without
//! string-matching panic payloads. The infallible `compile`/`polymerize`
//! entry points remain for callers that configured no deadlines and no
//! fault injection; they are thin wrappers that treat any error as the
//! logic bug it would be in that configuration.

use tensor_ir::Operator;

/// Why an online compilation or serving step failed.
#[derive(Debug, Clone, PartialEq)]
pub enum MikPolyError {
    /// The compile deadline expired before the search produced any
    /// feasible strategy (with an incumbent in hand the search returns it
    /// instead of this error).
    DeadlineExceeded {
        /// The operator being compiled when the deadline hit.
        operator: Operator,
    },
    /// The micro-kernel library holds no kernel usable for this view —
    /// possible only with a foreign or truncated library.
    NoFeasibleStrategy {
        /// The operator with no feasible strategy.
        operator: Operator,
    },
    /// Device execution faulted and every retry faulted too.
    DeviceFault {
        /// Device index the request was bound to.
        device: usize,
        /// Execution attempts made (1 + retries).
        attempts: u32,
    },
    /// A cached program failed validation (corrupted entry) and the
    /// recompile after eviction was still invalid.
    CachePoisoned {
        /// The operator whose cache entry was poisoned.
        operator: Operator,
        /// Validation-and-recompile attempts made.
        attempts: u32,
    },
    /// Admission control rejected the request (bounded queue full).
    QueueRejected {
        /// Waiting requests at rejection time.
        depth: usize,
        /// The queue bound.
        capacity: usize,
    },
    /// A compilation panicked; the panic was isolated at the worker
    /// boundary and converted into this error.
    CompilePanicked {
        /// The panic payload, when it was a string.
        reason: String,
    },
    /// The compiled program produced a device launch the simulator
    /// rejected (warp cap, `M_local`, malformed static placement, or an
    /// admission deadlock). Reported as a value so a malformed launch
    /// cannot take a serving worker down outside its `catch_unwind`
    /// boundary.
    MalformedLaunch {
        /// The simulator's typed rejection.
        source: accel_sim::SimError,
    },
    /// A durable warm-state directory failed its checksum/validation
    /// ladder on restore. Distinct from *absent* state (a cold start,
    /// which is not an error): damage may still have yielded a salvaged
    /// prefix, with the corrupt originals quarantined — the carried
    /// report says exactly what happened per bundle
    /// (see [`crate::RestoreReport`]).
    WarmStateDamaged {
        /// The rendered per-bundle restore report.
        report: String,
    },
}

impl std::fmt::Display for MikPolyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MikPolyError::DeadlineExceeded { operator } => {
                write!(f, "compile deadline exceeded for {operator}")
            }
            MikPolyError::NoFeasibleStrategy { operator } => {
                write!(f, "no feasible polymerization strategy for {operator}")
            }
            MikPolyError::DeviceFault { device, attempts } => {
                write!(f, "device {device} faulted on all {attempts} attempts")
            }
            MikPolyError::CachePoisoned { operator, attempts } => write!(
                f,
                "cache entry for {operator} failed validation {attempts} times"
            ),
            MikPolyError::QueueRejected { depth, capacity } => {
                write!(f, "queue full ({depth} waiting, capacity {capacity})")
            }
            MikPolyError::CompilePanicked { reason } => {
                write!(f, "compilation panicked: {reason}")
            }
            MikPolyError::MalformedLaunch { source } => {
                write!(f, "malformed device launch: {source}")
            }
            MikPolyError::WarmStateDamaged { report } => {
                write!(f, "warm state damaged:\n{report}")
            }
        }
    }
}

impl std::error::Error for MikPolyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MikPolyError::MalformedLaunch { source } => Some(source),
            _ => None,
        }
    }
}

/// Renders a `catch_unwind` payload as the human-readable reason it
/// usually carries (panics raised via `panic!("...")` are `String` or
/// `&str` payloads).
pub fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::GemmShape;

    #[test]
    fn errors_display_their_context() {
        let op = Operator::gemm(GemmShape::new(3, 4, 5));
        let cases: Vec<(MikPolyError, &str)> = vec![
            (MikPolyError::DeadlineExceeded { operator: op }, "deadline"),
            (
                MikPolyError::NoFeasibleStrategy { operator: op },
                "feasible",
            ),
            (
                MikPolyError::DeviceFault {
                    device: 2,
                    attempts: 3,
                },
                "device 2",
            ),
            (
                MikPolyError::CachePoisoned {
                    operator: op,
                    attempts: 2,
                },
                "validation",
            ),
            (
                MikPolyError::QueueRejected {
                    depth: 8,
                    capacity: 8,
                },
                "queue full",
            ),
            (
                MikPolyError::CompilePanicked {
                    reason: "boom".into(),
                },
                "boom",
            ),
            (
                MikPolyError::MalformedLaunch {
                    source: accel_sim::SimError::Deadlock { pending: 3 },
                },
                "malformed device launch",
            ),
            (
                MikPolyError::WarmStateDamaged {
                    report: "gemm: quarantined".into(),
                },
                "warm state damaged",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} missing {needle:?}");
            // All variants implement std::error::Error.
            let _: &dyn std::error::Error = &err;
        }
    }

    #[test]
    fn panic_reason_extracts_strings() {
        let caught =
            std::panic::catch_unwind(|| panic!("injected")).expect_err("closure must panic");
        assert_eq!(panic_reason(&*caught), "injected");
    }
}
