//! A multi-operator inference engine on top of the compiler.
//!
//! [`MikPoly`] optimizes one operator template at a time; a real runtime
//! owns one compiler per template (GEMM, implicit-GEMM convolution) and
//! routes each incoming operator to the right one. [`Engine`] packages that
//! — plus *algorithm selection*: for eligible convolutions it can compare
//! the cost model's predictions for the implicit-GEMM and Winograd
//! `F(2x2, 3x3)` lowerings and dispatch the cheaper one, the role cuDNN's
//! algorithm heuristics play (and the natural home for the paper's
//! Section 7 Winograd future work).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use accel_sim::{MachineModel, SimReport};
use mikpoly_telemetry::Telemetry;
use tensor_ir::{winograd_applicable, Operator};

use crate::cache::CacheOutcome;
use crate::compiler::{CompileBudget, CompileGrade, MikPoly, OperatorRun};
use crate::error::MikPolyError;
use crate::offline::OfflineOptions;
use crate::offline::TemplateKind;

/// How the engine chooses a convolution algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ConvAlgorithm {
    /// Always lower through im2col / implicit GEMM (the paper's
    /// implementation).
    #[default]
    ImplicitGemm,
    /// Always use Winograd `F(2x2, 3x3)` where eligible (3x3, stride 1),
    /// implicit GEMM otherwise.
    WinogradWhenEligible,
    /// Compile both lowerings for eligible convolutions and dispatch the
    /// one the cost model predicts faster.
    CostBased,
}

/// One operator execution through the engine, tagged with the operator the
/// engine actually dispatched (which may be a Winograd rewrite of the
/// requested convolution).
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// The operator that was dispatched.
    pub dispatched: Operator,
    /// The underlying compiler run.
    pub run: OperatorRun,
}

/// Aggregate result of running an operator list (one model forward pass).
#[derive(Debug, Clone, Default)]
pub struct GraphRun {
    /// Total simulated device time, ns.
    pub device_ns: f64,
    /// Total real wall-clock spent on the compile path (fresh
    /// polymerizations plus coalesced waits; zero for cache hits), ns.
    pub compile_ns: u128,
    /// Portion of `compile_ns` the polymerization search itself took
    /// (fresh compilations only), ns.
    pub search_ns: u128,
    /// Portion of `compile_ns` spent blocked on another thread's
    /// in-flight compilation of the same shape, ns.
    pub cache_wait_ns: u128,
    /// Number of operator executions.
    pub executions: usize,
    /// Number of online compilations this call performed (cache outcome
    /// `Computed`; coalesced waits are not compilations).
    pub compilations: usize,
    /// Operators answered at [`CompileGrade::Degraded`] — deadline-cut
    /// searches or single-kernel fallbacks (0 without a budget).
    pub degraded: usize,
}

impl GraphRun {
    /// Device time in milliseconds.
    pub fn device_ms(&self) -> f64 {
        self.device_ns / 1e6
    }
}

/// The device launches behind one operator of a compiled forward pass —
/// what the serving co-launch planner merges across requests. Solo
/// execution simulates `launch` (then `reduction`, when split-K produced
/// one) `count` times; a co-launched wave instead merges the launches of
/// several requests and simulates the merged grid once.
#[derive(Debug, Clone)]
pub struct OpPlan {
    /// The operator's device launch (dynamic or static placement, per the
    /// machine's allocation policy).
    pub launch: accel_sim::Launch,
    /// The split-K reduction pass chained after `launch`, when present.
    pub reduction: Option<accel_sim::Launch>,
    /// Executions of this operator per request (the graph's weight).
    pub count: usize,
    /// Simulated solo device time of one execution (launch plus
    /// reduction), ns — the co-launch planner's no-merge baseline.
    pub solo_ns: f64,
}

/// A compiled forward pass with its per-operator launches retained:
/// [`GraphRun`] aggregates plus everything needed to co-launch the
/// request into a shared wave.
#[derive(Debug, Clone, Default)]
pub struct GraphPlan {
    /// The aggregate timing/accounting of the compile-and-simulate pass.
    pub run: GraphRun,
    /// Per-operator launches, in graph order.
    pub ops: Vec<OpPlan>,
}

/// A dynamic-shape inference engine: per-template MikPoly compilers plus
/// algorithm selection.
///
/// # Example
///
/// ```
/// use accel_sim::MachineModel;
/// use mikpoly::{ConvAlgorithm, Engine, OfflineOptions};
/// use tensor_ir::{Conv2dShape, Operator};
///
/// let mut options = OfflineOptions::fast();
/// options.n_gen = 4; // tiny library for the example
/// let engine = Engine::offline(MachineModel::a100(), &options)
///     .with_conv_algorithm(ConvAlgorithm::CostBased);
/// let conv = Operator::conv2d(Conv2dShape::square(1, 32, 28, 32, 3, 1));
/// let result = engine.run_operator(&conv);
/// assert!(result.run.report.time_ns > 0.0);
/// ```
#[derive(Debug)]
pub struct Engine {
    machine: MachineModel,
    gemm: Arc<MikPoly>,
    conv: Arc<MikPoly>,
    conv_algorithm: ConvAlgorithm,
}

impl Engine {
    /// Runs the offline stage for both templates on `machine`.
    pub fn offline(machine: MachineModel, options: &OfflineOptions) -> Self {
        Self::offline_with_telemetry(machine, options, Telemetry::disabled())
    }

    /// Like [`Engine::offline`], but both compilers (offline tuning and
    /// online polymerization alike) record into the shared `telemetry`.
    pub fn offline_with_telemetry(
        machine: MachineModel,
        options: &OfflineOptions,
        telemetry: Arc<Telemetry>,
    ) -> Self {
        let gemm = Arc::new(MikPoly::offline_with_telemetry(
            machine.clone(),
            &options.clone().with_template(TemplateKind::Gemm),
            Arc::clone(&telemetry),
        ));
        let conv = Arc::new(MikPoly::offline_with_telemetry(
            machine.clone(),
            &options.clone().with_template(TemplateKind::Conv),
            telemetry,
        ));
        Self {
            machine,
            gemm,
            conv,
            conv_algorithm: ConvAlgorithm::default(),
        }
    }

    /// Builds an engine from pre-constructed compilers (e.g. loaded from
    /// disk-cached libraries).
    ///
    /// # Panics
    ///
    /// Panics if the compilers target a different machine than `machine`.
    pub fn from_compilers(machine: MachineModel, gemm: Arc<MikPoly>, conv: Arc<MikPoly>) -> Self {
        assert_eq!(
            gemm.machine().name,
            machine.name,
            "gemm compiler machine mismatch"
        );
        assert_eq!(
            conv.machine().name,
            machine.name,
            "conv compiler machine mismatch"
        );
        Self {
            machine,
            gemm,
            conv,
            conv_algorithm: ConvAlgorithm::default(),
        }
    }

    /// Sets the convolution algorithm policy (builder style).
    #[must_use]
    pub fn with_conv_algorithm(mut self, algorithm: ConvAlgorithm) -> Self {
        self.conv_algorithm = algorithm;
        self
    }

    /// The machine this engine targets.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// The GEMM-template compiler.
    pub fn gemm_compiler(&self) -> &MikPoly {
        &self.gemm
    }

    /// The conv-template compiler.
    pub fn conv_compiler(&self) -> &MikPoly {
        &self.conv
    }

    /// The telemetry handle this engine's compilers record into (the
    /// GEMM compiler's handle; [`Engine::offline_with_telemetry`] gives
    /// both compilers the same one).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        self.gemm.telemetry()
    }

    /// The operator the engine would actually dispatch for a request,
    /// after algorithm selection.
    pub fn select(&self, operator: &Operator) -> Operator {
        match *operator {
            Operator::Conv2d { shape, .. } if winograd_applicable(&shape) => {
                match self.conv_algorithm {
                    ConvAlgorithm::ImplicitGemm => *operator,
                    ConvAlgorithm::WinogradWhenEligible => Operator::conv2d_winograd(shape),
                    ConvAlgorithm::CostBased => {
                        let direct = self.conv.compile(operator);
                        let wino_op = Operator::conv2d_winograd(shape);
                        let wino = self.gemm.compile(&wino_op);
                        if wino.predicted_ns < direct.predicted_ns {
                            wino_op
                        } else {
                            *operator
                        }
                    }
                }
            }
            _ => *operator,
        }
    }

    /// Compiles (with caching) and simulates one operator.
    pub fn run_operator(&self, operator: &Operator) -> EngineRun {
        match self.try_run_operator(operator, CompileBudget::default()) {
            Ok(run) => run,
            // With no deadline and no fault plan every failure is the
            // logic bug the infallible contract documents as a panic.
            Err(err) => panic!("infallible engine run failed: {err}"),
        }
    }

    /// Budgeted compile-and-simulate for one operator, routed through the
    /// right template compiler.
    ///
    /// # Errors
    ///
    /// Exactly those of [`MikPoly::try_run`].
    pub fn try_run_operator(
        &self,
        operator: &Operator,
        budget: CompileBudget,
    ) -> Result<EngineRun, MikPolyError> {
        let dispatched = self.select(operator);
        let compiler = match dispatched {
            // Winograd's transform-domain GEMMs have plain GEMM access
            // patterns, so they use the GEMM-template library.
            Operator::Conv2d { .. } => &self.conv,
            _ => &self.gemm,
        };
        Ok(EngineRun {
            dispatched,
            run: compiler.try_run(&dispatched, budget)?,
        })
    }

    /// Runs a weighted operator list (one forward pass): each `(operator,
    /// count)` pair executes `count` times, compiled once.
    pub fn run_graph<'a>(&self, ops: impl IntoIterator<Item = (&'a Operator, usize)>) -> GraphRun {
        match self.try_run_graph(ops, CompileBudget::default()) {
            Ok(run) => run,
            // See `run_operator`: unreachable without a budget or faults.
            Err(err) => panic!("infallible graph run failed: {err}"),
        }
    }

    /// Budgeted [`Engine::run_graph`]: every operator's compile shares the
    /// one `budget` (the per-request deadline bounds the whole request,
    /// not each operator separately).
    ///
    /// # Errors
    ///
    /// The first [`MikPolyError`] any operator reports; operators already
    /// run are discarded (their programs stay cached, so a retry is
    /// cheap).
    pub fn try_run_graph<'a>(
        &self,
        ops: impl IntoIterator<Item = (&'a Operator, usize)>,
        budget: CompileBudget,
    ) -> Result<GraphRun, MikPolyError> {
        Ok(self.try_plan_graph(ops, budget)?.run)
    }

    /// Like [`Engine::try_run_graph`], but also retains each operator's
    /// device launches so the caller can co-launch the request with
    /// others (see [`crate::serving::colaunch`]).
    ///
    /// # Errors
    ///
    /// Exactly those of [`Engine::try_run_graph`].
    pub fn try_plan_graph<'a>(
        &self,
        ops: impl IntoIterator<Item = (&'a Operator, usize)>,
        budget: CompileBudget,
    ) -> Result<GraphPlan, MikPolyError> {
        let mut out = GraphPlan::default();
        for (op, count) in ops {
            let result = self.try_run_operator(op, budget)?;
            out.run.device_ns += result.run.report.time_ns * count as f64;
            out.run.compile_ns += result.run.compile_ns;
            match result.run.outcome {
                CacheOutcome::Hit => {}
                CacheOutcome::Computed => {
                    out.run.compilations += 1;
                    out.run.search_ns += result.run.program.stats.search_ns;
                }
                CacheOutcome::Waited => out.run.cache_wait_ns += result.run.compile_ns,
            }
            if result.run.grade == CompileGrade::Degraded {
                out.run.degraded += 1;
            }
            out.run.executions += count;
            out.ops.push(OpPlan {
                launch: self.launch_for(&result.run.program),
                reduction: result.run.program.reduction_launch(),
                count,
                solo_ns: result.run.report.time_ns,
            });
        }
        Ok(out)
    }

    /// The device launch for a compiled program, routed through the
    /// template compiler that owns its placement policy (mirrors
    /// [`Engine::simulate`]).
    pub fn launch_for(&self, program: &crate::plan::CompiledProgram) -> accel_sim::Launch {
        match program.operator {
            Operator::Conv2d { .. } => self.conv.launch_for(program),
            _ => self.gemm.launch_for(program),
        }
    }

    /// Installs (or clears) the fault-injection schedule on both template
    /// compilers.
    pub fn set_fault_plan(&self, plan: Option<Arc<accel_sim::FaultPlan>>) {
        self.gemm.set_fault_plan(plan.clone());
        self.conv.set_fault_plan(plan);
    }

    /// Simulates a previously compiled program on this engine's machine.
    pub fn simulate(&self, program: &crate::plan::CompiledProgram) -> SimReport {
        match program.operator {
            Operator::Conv2d { .. } => self.conv.simulate(program),
            _ => self.gemm.simulate(program),
        }
    }

    /// Persists both template compilers' program caches as binary bundles
    /// (`gemm.mpac` and `conv.mpac`) under `dir`, creating it if needed —
    /// the warm state a restarting serving process reloads with
    /// [`Engine::load_program_caches`].
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing a
    /// bundle.
    pub fn save_program_caches(&self, dir: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        self.gemm.save_program_cache(dir.join("gemm.mpac"))?;
        self.conv.save_program_cache(dir.join("conv.mpac"))
    }

    /// Loads the warm state written by [`Engine::save_program_caches`],
    /// returning the total number of programs restored. A missing bundle
    /// file is treated as empty (a cold compiler), so a first boot against
    /// a fresh state directory succeeds.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if a present bundle is unreadable, malformed,
    /// or references kernels absent from the corresponding library.
    pub fn load_program_caches(&self, dir: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
        let dir = dir.as_ref();
        let mut restored = 0;
        for (compiler, name) in [(&self.gemm, "gemm.mpac"), (&self.conv, "conv.mpac")] {
            let path = dir.join(name);
            if path.exists() {
                restored += compiler.load_program_cache(path)?;
            }
        }
        Ok(restored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::{Conv2dShape, GemmShape};

    fn engine(algorithm: ConvAlgorithm) -> Engine {
        let mut options = OfflineOptions::fast();
        options.n_gen = 4;
        Engine::offline(MachineModel::a100(), &options).with_conv_algorithm(algorithm)
    }

    #[test]
    fn routes_gemm_and_conv_to_their_templates() {
        let e = engine(ConvAlgorithm::ImplicitGemm);
        let g = e.run_operator(&Operator::gemm(GemmShape::new(128, 128, 128)));
        assert_eq!(g.dispatched.kind(), "gemm");
        let c = e.run_operator(&Operator::conv2d(Conv2dShape::square(1, 16, 14, 16, 3, 1)));
        assert_eq!(c.dispatched.kind(), "conv2d");
    }

    #[test]
    fn winograd_when_eligible_rewrites_only_eligible_convs() {
        let e = engine(ConvAlgorithm::WinogradWhenEligible);
        let eligible = Operator::conv2d(Conv2dShape::square(1, 16, 14, 16, 3, 1));
        assert_eq!(e.select(&eligible).kind(), "conv2d-winograd");
        let strided = Operator::conv2d(Conv2dShape::square(1, 16, 14, 16, 3, 2));
        assert_eq!(e.select(&strided).kind(), "conv2d");
        let five = Operator::conv2d(Conv2dShape::square(1, 16, 14, 16, 5, 1));
        assert_eq!(e.select(&five).kind(), "conv2d");
    }

    #[test]
    fn cost_based_selection_never_loses_to_either_fixed_policy() {
        let cost_based = engine(ConvAlgorithm::CostBased);
        for (c, hw) in [(64usize, 28usize), (8, 14), (96, 56)] {
            let op = Operator::conv2d(Conv2dShape::square(2, c, hw, c, 3, 1));
            let chosen = cost_based.run_operator(&op).run.report.time_ns;
            let direct = cost_based.conv_compiler().run(&op).report.time_ns;
            let wino = cost_based
                .gemm_compiler()
                .run(&Operator::conv2d_winograd(match op {
                    Operator::Conv2d { shape, .. } => shape,
                    _ => unreachable!(),
                }))
                .report
                .time_ns;
            // The cost model is approximate, so allow a small margin.
            assert!(
                chosen <= direct.min(wino) * 1.15,
                "cost-based pick {chosen} vs best fixed {}",
                direct.min(wino)
            );
        }
    }

    #[test]
    fn run_graph_counts_compilations_once_per_shape() {
        let e = engine(ConvAlgorithm::ImplicitGemm);
        let op = Operator::gemm(GemmShape::new(300, 200, 100));
        let result = e.run_graph([(&op, 3), (&op, 2)]);
        assert_eq!(result.executions, 5);
        assert_eq!(result.compilations, 1);
        assert!(result.device_ns > 0.0);
    }

    #[test]
    fn plan_graph_matches_run_graph_and_carries_launches() {
        let e = engine(ConvAlgorithm::ImplicitGemm);
        let a = Operator::gemm(GemmShape::new(300, 200, 100));
        let b = Operator::gemm(GemmShape::new(64, 64, 64));
        let plan = e
            .try_plan_graph([(&a, 2), (&b, 1)], CompileBudget::default())
            .expect("plan");
        assert_eq!(plan.ops.len(), 2);
        assert_eq!(plan.run.executions, 3);
        // The retained launches reproduce the aggregate device time.
        let from_plans: f64 = plan.ops.iter().map(|p| p.solo_ns * p.count as f64).sum();
        assert!((from_plans - plan.run.device_ns).abs() < 1e-6);
        for op in &plan.ops {
            assert!(op.launch.grid_size() > 0);
            assert!(op.solo_ns > 0.0);
        }
    }

    #[test]
    fn engine_works_on_the_npu() {
        let mut options = OfflineOptions::fast();
        options.n_gen = 4;
        let e = Engine::offline(MachineModel::ascend910a(), &options)
            .with_conv_algorithm(ConvAlgorithm::CostBased);
        let conv = Operator::conv2d(Conv2dShape::square(1, 16, 14, 16, 3, 1));
        let gemm = Operator::gemm(GemmShape::new(256, 256, 256));
        let result = e.run_graph([(&conv, 2), (&gemm, 1)]);
        assert_eq!(result.executions, 3);
        assert!(result.device_ns > 0.0);
    }

    #[test]
    fn warm_state_round_trips_through_bundle_directory() {
        let dir = std::env::temp_dir().join("mikpoly-engine-warm-state");
        let _ = std::fs::remove_dir_all(&dir);
        let a = engine(ConvAlgorithm::ImplicitGemm);
        // A fresh state directory loads as cold, not as an error.
        assert_eq!(a.load_program_caches(&dir).unwrap_or(99), 0);
        let gemm = Operator::gemm(GemmShape::new(320, 192, 128));
        let conv = Operator::conv2d(Conv2dShape::square(1, 16, 14, 16, 3, 1));
        a.run_operator(&gemm);
        a.run_operator(&conv);
        a.save_program_caches(&dir).expect("save warm state");

        let b = engine(ConvAlgorithm::ImplicitGemm);
        assert_eq!(b.load_program_caches(&dir).expect("load warm state"), 2);
        assert_eq!(b.run_operator(&gemm).run.compile_ns, 0, "gemm warm");
        assert_eq!(b.run_operator(&conv).run.compile_ns, 0, "conv warm");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic(expected = "machine mismatch")]
    fn from_compilers_rejects_mismatched_machines() {
        let mut options = OfflineOptions::fast();
        options.n_gen = 4;
        let gemm = Arc::new(MikPoly::offline(MachineModel::a100(), &options));
        let conv = Arc::new(MikPoly::offline(
            MachineModel::ascend910a(),
            &options.clone().with_template(TemplateKind::Conv),
        ));
        let _ = Engine::from_compilers(MachineModel::a100(), gemm, conv);
    }
}
