//! A multi-operator inference engine on top of the compiler.
//!
//! [`MikPoly`] optimizes one operator template at a time; a real runtime
//! owns one compiler per template (GEMM, implicit-GEMM convolution) and
//! routes each incoming operator to the right one. [`Engine`] packages that
//! — plus *algorithm selection*: for eligible convolutions it can compare
//! the cost model's predictions for the implicit-GEMM and Winograd
//! `F(2x2, 3x3)` lowerings and dispatch the cheaper one, the role cuDNN's
//! algorithm heuristics play (and the natural home for the paper's
//! Section 7 Winograd future work).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use accel_sim::{MachineModel, SimReport};
use mikpoly_telemetry::Telemetry;
use tensor_ir::{winograd_applicable, Operator};

use crate::cache::CacheOutcome;
use crate::compiler::{CompileBudget, CompileGrade, MikPoly, OperatorRun};
use crate::error::MikPolyError;
use crate::offline::OfflineOptions;
use crate::offline::TemplateKind;

/// How the engine chooses a convolution algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ConvAlgorithm {
    /// Always lower through im2col / implicit GEMM (the paper's
    /// implementation).
    #[default]
    ImplicitGemm,
    /// Always use Winograd `F(2x2, 3x3)` where eligible (3x3, stride 1),
    /// implicit GEMM otherwise.
    WinogradWhenEligible,
    /// Compile both lowerings for eligible convolutions and dispatch the
    /// one the cost model predicts faster.
    CostBased,
}

/// One operator execution through the engine, tagged with the operator the
/// engine actually dispatched (which may be a Winograd rewrite of the
/// requested convolution).
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// The operator that was dispatched.
    pub dispatched: Operator,
    /// The underlying compiler run.
    pub run: OperatorRun,
}

/// Aggregate result of running an operator list (one model forward pass).
#[derive(Debug, Clone, Default)]
pub struct GraphRun {
    /// Total simulated device time, ns.
    pub device_ns: f64,
    /// Total real wall-clock spent on the compile path (fresh
    /// polymerizations plus coalesced waits; zero for cache hits), ns.
    pub compile_ns: u128,
    /// Portion of `compile_ns` the polymerization search itself took
    /// (fresh compilations only), ns.
    pub search_ns: u128,
    /// Portion of `compile_ns` spent blocked on another thread's
    /// in-flight compilation of the same shape, ns.
    pub cache_wait_ns: u128,
    /// Number of operator executions.
    pub executions: usize,
    /// Number of online compilations this call performed (cache outcome
    /// `Computed`; coalesced waits are not compilations).
    pub compilations: usize,
    /// Operators answered at [`CompileGrade::Degraded`] — deadline-cut
    /// searches or single-kernel fallbacks (0 without a budget).
    pub degraded: usize,
}

impl GraphRun {
    /// Device time in milliseconds.
    pub fn device_ms(&self) -> f64 {
        self.device_ns / 1e6
    }
}

/// The device launches behind one operator of a compiled forward pass —
/// what the serving co-launch planner merges across requests. Solo
/// execution simulates `launch` (then `reduction`, when split-K produced
/// one) `count` times; a co-launched wave instead merges the launches of
/// several requests and simulates the merged grid once.
#[derive(Debug, Clone)]
pub struct OpPlan {
    /// The operator's device launch (dynamic or static placement, per the
    /// machine's allocation policy).
    pub launch: accel_sim::Launch,
    /// The split-K reduction pass chained after `launch`, when present.
    pub reduction: Option<accel_sim::Launch>,
    /// Executions of this operator per request (the graph's weight).
    pub count: usize,
    /// Simulated solo device time of one execution (launch plus
    /// reduction), ns — the co-launch planner's no-merge baseline.
    pub solo_ns: f64,
}

/// A compiled forward pass with its per-operator launches retained:
/// [`GraphRun`] aggregates plus everything needed to co-launch the
/// request into a shared wave.
#[derive(Debug, Clone, Default)]
pub struct GraphPlan {
    /// The aggregate timing/accounting of the compile-and-simulate pass.
    pub run: GraphRun,
    /// Per-operator launches, in graph order.
    pub ops: Vec<OpPlan>,
}

/// A dynamic-shape inference engine: per-template MikPoly compilers plus
/// algorithm selection.
///
/// # Example
///
/// ```
/// use accel_sim::MachineModel;
/// use mikpoly::{ConvAlgorithm, Engine, OfflineOptions};
/// use tensor_ir::{Conv2dShape, Operator};
///
/// let mut options = OfflineOptions::fast();
/// options.n_gen = 4; // tiny library for the example
/// let engine = Engine::offline(MachineModel::a100(), &options)
///     .with_conv_algorithm(ConvAlgorithm::CostBased);
/// let conv = Operator::conv2d(Conv2dShape::square(1, 32, 28, 32, 3, 1));
/// let result = engine.run_operator(&conv);
/// assert!(result.run.report.time_ns > 0.0);
/// ```
#[derive(Debug)]
pub struct Engine {
    machine: MachineModel,
    gemm: Arc<MikPoly>,
    conv: Arc<MikPoly>,
    conv_algorithm: ConvAlgorithm,
}

impl Engine {
    /// Runs the offline stage for both templates on `machine`.
    pub fn offline(machine: MachineModel, options: &OfflineOptions) -> Self {
        Self::offline_with_telemetry(machine, options, Telemetry::disabled())
    }

    /// Like [`Engine::offline`], but both compilers (offline tuning and
    /// online polymerization alike) record into the shared `telemetry`.
    pub fn offline_with_telemetry(
        machine: MachineModel,
        options: &OfflineOptions,
        telemetry: Arc<Telemetry>,
    ) -> Self {
        let gemm = Arc::new(MikPoly::offline_with_telemetry(
            machine.clone(),
            &options.clone().with_template(TemplateKind::Gemm),
            Arc::clone(&telemetry),
        ));
        let conv = Arc::new(MikPoly::offline_with_telemetry(
            machine.clone(),
            &options.clone().with_template(TemplateKind::Conv),
            telemetry,
        ));
        Self {
            machine,
            gemm,
            conv,
            conv_algorithm: ConvAlgorithm::default(),
        }
    }

    /// Builds an engine from pre-constructed compilers (e.g. loaded from
    /// disk-cached libraries).
    ///
    /// # Panics
    ///
    /// Panics if the compilers target a different machine than `machine`.
    pub fn from_compilers(machine: MachineModel, gemm: Arc<MikPoly>, conv: Arc<MikPoly>) -> Self {
        assert_eq!(
            gemm.machine().name,
            machine.name,
            "gemm compiler machine mismatch"
        );
        assert_eq!(
            conv.machine().name,
            machine.name,
            "conv compiler machine mismatch"
        );
        Self {
            machine,
            gemm,
            conv,
            conv_algorithm: ConvAlgorithm::default(),
        }
    }

    /// Sets the convolution algorithm policy (builder style).
    #[must_use]
    pub fn with_conv_algorithm(mut self, algorithm: ConvAlgorithm) -> Self {
        self.conv_algorithm = algorithm;
        self
    }

    /// The machine this engine targets.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// The GEMM-template compiler.
    pub fn gemm_compiler(&self) -> &MikPoly {
        &self.gemm
    }

    /// The conv-template compiler.
    pub fn conv_compiler(&self) -> &MikPoly {
        &self.conv
    }

    /// The telemetry handle this engine's compilers record into (the
    /// GEMM compiler's handle; [`Engine::offline_with_telemetry`] gives
    /// both compilers the same one).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        self.gemm.telemetry()
    }

    /// The operator the engine would actually dispatch for a request,
    /// after algorithm selection.
    pub fn select(&self, operator: &Operator) -> Operator {
        match *operator {
            Operator::Conv2d { shape, .. } if winograd_applicable(&shape) => {
                match self.conv_algorithm {
                    ConvAlgorithm::ImplicitGemm => *operator,
                    ConvAlgorithm::WinogradWhenEligible => Operator::conv2d_winograd(shape),
                    ConvAlgorithm::CostBased => {
                        let direct = self.conv.compile(operator);
                        let wino_op = Operator::conv2d_winograd(shape);
                        let wino = self.gemm.compile(&wino_op);
                        if wino.predicted_ns < direct.predicted_ns {
                            wino_op
                        } else {
                            *operator
                        }
                    }
                }
            }
            _ => *operator,
        }
    }

    /// Compiles (with caching) and simulates one operator.
    pub fn run_operator(&self, operator: &Operator) -> EngineRun {
        match self.try_run_operator(operator, CompileBudget::default()) {
            Ok(run) => run,
            // With no deadline and no fault plan every failure is the
            // logic bug the infallible contract documents as a panic.
            Err(err) => panic!("infallible engine run failed: {err}"),
        }
    }

    /// Budgeted compile-and-simulate for one operator, routed through the
    /// right template compiler.
    ///
    /// # Errors
    ///
    /// Exactly those of [`MikPoly::try_run`].
    pub fn try_run_operator(
        &self,
        operator: &Operator,
        budget: CompileBudget,
    ) -> Result<EngineRun, MikPolyError> {
        let dispatched = self.select(operator);
        let compiler = match dispatched {
            // Winograd's transform-domain GEMMs have plain GEMM access
            // patterns, so they use the GEMM-template library.
            Operator::Conv2d { .. } => &self.conv,
            _ => &self.gemm,
        };
        Ok(EngineRun {
            dispatched,
            run: compiler.try_run(&dispatched, budget)?,
        })
    }

    /// Runs a weighted operator list (one forward pass): each `(operator,
    /// count)` pair executes `count` times, compiled once.
    pub fn run_graph<'a>(&self, ops: impl IntoIterator<Item = (&'a Operator, usize)>) -> GraphRun {
        match self.try_run_graph(ops, CompileBudget::default()) {
            Ok(run) => run,
            // See `run_operator`: unreachable without a budget or faults.
            Err(err) => panic!("infallible graph run failed: {err}"),
        }
    }

    /// Budgeted [`Engine::run_graph`]: every operator's compile shares the
    /// one `budget` (the per-request deadline bounds the whole request,
    /// not each operator separately).
    ///
    /// # Errors
    ///
    /// The first [`MikPolyError`] any operator reports; operators already
    /// run are discarded (their programs stay cached, so a retry is
    /// cheap).
    pub fn try_run_graph<'a>(
        &self,
        ops: impl IntoIterator<Item = (&'a Operator, usize)>,
        budget: CompileBudget,
    ) -> Result<GraphRun, MikPolyError> {
        Ok(self.try_plan_graph(ops, budget)?.run)
    }

    /// Like [`Engine::try_run_graph`], but also retains each operator's
    /// device launches so the caller can co-launch the request with
    /// others (see [`crate::serving::colaunch`]).
    ///
    /// # Errors
    ///
    /// Exactly those of [`Engine::try_run_graph`].
    pub fn try_plan_graph<'a>(
        &self,
        ops: impl IntoIterator<Item = (&'a Operator, usize)>,
        budget: CompileBudget,
    ) -> Result<GraphPlan, MikPolyError> {
        let mut out = GraphPlan::default();
        for (op, count) in ops {
            let result = self.try_run_operator(op, budget)?;
            out.run.device_ns += result.run.report.time_ns * count as f64;
            out.run.compile_ns += result.run.compile_ns;
            match result.run.outcome {
                CacheOutcome::Hit => {}
                CacheOutcome::Computed => {
                    out.run.compilations += 1;
                    out.run.search_ns += result.run.program.stats.search_ns;
                }
                CacheOutcome::Waited => out.run.cache_wait_ns += result.run.compile_ns,
            }
            if result.run.grade == CompileGrade::Degraded {
                out.run.degraded += 1;
            }
            out.run.executions += count;
            out.ops.push(OpPlan {
                launch: self.launch_for(&result.run.program),
                reduction: result.run.program.reduction_launch(),
                count,
                solo_ns: result.run.report.time_ns,
            });
        }
        Ok(out)
    }

    /// The device launch for a compiled program, routed through the
    /// template compiler that owns its placement policy (mirrors
    /// [`Engine::simulate`]).
    pub fn launch_for(&self, program: &crate::plan::CompiledProgram) -> accel_sim::Launch {
        match program.operator {
            Operator::Conv2d { .. } => self.conv.launch_for(program),
            _ => self.gemm.launch_for(program),
        }
    }

    /// Installs (or clears) the fault-injection schedule on both template
    /// compilers.
    pub fn set_fault_plan(&self, plan: Option<Arc<accel_sim::FaultPlan>>) {
        self.gemm.set_fault_plan(plan.clone());
        self.conv.set_fault_plan(plan);
    }

    /// Simulates a previously compiled program on this engine's machine.
    pub fn simulate(&self, program: &crate::plan::CompiledProgram) -> SimReport {
        match program.operator {
            Operator::Conv2d { .. } => self.conv.simulate(program),
            _ => self.gemm.simulate(program),
        }
    }

    /// Persists both template compilers' program caches under `dir`
    /// (creating it if needed) through the crash-consistent protocol:
    /// each bundle is written atomically under a generation-numbered
    /// name (`gemm.mpac.<g>`), then a checksummed
    /// [`Manifest`](crate::recovery::Manifest) referencing the whole
    /// generation is renamed into place as the single commit point — a
    /// crash at any step leaves the previous committed generation fully
    /// intact, never a mix of old and new bundles. Files from superseded
    /// generations are removed after the commit. Returns the committed
    /// generation number.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory, writing a
    /// bundle, or committing the manifest. On error nothing is
    /// committed: readers keep seeing the previous generation.
    pub fn save_program_caches(&self, dir: impl AsRef<std::path::Path>) -> std::io::Result<u64> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let previous = crate::recovery::Manifest::read(dir).ok().flatten();
        let generation = previous.as_ref().map_or(1, |m| m.generation + 1);
        let mut manifest = crate::recovery::Manifest {
            generation,
            bundles: Vec::new(),
        };
        for (compiler, stem) in [(&self.gemm, "gemm"), (&self.conv, "conv")] {
            let name = format!("{stem}.mpac.{generation}");
            let bytes = compiler.encode_program_cache();
            crate::persist::write_bytes_atomic(&dir.join(&name), &bytes)?;
            manifest
                .bundles
                .push((name, bytes.len() as u64, crate::persist::crc32(&bytes)));
        }
        manifest.commit(dir)?;
        // The old generation is unreferenced now; reclaim its files.
        // (Quarantined files live under quarantine/ and are never touched.)
        if let Some(previous) = previous {
            for (name, _, _) in previous.bundles {
                if !manifest.bundles.iter().any(|(n, _, _)| *n == name) {
                    let _ = std::fs::remove_file(dir.join(name));
                }
            }
        }
        Ok(generation)
    }

    /// Restores warm state from `dir` with full recovery semantics,
    /// returning a typed [`RestoreReport`](crate::recovery::RestoreReport)
    /// that distinguishes, per bundle: **clean** (every checksum
    /// verified), **salvaged** (damaged, the longest valid record prefix
    /// was loaded and the file quarantined), **quarantined** (damaged
    /// beyond salvage, nothing loaded, file moved aside), and **absent**
    /// (cold start). Never errors and never panics: damage is an outcome,
    /// not an exception. Damaged files are moved into `dir/quarantine/`,
    /// never deleted. The report is also exported as `cache.restore.*`
    /// counters on this engine's telemetry registry.
    pub fn restore_program_caches(
        &self,
        dir: impl AsRef<std::path::Path>,
    ) -> crate::recovery::RestoreReport {
        use crate::recovery::{BundleRestore, Manifest, RestoreOutcome, RestoreReport};
        let dir = dir.as_ref();
        let mut report = RestoreReport::default();
        let manifest = match Manifest::read(dir) {
            Ok(m) => m,
            Err(e) => {
                // A torn or tampered manifest: quarantine it and fall back
                // to the flat legacy file names below.
                report.bundles.push(BundleRestore {
                    bundle: "manifest".to_string(),
                    outcome: RestoreOutcome::Quarantined,
                    restored: 0,
                    claimed: None,
                    quarantined_to: crate::recovery::quarantine_file(
                        &dir.join(crate::recovery::MANIFEST_NAME),
                    )
                    .ok(),
                    detail: Some(e.to_string()),
                });
                None
            }
        };
        report.generation = manifest.as_ref().map(|m| m.generation);
        for (compiler, stem) in [(&self.gemm, "gemm"), (&self.conv, "conv")] {
            let flat = dir.join(format!("{stem}.mpac"));
            let (path, committed) = match &manifest {
                Some(m) => match m
                    .bundles
                    .iter()
                    .find(|(n, _, _)| n.starts_with(&format!("{stem}.mpac")))
                {
                    Some((name, len, crc)) => (dir.join(name), Some((*len, *crc))),
                    None => (flat, None),
                },
                None => (flat, None),
            };
            report
                .bundles
                .push(restore_one_bundle(compiler, stem, &path, committed));
        }
        report.export_to(self.telemetry().registry());
        report
    }

    /// Loads the warm state written by [`Engine::save_program_caches`],
    /// returning the total number of programs restored. A missing bundle
    /// file is treated as empty (a cold compiler), so a first boot against
    /// a fresh state directory succeeds — `Ok(0)` means *no warm state*,
    /// while damage is a typed error, never silently conflated with a
    /// cold start. Built on [`Engine::restore_program_caches`]; callers
    /// that want to keep the salvaged prefix of a damaged directory (and
    /// the per-bundle outcomes) should use that instead.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::ErrorKind::InvalidData`] if any present bundle
    /// was damaged or failed validation — even when a prefix was
    /// salvaged into the cache and the damaged file quarantined.
    pub fn load_program_caches(&self, dir: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
        let report = self.restore_program_caches(dir);
        if report.degraded() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                crate::MikPolyError::WarmStateDamaged {
                    report: report.to_string(),
                },
            ));
        }
        Ok(report.restored())
    }
}

/// Restores one bundle file with the clean → salvage → quarantine
/// ladder. `committed` carries the manifest's length and CRC32 when the
/// file belongs to a committed generation; a mismatch against it is
/// treated as damage even if the bundle's own checksums pass (the
/// manifest is the commit point — a non-matching file is not the state
/// that was committed).
fn restore_one_bundle(
    compiler: &MikPoly,
    stem: &str,
    path: &std::path::Path,
    committed: Option<(u64, u32)>,
) -> crate::recovery::BundleRestore {
    use crate::recovery::{BundleRestore, RestoreOutcome};
    let mut restore = BundleRestore {
        bundle: stem.to_string(),
        outcome: RestoreOutcome::Absent,
        restored: 0,
        claimed: None,
        quarantined_to: None,
        detail: None,
    };
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return restore,
        Err(e) => {
            restore.outcome = RestoreOutcome::Quarantined;
            restore.detail = Some(format!("unreadable: {e}"));
            restore.quarantined_to = crate::recovery::quarantine_file(path).ok();
            return restore;
        }
    };
    let strict = if committed
        .is_none_or(|(len, crc)| bytes.len() as u64 == len && crate::persist::crc32(&bytes) == crc)
    {
        compiler.load_program_cache_bytes(&bytes)
    } else {
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "bundle does not match the committed manifest (length or checksum)",
        ))
    };
    match strict {
        Ok(n) => {
            restore.outcome = RestoreOutcome::Clean;
            restore.restored = n;
            restore.claimed = Some(n as u64);
            restore
        }
        Err(e) => {
            restore.detail = Some(e.to_string());
            let salvage = crate::persist::salvage_bundle(&bytes);
            restore.claimed = salvage.claimed;
            // Salvaged records must still belong to this library; the
            // prefix stops at the first foreign program.
            let mut valid = Vec::new();
            for program in salvage.programs {
                if let Err(v) = compiler.validate_restored_program(&program) {
                    restore.detail = Some(v);
                    break;
                }
                valid.push(program);
            }
            restore.restored = compiler.adopt_restored_programs(valid);
            restore.quarantined_to = crate::recovery::quarantine_file(path).ok();
            restore.outcome = if restore.restored > 0 {
                RestoreOutcome::Salvaged
            } else {
                RestoreOutcome::Quarantined
            };
            restore
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::{Conv2dShape, GemmShape};

    fn engine(algorithm: ConvAlgorithm) -> Engine {
        let mut options = OfflineOptions::fast();
        options.n_gen = 4;
        Engine::offline(MachineModel::a100(), &options).with_conv_algorithm(algorithm)
    }

    #[test]
    fn routes_gemm_and_conv_to_their_templates() {
        let e = engine(ConvAlgorithm::ImplicitGemm);
        let g = e.run_operator(&Operator::gemm(GemmShape::new(128, 128, 128)));
        assert_eq!(g.dispatched.kind(), "gemm");
        let c = e.run_operator(&Operator::conv2d(Conv2dShape::square(1, 16, 14, 16, 3, 1)));
        assert_eq!(c.dispatched.kind(), "conv2d");
    }

    #[test]
    fn winograd_when_eligible_rewrites_only_eligible_convs() {
        let e = engine(ConvAlgorithm::WinogradWhenEligible);
        let eligible = Operator::conv2d(Conv2dShape::square(1, 16, 14, 16, 3, 1));
        assert_eq!(e.select(&eligible).kind(), "conv2d-winograd");
        let strided = Operator::conv2d(Conv2dShape::square(1, 16, 14, 16, 3, 2));
        assert_eq!(e.select(&strided).kind(), "conv2d");
        let five = Operator::conv2d(Conv2dShape::square(1, 16, 14, 16, 5, 1));
        assert_eq!(e.select(&five).kind(), "conv2d");
    }

    #[test]
    fn cost_based_selection_never_loses_to_either_fixed_policy() {
        let cost_based = engine(ConvAlgorithm::CostBased);
        for (c, hw) in [(64usize, 28usize), (8, 14), (96, 56)] {
            let op = Operator::conv2d(Conv2dShape::square(2, c, hw, c, 3, 1));
            let chosen = cost_based.run_operator(&op).run.report.time_ns;
            let direct = cost_based.conv_compiler().run(&op).report.time_ns;
            let wino = cost_based
                .gemm_compiler()
                .run(&Operator::conv2d_winograd(match op {
                    Operator::Conv2d { shape, .. } => shape,
                    _ => unreachable!(),
                }))
                .report
                .time_ns;
            // The cost model is approximate, so allow a small margin.
            assert!(
                chosen <= direct.min(wino) * 1.15,
                "cost-based pick {chosen} vs best fixed {}",
                direct.min(wino)
            );
        }
    }

    #[test]
    fn run_graph_counts_compilations_once_per_shape() {
        let e = engine(ConvAlgorithm::ImplicitGemm);
        let op = Operator::gemm(GemmShape::new(300, 200, 100));
        let result = e.run_graph([(&op, 3), (&op, 2)]);
        assert_eq!(result.executions, 5);
        assert_eq!(result.compilations, 1);
        assert!(result.device_ns > 0.0);
    }

    #[test]
    fn plan_graph_matches_run_graph_and_carries_launches() {
        let e = engine(ConvAlgorithm::ImplicitGemm);
        let a = Operator::gemm(GemmShape::new(300, 200, 100));
        let b = Operator::gemm(GemmShape::new(64, 64, 64));
        let plan = e
            .try_plan_graph([(&a, 2), (&b, 1)], CompileBudget::default())
            .expect("plan");
        assert_eq!(plan.ops.len(), 2);
        assert_eq!(plan.run.executions, 3);
        // The retained launches reproduce the aggregate device time.
        let from_plans: f64 = plan.ops.iter().map(|p| p.solo_ns * p.count as f64).sum();
        assert!((from_plans - plan.run.device_ns).abs() < 1e-6);
        for op in &plan.ops {
            assert!(op.launch.grid_size() > 0);
            assert!(op.solo_ns > 0.0);
        }
    }

    #[test]
    fn engine_works_on_the_npu() {
        let mut options = OfflineOptions::fast();
        options.n_gen = 4;
        let e = Engine::offline(MachineModel::ascend910a(), &options)
            .with_conv_algorithm(ConvAlgorithm::CostBased);
        let conv = Operator::conv2d(Conv2dShape::square(1, 16, 14, 16, 3, 1));
        let gemm = Operator::gemm(GemmShape::new(256, 256, 256));
        let result = e.run_graph([(&conv, 2), (&gemm, 1)]);
        assert_eq!(result.executions, 3);
        assert!(result.device_ns > 0.0);
    }

    #[test]
    fn warm_state_round_trips_through_bundle_directory() {
        let dir = std::env::temp_dir().join("mikpoly-engine-warm-state");
        let _ = std::fs::remove_dir_all(&dir);
        let a = engine(ConvAlgorithm::ImplicitGemm);
        // A fresh state directory loads as cold, not as an error.
        assert_eq!(a.load_program_caches(&dir).unwrap_or(99), 0);
        let gemm = Operator::gemm(GemmShape::new(320, 192, 128));
        let conv = Operator::conv2d(Conv2dShape::square(1, 16, 14, 16, 3, 1));
        a.run_operator(&gemm);
        a.run_operator(&conv);
        a.save_program_caches(&dir).expect("save warm state");

        let b = engine(ConvAlgorithm::ImplicitGemm);
        assert_eq!(b.load_program_caches(&dir).expect("load warm state"), 2);
        assert_eq!(b.run_operator(&gemm).run.compile_ns, 0, "gemm warm");
        assert_eq!(b.run_operator(&conv).run.compile_ns, 0, "conv warm");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn save_commits_generations_and_reclaims_old_files() {
        let dir = std::env::temp_dir().join(format!("mikpoly-engine-gen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = engine(ConvAlgorithm::ImplicitGemm);
        let gemm = Operator::gemm(GemmShape::new(320, 192, 128));
        let conv = Operator::conv2d(Conv2dShape::square(1, 16, 14, 16, 3, 1));
        a.run_operator(&gemm);
        a.run_operator(&conv);
        assert_eq!(a.save_program_caches(&dir).expect("first save"), 1);
        assert_eq!(a.save_program_caches(&dir).expect("second save"), 2);
        // The superseded generation is reclaimed; the committed one stays.
        assert!(!dir.join("gemm.mpac.1").exists());
        assert!(dir.join("gemm.mpac.2").exists());
        assert!(dir.join("conv.mpac.2").exists());

        let b = engine(ConvAlgorithm::ImplicitGemm);
        let report = b.restore_program_caches(&dir);
        assert!(report.clean(), "clean directory must restore clean");
        assert_eq!(report.generation, Some(2));
        assert_eq!(report.restored(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn restore_salvages_torn_bundles_and_quarantines_the_evidence() {
        let dir = std::env::temp_dir().join(format!("mikpoly-engine-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = engine(ConvAlgorithm::ImplicitGemm);
        let gemm = Operator::gemm(GemmShape::new(320, 192, 128));
        let conv = Operator::conv2d(Conv2dShape::square(1, 16, 14, 16, 3, 1));
        a.run_operator(&gemm);
        a.run_operator(&conv);
        a.save_program_caches(&dir).expect("save warm state");
        // Tear the gemm bundle's footer off: the record itself survives.
        let path = dir.join("gemm.mpac.1");
        let bytes = std::fs::read(&path).expect("read bundle");
        std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("tear bundle");

        let b = engine(ConvAlgorithm::ImplicitGemm);
        let report = b.restore_program_caches(&dir);
        assert!(report.degraded());
        let by_name = |name: &str| {
            report
                .bundles
                .iter()
                .find(|b| b.bundle == name)
                .unwrap_or_else(|| panic!("no {name} entry"))
        };
        let g = by_name("gemm");
        assert_eq!(g.outcome, crate::recovery::RestoreOutcome::Salvaged);
        assert_eq!(g.restored, 1, "the one intact record must salvage");
        assert!(g.quarantined_to.as_ref().is_some_and(|q| q.exists()));
        assert!(!path.exists(), "damaged file must be moved aside");
        assert_eq!(
            by_name("conv").outcome,
            crate::recovery::RestoreOutcome::Clean
        );
        // The salvaged program is a real warm hit.
        assert_eq!(b.run_operator(&gemm).run.compile_ns, 0, "salvaged warm");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn restore_quarantines_garbage_and_distinguishes_cold_starts() {
        let dir = std::env::temp_dir().join(format!("mikpoly-engine-cold-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a = engine(ConvAlgorithm::ImplicitGemm);
        // A cold directory is absent, not a failure.
        let cold = a.restore_program_caches(&dir);
        assert!(cold.clean());
        assert_eq!(cold.generation, None);
        assert!(cold
            .bundles
            .iter()
            .all(|b| b.outcome == crate::recovery::RestoreOutcome::Absent));
        // Arbitrary garbage under a flat legacy name: quarantined, and
        // `load_program_caches` fails closed instead of reporting 0.
        std::fs::write(dir.join("gemm.mpac"), b"MPAC garbage here").expect("write");
        let report = a.restore_program_caches(&dir);
        let g = report
            .bundles
            .iter()
            .find(|b| b.bundle == "gemm")
            .expect("gemm entry");
        assert_eq!(g.outcome, crate::recovery::RestoreOutcome::Quarantined);
        assert_eq!(g.restored, 0);
        std::fs::write(dir.join("conv.mpac"), b"not a bundle").expect("write");
        assert!(
            a.load_program_caches(&dir).is_err(),
            "damage must be an error, not zero"
        );
        // The report exports typed outcome counters.
        let telemetry = Telemetry::enabled();
        report.export_to(telemetry.registry());
        let snap = telemetry.registry().snapshot();
        assert_eq!(snap.counter("cache.restore.quarantined"), Some(1));
        assert_eq!(snap.counter("cache.restore.absent"), Some(1));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn restore_reads_flat_directories_from_the_pre_manifest_era() {
        let dir = std::env::temp_dir().join(format!("mikpoly-engine-flat-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a = engine(ConvAlgorithm::ImplicitGemm);
        let gemm = Operator::gemm(GemmShape::new(320, 192, 128));
        a.run_operator(&gemm);
        // Old layout: bundles under flat names, no manifest.
        a.gemm_compiler()
            .save_program_cache(dir.join("gemm.mpac"))
            .expect("flat save");
        let b = engine(ConvAlgorithm::ImplicitGemm);
        let report = b.restore_program_caches(&dir);
        assert_eq!(report.generation, None);
        assert!(report.clean());
        assert_eq!(report.restored(), 1);
        assert_eq!(b.run_operator(&gemm).run.compile_ns, 0, "flat warm");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic(expected = "machine mismatch")]
    fn from_compilers_rejects_mismatched_machines() {
        let mut options = OfflineOptions::fast();
        options.n_gen = 4;
        let gemm = Arc::new(MikPoly::offline(MachineModel::a100(), &options));
        let conv = Arc::new(MikPoly::offline(
            MachineModel::ascend910a(),
            &options.clone().with_template(TemplateKind::Conv),
        ));
        let _ = Engine::from_compilers(MachineModel::a100(), gemm, conv);
    }
}
